"""Produce/consume plan compiler: fused stages, fallback rules, CSE.

:class:`PlanCompiler` walks a placed plan tree and partitions it into maximal
*linear segments* of co-located fusable nodes: FILTER (simple *and*
tree-pattern) and RESTRUCTURE.  Each segment compiles to a tuple of
:class:`CompiledStage` closures that a
:class:`~repro.compile.pipeline.CompiledPipeline` executes in a single call
frame per item -- no intermediate ``Stream.emit`` hops, no per-operator
virtual dispatch.  Every stage also carries an ``apply_many`` entry point
evaluating the fused computation over a whole batch with one materialized-
table probe per batch (alerter bursts and channel deliveries arrive as
batches).

Every node kind that is not fusable carries an explicit fallback reason
(Kontra-style rule set): stateful operators keep their window/cadence/history
machinery on the interpreted path (though co-located JOIN/GROUP *probe* sides
are fused by the deployer, see ``CompiledPipeline.fuse_consumer``),
multi-input merges need the stream-level EOS accounting, and segment chains
split at remote boundaries so network behaviour stays byte-identical to
interpreted mode.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.algebra.plan import (
    ALERTER,
    DISTINCT,
    EXISTING,
    FILTER,
    GROUP,
    JOIN,
    PUBLISH,
    RESTRUCTURE,
    UNION,
    PlanNode,
)
from repro.algebra.expr import intern_signature
from repro.algebra.template import get_binding
from repro.filtering.conditions import compile_simple_predicate
from repro.filtering.yfilter import compile_tree_predicate
from repro.xmlmodel.axml import ServiceRegistry

from .cache import CompiledPlanCache
from .signatures import stage_signature
from .stats import CompileStats
from .table import MISS, MaterializedTable

#: Kinds the compiler can fuse into a pipeline stage.
FUSABLE_KINDS = (FILTER, RESTRUCTURE)

#: Static fallback rules: operator kind -> why it stays interpreted.
FALLBACK_REASONS = {
    JOIN: "stateful-join-window",
    GROUP: "stateful-group-cadence",
    DISTINCT: "stateful-distinct-history",
    UNION: "multi-input-merge",
    ALERTER: "source-node",
    EXISTING: "reused-stream-reference",
    PUBLISH: "delivery-root",
}

#: Kinds that are plan *sources* rather than operators; hitting one ends a
#: chain naturally and is not worth reporting as a "fallback".
_SOURCE_KINDS = (ALERTER, EXISTING)


class CompiledStage:
    """One fused stage: ``apply(item) -> item | None`` in a single call frame.

    ``apply_many(batch) -> batch`` is the vectorized entry: the same fused
    computation over a whole batch, memoised per *batch-list identity* so a
    thousand co-deployed twins of this stage probe the materialized table
    once per batch instead of once per item.  Sound because
    ``Stream.emit_many`` hands every batch subscriber the same list object
    and emitters never mutate a batch after handing it over (the same
    convention that makes per-item identity memoisation sound).
    """

    __slots__ = ("kind", "signature", "apply", "apply_many", "table")

    def __init__(
        self,
        kind: str,
        signature: str,
        apply: Callable[[Any], Any],
        apply_many: Callable[[Any], list],
        table: MaterializedTable,
    ) -> None:
        self.kind = kind
        self.signature = signature
        self.apply = apply
        self.apply_many = apply_many
        self.table = table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledStage({self.kind!r}, {self.signature!r})"


class PlanCompiler:
    """Partitions plans into fusable segments and compiles them to stages."""

    def __init__(
        self,
        table: MaterializedTable,
        cache: CompiledPlanCache,
        stats: CompileStats,
        registry_for: Callable[[str], ServiceRegistry | None] | None = None,
    ) -> None:
        self.table = table
        self.cache = cache
        self.stats = stats
        #: ``peer_id -> ServiceRegistry`` resolver for tree-pattern stages.
        #: Resolved lazily *per item*, never captured at compile time:
        #: compiled programs outlive peer objects in the plan cache, and a
        #: departed-then-rejoined peer carries a fresh registry.
        self.registry_for = registry_for

    # -- fallback rules ------------------------------------------------------

    def fallback_reason(self, node: PlanNode) -> str | None:
        """``None`` when ``node`` fuses; otherwise why it stays interpreted."""
        if node.kind in FUSABLE_KINDS and len(node.children) != 1:
            return "non-unary-input"
        if node.kind == FILTER:
            if node.params.get("subscription") is None:
                return "missing-subscription"
            return None
        if node.kind == RESTRUCTURE:
            if node.params.get("template") is None:
                return "missing-template"
            return None
        return FALLBACK_REASONS.get(node.kind, "unknown-operator")

    # -- segment analysis ----------------------------------------------------

    def plan_segments(self, plan: PlanNode) -> dict[int, list[PlanNode]]:
        """Maximal fusable segments of ``plan``: ``id(tail node) -> chain``.

        Each chain is head-first (closest to the source), every node in it is
        fusable, unary, and placed on the same peer as the tail.  Keying by
        the *tail* node's identity lets the deployer intercept exactly the
        node whose output the parent consumes, deploying the whole chain as
        one :class:`CompiledPipeline` and recursing below the head.
        """
        segments: dict[int, list[PlanNode]] = {}
        self._analyze(plan, segments)
        return segments

    def _analyze(self, node: PlanNode, segments: dict[int, list[PlanNode]]) -> None:
        reason = self.fallback_reason(node)
        if reason is not None:
            if node.kind not in _SOURCE_KINDS:
                self.stats.record_fallback(node.kind, reason)
            for child in node.children:
                self._analyze(child, segments)
            return
        # ``node`` is a fusable tail; extend the chain towards the source
        # while the single input is fusable and co-located.
        chain = [node]
        cursor = node
        while True:
            below = cursor.children[0]
            if self.fallback_reason(below) is not None:
                # the recursion below the head re-visits this child and
                # records its fallback reason exactly once
                break
            if below.placement != cursor.placement:
                # fusable but on another peer: the chain splits here and the
                # remote hop stays a real channel, exactly as interpreted
                self.stats.record_remote_split()
                break
            chain.append(below)
            cursor = below
        chain.reverse()  # head (source side) first
        segments[id(node)] = chain
        self.stats.record_segment(len(chain))
        # recurse below the head of the chain (its children were not analyzed
        # above; a remote-split child is a fresh analysis root)
        for child in chain[0].children:
            self._analyze(child, segments)

    # -- compilation ---------------------------------------------------------

    def compile_segment(self, chain: list[PlanNode], epoch: int) -> tuple[CompiledStage, ...]:
        """Compile a head-first chain into its stage tuple, cached per epoch."""
        signatures = tuple(stage_signature(node) for node in chain)
        key = (signatures, epoch)
        program = self.cache.get(key)
        if program is None:
            program = tuple(
                self._stage_for(node, signature)
                for node, signature in zip(chain, signatures)
            )
            self.cache.put(key, program)
        # pin the stages on the nodes so a later deployment of the *same*
        # node objects (and only those) can skip the per-node rebuild; equal
        # signatures imply interchangeable stages, so cache hits may hand a
        # node a stage built from a signature-twin
        for node, stage in zip(chain, program):
            node._stage = stage
        return program

    def _stage_for(self, node: PlanNode, signature: str) -> CompiledStage:
        stage = node._stage
        if (
            isinstance(stage, CompiledStage)
            and stage.table is self.table
            # a node re-placed on another peer changes a tree-pattern stage's
            # signature (peer-qualified): the pinned stage is then stale
            and stage.signature == signature
        ):
            return stage
        return self._build_stage(node, signature)

    def _build_stage(self, node: PlanNode, signature: str) -> CompiledStage:
        table = self.table
        #: batch results memoise under a distinct interned key so a batch
        #: entry never evicts the per-item entry twin stages still probe
        many_signature = intern_signature("many:" + signature)
        if node.kind == FILTER:
            subscription = node.params["subscription"]
            if subscription.complex_queries:
                registry_for = self.registry_for
                if registry_for is None:
                    predicate = compile_tree_predicate(subscription)
                else:
                    placement = node.placement

                    def resolve() -> ServiceRegistry | None:
                        return registry_for(placement)

                    predicate = compile_tree_predicate(subscription, resolve)
                # a lazy-DFA walk always dwarfs the table probe: memoise
                # unconditionally so signature-twins share one verdict
                memoise = True
            else:
                predicate = compile_simple_predicate(subscription)
                # memoise only when the verdict is worth sharing: computed
                # conditions re-parse attribute numbers and >=3 conditions
                # mean several closure calls, while 1-2 plain comparisons are
                # cheaper than the table probe itself
                memoise = bool(subscription.computed) or len(subscription.simple) >= 3
            if memoise:

                def apply(item: Any) -> Any:
                    verdict = table.get(signature, item)
                    if verdict is MISS:
                        verdict = table.put(signature, item, predicate(item))
                    return item if verdict else None

                def apply_many(batch: Any) -> list:
                    survivors = table.get(many_signature, batch)
                    if survivors is MISS:
                        survivors = []
                        for item in batch:
                            verdict = table.get(signature, item)
                            if verdict is MISS:
                                verdict = table.put(signature, item, predicate(item))
                            if verdict:
                                survivors.append(item)
                        table.put(many_signature, batch, survivors)
                    return survivors

            else:

                def apply(item: Any) -> Any:
                    return item if predicate(item) else None

                def apply_many(batch: Any) -> list:
                    return [item for item in batch if predicate(item)]

            return CompiledStage(FILTER, signature, apply, apply_many, table)
        if node.kind == RESTRUCTURE:
            template = node.params["template"]
            var = node.params.get("var")
            instantiate = template.instantiate

            def apply(item: Any) -> Any:
                # identical templates across co-deployed subscriptions build
                # the output tree once per item; sharing the resulting
                # Element matches the interpreted filter's identity
                # forwarding -- receivers never mutate delivered items
                out = table.get(signature, item)
                if out is MISS:
                    out = table.put(signature, item, instantiate(get_binding(item, var)))
                return out

            def apply_many(batch: Any) -> list:
                results = table.get(many_signature, batch)
                if results is MISS:
                    results = []
                    for item in batch:
                        out = table.get(signature, item)
                        if out is MISS:
                            out = table.put(
                                signature, item, instantiate(get_binding(item, var))
                            )
                        results.append(out)
                    table.put(many_signature, batch, results)
                return results

            return CompiledStage(RESTRUCTURE, signature, apply, apply_many, table)
        raise ValueError(f"cannot build a compiled stage for kind {node.kind!r}")
