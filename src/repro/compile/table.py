"""System-wide materialized-expression table (cross-plan CSE).

The table memoises, per published item, the result of each interned stage
signature: when a thousand co-deployed subscriptions share the same
restructure template or the same fused predicate, the expression is evaluated
once and the remaining nine hundred ninety-nine stages hit the memo.

The memo holds exactly one entry per signature -- the last item seen.  Local
fan-out is synchronous (a source emits to all its consumers before the next
item exists), so consecutive evaluations of one signature against the same
item are adjacent in time and a single-entry memo captures the entire win
without unbounded growth.  Entries are validated by *item identity*, and the
item is kept strongly referenced by its entry, so a recycled object id can
never alias a stale value.
"""

from __future__ import annotations

from typing import Any

#: Sentinel distinguishing "no memo" from a memoised ``None``/falsy value.
MISS: Any = object()


class MaterializedTable:
    """Single-entry-per-signature memo of stage results, shared system-wide."""

    __slots__ = ("_entries", "hits", "misses")

    def __init__(self) -> None:
        self._entries: dict[str, tuple[Any, Any]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, signature: str, item: Any) -> Any:
        """Memoised value of ``signature`` for ``item``, or :data:`MISS`."""
        entry = self._entries.get(signature)
        if entry is not None and entry[0] is item:
            self.hits += 1
            return entry[1]
        self.misses += 1
        return MISS

    def put(self, signature: str, item: Any, value: Any) -> Any:
        """Memoise ``value`` for ``(signature, item)``; returns ``value``."""
        self._entries[signature] = (item, value)
        return value

    def clear(self) -> None:
        self._entries.clear()

    @property
    def size(self) -> int:
        return len(self._entries)

    def snapshot(self) -> dict[str, int | float]:
        total = self.hits + self.misses
        return {
            "signatures": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }
