"""Interned stage signatures for the plan compiler.

A *stage signature* identifies the exact per-item computation a fused stage
performs, independently of which subscription or plan node it came from.  Two
nodes with equal stage signatures are interchangeable inside a compiled
pipeline and may share one :class:`~repro.compile.table.MaterializedTable`
slot -- this is what makes cross-plan common-subexpression elimination sound.

Signatures build on the PR5 ``signature_detail`` memo (cached per node, a pure
function of ``params``) and are interned so the materialized table's hit path
compares pointers, not characters.
"""

from __future__ import annotations

from repro.algebra.expr import intern_signature
from repro.algebra.plan import FILTER, RESTRUCTURE, PlanNode, signature_detail


def stage_signature(node: PlanNode) -> str:
    """Interned signature of one fusable stage.

    FILTER details (sorted condition strings) fully determine the predicate.
    RESTRUCTURE details fingerprint only the template skeleton, so the binding
    variable must be appended: two restructures sharing a template but binding
    different loop variables compute different trees from tuple items.
    """
    detail = signature_detail(node)
    if node.kind == FILTER:
        subscription = node.params.get("subscription")
        if subscription is not None and subscription.complex_queries:
            # tree-pattern verdicts can depend on the peer's ServiceRegistry
            # (intensional content is materialised through it), so complex
            # filters are peer-qualified: equal tree predicates on different
            # peers must not share one memo slot or one compiled program
            return intern_signature(f"filter:{detail}@{node.placement}")
        return intern_signature(f"filter:{detail}")
    if node.kind == RESTRUCTURE:
        var = node.params.get("var") or "item"
        return intern_signature(f"restructure:{detail}:{var}")
    raise ValueError(f"plan node kind {node.kind!r} has no stage signature")
