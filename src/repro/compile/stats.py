"""Counters describing what the plan compiler did and why it fell back."""

from __future__ import annotations


class CompileStats:
    """Cumulative compiler observability, surfaced via ``handle.stats()``."""

    __slots__ = (
        "segments_fused",
        "stages_fused",
        "fallbacks",
        "remote_splits",
        "ticks",
        "consumers_fused",
        "item_invocations",
        "batch_invocations",
        "batch_items",
    )

    def __init__(self) -> None:
        self.segments_fused = 0
        self.stages_fused = 0
        #: operator kind -> {reason: count}
        self.fallbacks: dict[str, dict[str, int]] = {}
        self.remote_splits = 0
        self.ticks = 0
        #: operator kind -> count of probe-side consumer fusions (JOIN/GROUP)
        self.consumers_fused: dict[str, int] = {}
        # stage-invocation split: how much of the fused work ran through the
        # vectorized ``apply_many`` path vs the per-item ``apply`` path
        self.item_invocations = 0
        self.batch_invocations = 0
        self.batch_items = 0

    def record_segment(self, length: int) -> None:
        self.segments_fused += 1
        self.stages_fused += length

    def record_fallback(self, kind: str, reason: str) -> None:
        bucket = self.fallbacks.setdefault(kind, {})
        bucket[reason] = bucket.get(reason, 0) + 1

    def record_remote_split(self) -> None:
        self.remote_splits += 1

    def record_tick(self) -> None:
        self.ticks += 1

    def record_consumer_fused(self, kind: str) -> None:
        self.consumers_fused[kind] = self.consumers_fused.get(kind, 0) + 1

    def snapshot(self) -> dict:
        return {
            "segments_fused": self.segments_fused,
            "stages_fused": self.stages_fused,
            # reasons are sorted alongside kinds so snapshots (and the
            # reports/tests built on them) are deterministic across runs
            # regardless of first-recorded order
            "fallbacks": {
                kind: dict(sorted(reasons.items()))
                for kind, reasons in sorted(self.fallbacks.items())
            },
            "remote_splits": self.remote_splits,
            "ticks": self.ticks,
            "consumers_fused": dict(sorted(self.consumers_fused.items())),
            "stage_invocations": {
                "item": self.item_invocations,
                "batch": self.batch_invocations,
                "batch_items": self.batch_items,
            },
        }
