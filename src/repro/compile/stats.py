"""Counters describing what the plan compiler did and why it fell back."""

from __future__ import annotations


class CompileStats:
    """Cumulative compiler observability, surfaced via ``handle.stats()``."""

    __slots__ = ("segments_fused", "stages_fused", "fallbacks", "remote_splits", "ticks")

    def __init__(self) -> None:
        self.segments_fused = 0
        self.stages_fused = 0
        #: operator kind -> {reason: count}
        self.fallbacks: dict[str, dict[str, int]] = {}
        self.remote_splits = 0
        self.ticks = 0

    def record_segment(self, length: int) -> None:
        self.segments_fused += 1
        self.stages_fused += length

    def record_fallback(self, kind: str, reason: str) -> None:
        bucket = self.fallbacks.setdefault(kind, {})
        bucket[reason] = bucket.get(reason, 0) + 1

    def record_remote_split(self) -> None:
        self.remote_splits += 1

    def record_tick(self) -> None:
        self.ticks += 1

    def snapshot(self) -> dict:
        return {
            "segments_fused": self.segments_fused,
            "stages_fused": self.stages_fused,
            "fallbacks": {
                kind: dict(reasons) for kind, reasons in sorted(self.fallbacks.items())
            },
            "remote_splits": self.remote_splits,
            "ticks": self.ticks,
        }
