"""Plan compilation: fused pipeline closures with cross-plan CSE.

The default execution mode (pin ``P2PMSystem(execution_mode="interpreted")``
for the reference engine).  The compiler partitions each deployed plan into
maximal linear segments of co-located fusable operators -- simple and
tree-pattern filters alike -- fuses every segment into a single call frame
per item (:class:`CompiledPipeline`, with a batched ``apply_many`` entry
point per stage), memoises identical sub-expressions across all co-deployed
subscriptions through one system-wide :class:`MaterializedTable`, and fuses
pipeline tails into co-located JOIN/GROUP probe closures.  Everything
uncompilable falls back, per operator, to the interpreted chain --
differential tests pin the two modes byte-identical on the network.
"""

from .cache import CompiledPlanCache
from .compiler import FALLBACK_REASONS, FUSABLE_KINDS, CompiledStage, PlanCompiler
from .pipeline import CompiledPipeline
from .signatures import stage_signature
from .stats import CompileStats
from .table import MISS, MaterializedTable

#: Valid values for ``P2PMSystem(execution_mode=...)``.
EXECUTION_MODES = ("interpreted", "compiled")

__all__ = [
    "EXECUTION_MODES",
    "FALLBACK_REASONS",
    "FUSABLE_KINDS",
    "MISS",
    "CompiledPlanCache",
    "CompiledPipeline",
    "CompiledStage",
    "CompileStats",
    "MaterializedTable",
    "PlanCompiler",
    "stage_signature",
]
