"""Cache of compiled pipeline programs, keyed by stage signatures + epoch.

Recovery and make-before-break redeployments bump the deployment epoch; keying
compiled programs on it guarantees a replacement deployment never inherits a
program whose stages were built against the failed epoch's assumptions, while
steady-state redeployments of the same plan shape (the ~0.99 reuse hit rate
from BENCH_ingest) compile exactly once.
"""

from __future__ import annotations

from typing import Any

#: Program cache key: (interned stage signatures of the segment, epoch).
ProgramKey = tuple[tuple[str, ...], int]


class CompiledPlanCache:
    """Interned compiled programs, epoch-invalidated.

    Mirrors the reuse layer's :class:`ReuseSignatureCache` eviction policy:
    bounded, dropping entries from dead epochs first and clearing outright
    only when live entries alone exceed the bound.
    """

    #: bound on retained programs: each holds stage closures and, per FILTER
    #: stage, a fused predicate; long churny runs would otherwise accumulate
    #: epoch-stale programs without limit
    LIMIT = 512

    def __init__(self) -> None:
        self._entries: dict[ProgramKey, tuple[Any, ...]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: ProgramKey) -> tuple[Any, ...] | None:
        program = self._entries.get(key)
        if program is None:
            self.misses += 1
            return None
        self.hits += 1
        return program

    def put(self, key: ProgramKey, program: tuple[Any, ...]) -> None:
        if len(self._entries) >= self.LIMIT and key not in self._entries:
            epoch = key[1]
            stale = [k for k in self._entries if k[1] != epoch]
            for k in stale:
                del self._entries[k]
            if len(self._entries) >= self.LIMIT:
                self._entries.clear()
        self._entries[key] = program

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> dict[str, int | float]:
        total = self.hits + self.misses
        return {
            "programs": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }
