"""CompiledPipeline: the runtime object replacing an interpreted chain.

A pipeline owns the fused stages of one deployed segment plus one *boundary*
per stage -- the output stream, its publication channel and a liveness
snapshot.  Per item the pipeline runs stage after stage inline (one call
frame, no ``Stream.emit`` between co-located stages) and only writes a
boundary through when something outside the pipeline actually consumes it:

* the tail boundary emits to its stream (the parent operator / publisher
  consumes it) -- unless the deployer fused a co-located stateful consumer
  onto the tail, in which case items are pushed straight into the consumer's
  compiled probe closure and the stream hop is skipped while nothing else
  watches the boundary;
* an intermediate boundary emits when its channel has remote subscribers or
  its stream gained subscribers beyond the pipeline's own continuation
  (stream reuse, replicas, test taps) -- the continuation then carries on, so
  each item is processed by exactly one path;
* a *dark* intermediate boundary (no external consumer) is skipped entirely.
  This is network-invisible: the channel forwarder drops emits into
  subscriber-less channels before touching sequence numbers, so skipping the
  emit produces byte-identical traffic.

EOS ordering matches the interpreted operators exactly: each stage entry
closes its own boundary on EOS, which cascades to the next entry through the
boundary stream just as ``Operator.on_close`` cascades.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.streams.item import is_eos
from repro.streams.stream import Stream

from .compiler import CompiledStage


class _Boundary:
    """Per-stage output: stream + channel + external-consumer watches."""

    __slots__ = ("stream", "channel", "watches")

    def __init__(self, stream: Stream, channel: Any) -> None:
        self.stream = stream
        self.channel = channel
        #: tuple of (stream, baseline subscriber count); counts above the
        #: baseline mean an external consumer attached after deployment
        self.watches: tuple[tuple[Stream, int], ...] = ()

    def is_live(self) -> bool:
        channel = self.channel
        if channel is not None and channel.subscribers:
            return True
        for stream, baseline in self.watches:
            if stream.has_subscribers_beyond(baseline):
                return True
        return False


class CompiledPipeline:
    """Fused execution of one plan segment, installed by the deployer."""

    name = "CompiledPipeline"
    stateless = True

    __slots__ = (
        "stages",
        "boundaries",
        "sub_id",
        "peer_id",
        "items_in",
        "items_out",
        "_entries",
        "_consumer",
        "stats",
    )

    def __init__(
        self,
        stages: tuple[CompiledStage, ...],
        sub_id: str,
        peer_id: str,
        stats: Any = None,
    ) -> None:
        self.stages = stages
        self.boundaries: list[_Boundary] = []
        self.sub_id = sub_id
        self.peer_id = peer_id
        self.items_in = 0
        self.items_out = 0
        #: per-stage unsubscribers for the entry callbacks; None once detached
        self._entries: list[Callable[[], None] | None] = [None] * len(stages)
        #: fused tail consumer: (operator, probe, probe_batch) or None
        self._consumer: tuple[Any, Callable[[Any], None], Callable[[Any], None]] | None = None
        self.stats = stats

    # -- wiring (called by the deployer, in deployment order) ---------------

    def add_boundary(self, stream: Stream, channel: Any) -> None:
        self.boundaries.append(_Boundary(stream, channel))

    def seal_boundary(self, index: int, watches: tuple[tuple[Stream, int], ...]) -> None:
        self.boundaries[index].watches = watches

    def fuse_consumer(
        self,
        operator: Any,
        probe: Callable[[Any], None],
        probe_batch: Callable[[Any], None],
        watches: tuple[tuple[Stream, int], ...],
    ) -> None:
        """Fuse a co-located stateful consumer onto the tail boundary.

        ``watches`` must be snapshotted *after* the operator subscribed to
        the tail stream: the operator's own subscription is then inside the
        baseline and :meth:`_Boundary.is_live` fires only for consumers that
        attach later (test taps, reuse providers, channel subscribers).
        While the boundary stays dark, tail items skip the stream hop and
        run the probe directly; the moment it lights up -- or the operator
        detaches -- items go through the stream again and the operator
        receives them via its ordinary subscription, so processing is
        single-path in every state.  EOS always travels the stream (the
        probe never sees it), preserving the interpreted close cascade.
        """
        self.boundaries[-1].watches = watches
        self._consumer = (operator, probe, probe_batch)

    def make_entry(self, index: int) -> Callable[[Any], None]:
        """Deliver callback consuming stage ``index``'s input stream.

        Entry 0 consumes the segment's source; entry ``i > 0`` is the
        continuation subscribed to boundary ``i - 1`` and only runs when that
        boundary was written through (live) or fed externally (orphan
        adoption replays, reuse providers).
        """

        def deliver(item: Any, _i: int = index) -> None:
            if is_eos(item):
                # mirror Operator.on_close: input ended -> close own output,
                # cascading stage by stage through the boundary streams
                self.boundaries[_i].stream.close()
                return
            if _i == 0:
                self.items_in += 1
            self._run_from(_i, item)

        def deliver_batch(items: Any, _i: int = index) -> None:
            if _i == 0:
                self.items_in += len(items)
            self._run_batch_from(_i, items)

        deliver.batch = deliver_batch  # type: ignore[attr-defined]
        return deliver

    def attach_entry(self, index: int, unsubscribe: Callable[[], None]) -> None:
        self._entries[index] = unsubscribe

    def detach_stage(self, index: int) -> None:
        unsubscribe = self._entries[index]
        if unsubscribe is not None:
            self._entries[index] = None
            unsubscribe()

    @property
    def detached(self) -> bool:
        return all(entry is None for entry in self._entries)

    # -- execution -----------------------------------------------------------

    def _run_from(self, i: int, item: Any) -> None:
        stages = self.stages
        boundaries = self.boundaries
        stats = self.stats
        last = len(stages) - 1
        while True:
            if stats is not None:
                stats.item_invocations += 1
            out = stages[i].apply(item)
            if out is None:
                return
            boundary = boundaries[i]
            if i == last:
                self.items_out += 1
                consumer = self._consumer
                if (
                    consumer is not None
                    and not consumer[0].detached
                    and not boundary.is_live()
                ):
                    # fused stateful consumer, dark boundary: push straight
                    # into the probe, skipping the stream hop
                    consumer[1](out)
                else:
                    boundary.stream.emit(out)
                return
            if self._entries[i + 1] is None or boundary.is_live():
                # write through: either an external consumer is attached (our
                # continuation on this boundary resumes the remaining stages,
                # so processing stays single-path), or the downstream stages
                # were torn down while this boundary stream survives for
                # reuse consumers -- exactly an interpreted upstream operator
                # emitting after its downstream operator detached
                boundary.stream.emit(out)
                return
            item = out
            i += 1

    def _run_batch_from(self, i: int, items: Any) -> None:
        stages = self.stages
        boundaries = self.boundaries
        stats = self.stats
        last = len(stages) - 1
        batch = items
        while True:
            stage = stages[i]
            if stats is not None:
                stats.batch_invocations += 1
                stats.batch_items += len(batch)
            batch = stage.apply_many(batch)
            if not batch:
                return
            boundary = boundaries[i]
            if i == last:
                self.items_out += len(batch)
                consumer = self._consumer
                if (
                    consumer is not None
                    and not consumer[0].detached
                    and not boundary.is_live()
                ):
                    consumer[2](batch)
                else:
                    boundary.stream.emit_many(batch)
                return
            if self._entries[i + 1] is None or boundary.is_live():
                boundary.stream.emit_many(batch)
                return
            i += 1

    # -- observability -------------------------------------------------------

    def describe(self) -> dict:
        return {
            "sub_id": self.sub_id,
            "peer": self.peer_id,
            "stages": [stage.signature for stage in self.stages],
            "items_in": self.items_in,
            "items_out": self.items_out,
            "detached": self.detached,
            "consumer_fused": (
                self._consumer[0].name if self._consumer is not None else None
            ),
        }

    def __repr__(self) -> str:
        return (
            f"CompiledPipeline(sub={self.sub_id!r}, peer={self.peer_id!r}, "
            f"stages={len(self.stages)})"
        )
