"""CompiledPipeline: the runtime object replacing an interpreted chain.

A pipeline owns the fused stages of one deployed segment plus one *boundary*
per stage -- the output stream, its publication channel and a liveness
snapshot.  Per item the pipeline runs stage after stage inline (one call
frame, no ``Stream.emit`` between co-located stages) and only writes a
boundary through when something outside the pipeline actually consumes it:

* the tail boundary always emits (the parent operator / publisher consumes it);
* an intermediate boundary emits when its channel has remote subscribers or
  its stream gained subscribers beyond the pipeline's own continuation
  (stream reuse, replicas, test taps) -- the continuation then carries on, so
  each item is processed by exactly one path;
* a *dark* intermediate boundary (no external consumer) is skipped entirely.
  This is network-invisible: the channel forwarder drops emits into
  subscriber-less channels before touching sequence numbers, so skipping the
  emit produces byte-identical traffic.

EOS ordering matches the interpreted operators exactly: each stage entry
closes its own boundary on EOS, which cascades to the next entry through the
boundary stream just as ``Operator.on_close`` cascades.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.algebra.plan import FILTER
from repro.streams.item import is_eos
from repro.streams.stream import Stream

from .compiler import CompiledStage


class _Boundary:
    """Per-stage output: stream + channel + external-consumer watches."""

    __slots__ = ("stream", "channel", "watches")

    def __init__(self, stream: Stream, channel: Any) -> None:
        self.stream = stream
        self.channel = channel
        #: tuple of (stream, baseline subscriber count); counts above the
        #: baseline mean an external consumer attached after deployment
        self.watches: tuple[tuple[Stream, int], ...] = ()

    def is_live(self) -> bool:
        channel = self.channel
        if channel is not None and channel.subscribers:
            return True
        for stream, baseline in self.watches:
            if stream.has_subscribers_beyond(baseline):
                return True
        return False


class CompiledPipeline:
    """Fused execution of one plan segment, installed by the deployer."""

    name = "CompiledPipeline"
    stateless = True

    __slots__ = (
        "stages",
        "boundaries",
        "sub_id",
        "peer_id",
        "items_in",
        "items_out",
        "_entries",
    )

    def __init__(
        self, stages: tuple[CompiledStage, ...], sub_id: str, peer_id: str
    ) -> None:
        self.stages = stages
        self.boundaries: list[_Boundary] = []
        self.sub_id = sub_id
        self.peer_id = peer_id
        self.items_in = 0
        self.items_out = 0
        #: per-stage unsubscribers for the entry callbacks; None once detached
        self._entries: list[Callable[[], None] | None] = [None] * len(stages)

    # -- wiring (called by the deployer, in deployment order) ---------------

    def add_boundary(self, stream: Stream, channel: Any) -> None:
        self.boundaries.append(_Boundary(stream, channel))

    def seal_boundary(self, index: int, watches: tuple[tuple[Stream, int], ...]) -> None:
        self.boundaries[index].watches = watches

    def make_entry(self, index: int) -> Callable[[Any], None]:
        """Deliver callback consuming stage ``index``'s input stream.

        Entry 0 consumes the segment's source; entry ``i > 0`` is the
        continuation subscribed to boundary ``i - 1`` and only runs when that
        boundary was written through (live) or fed externally (orphan
        adoption replays, reuse providers).
        """

        def deliver(item: Any, _i: int = index) -> None:
            if is_eos(item):
                # mirror Operator.on_close: input ended -> close own output,
                # cascading stage by stage through the boundary streams
                self.boundaries[_i].stream.close()
                return
            if _i == 0:
                self.items_in += 1
            self._run_from(_i, item)

        def deliver_batch(items: Any, _i: int = index) -> None:
            if _i == 0:
                self.items_in += len(items)
            self._run_batch_from(_i, items)

        deliver.batch = deliver_batch  # type: ignore[attr-defined]
        return deliver

    def attach_entry(self, index: int, unsubscribe: Callable[[], None]) -> None:
        self._entries[index] = unsubscribe

    def detach_stage(self, index: int) -> None:
        unsubscribe = self._entries[index]
        if unsubscribe is not None:
            self._entries[index] = None
            unsubscribe()

    @property
    def detached(self) -> bool:
        return all(entry is None for entry in self._entries)

    # -- execution -----------------------------------------------------------

    def _run_from(self, i: int, item: Any) -> None:
        stages = self.stages
        boundaries = self.boundaries
        last = len(stages) - 1
        while True:
            out = stages[i].apply(item)
            if out is None:
                return
            boundary = boundaries[i]
            if i == last:
                self.items_out += 1
                boundary.stream.emit(out)
                return
            if self._entries[i + 1] is None or boundary.is_live():
                # write through: either an external consumer is attached (our
                # continuation on this boundary resumes the remaining stages,
                # so processing stays single-path), or the downstream stages
                # were torn down while this boundary stream survives for
                # reuse consumers -- exactly an interpreted upstream operator
                # emitting after its downstream operator detached
                boundary.stream.emit(out)
                return
            item = out
            i += 1

    def _run_batch_from(self, i: int, items: Any) -> None:
        stages = self.stages
        boundaries = self.boundaries
        last = len(stages) - 1
        batch = items
        while True:
            stage = stages[i]
            if stage.kind != FILTER:
                # interpreted RestructureOperator has no batch override: a
                # batch degrades to per-item emits downstream, so mirror that
                for item in batch:
                    self._run_from(i, item)
                return
            apply = stage.apply
            survivors = [item for item in batch if apply(item) is not None]
            if not survivors:
                return
            boundary = boundaries[i]
            if i == last:
                self.items_out += len(survivors)
                boundary.stream.emit_many(survivors)
                return
            if self._entries[i + 1] is None or boundary.is_live():
                boundary.stream.emit_many(survivors)
                return
            batch = survivors
            i += 1

    # -- observability -------------------------------------------------------

    def describe(self) -> dict:
        return {
            "sub_id": self.sub_id,
            "peer": self.peer_id,
            "stages": [stage.signature for stage in self.stages],
            "items_in": self.items_in,
            "items_out": self.items_out,
            "detached": self.detached,
        }

    def __repr__(self) -> str:
        return (
            f"CompiledPipeline(sub={self.sub_id!r}, peer={self.peer_id!r}, "
            f"stages={len(self.stages)})"
        )
