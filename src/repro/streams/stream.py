"""Push-based streams with subscriber fan-out and accounting.

A :class:`Stream` is the in-process representation of the paper's XML
streams.  Producers (alerters, operators) call :meth:`Stream.emit`; every
subscriber callback receives the item.  Cross-peer delivery is layered on
top by :mod:`repro.net.channel`, which subscribes a forwarding callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.streams.item import EOS, is_eos
from repro.xmlmodel.tree import Element

Subscriber = Callable[[object], None]


class StreamClosedError(RuntimeError):
    """Raised when emitting on a stream that has already seen EOS."""


@dataclass
class StreamStats:
    """Counters maintained per stream; benchmarks read these.

    ``bytes`` accounting reuses the weight memoised on the
    :class:`~repro.xmlmodel.tree.Element` itself, so an item that already
    crossed the network (or another stream) is not walked a second time per
    emit.
    """

    items: int = 0
    bytes: int = 0

    def record(self, item: Element) -> None:
        self.items += 1
        self.bytes += item.weight()

    def record_many(self, items: list[Element]) -> None:
        self.items += len(items)
        self.bytes += sum(item.weight() for item in items)


class Stream:
    """A named, push-based stream of XML trees.

    Parameters
    ----------
    stream_id:
        Identifier of the stream, unique within its peer.
    peer_id:
        Identifier of the peer that produces the stream (may be ``None`` for
        purely local streams used in tests).
    keep_history:
        When true, every emitted item is retained in :attr:`history`.  The
        stateful Join operator and tests use this.
    """

    def __init__(
        self,
        stream_id: str,
        peer_id: str | None = None,
        keep_history: bool = False,
    ) -> None:
        self.stream_id = stream_id
        self.peer_id = peer_id
        self.keep_history = keep_history
        self.history: list[Element] = []
        self.stats = StreamStats()
        self.closed = False
        self._subscribers: list[Subscriber] = []
        #: successor stream after a recovery handover; unsubscribers issued
        #: against this stream chase the chain so they keep working after
        #: their callback was moved to a replacement delivery stream
        self._moved_to: "Stream | None" = None

    # -- identity ------------------------------------------------------------

    @property
    def qualified_id(self) -> str:
        """``streamId@peerId`` -- how the paper denotes streams (s@p)."""
        return f"{self.stream_id}@{self.peer_id or 'local'}"

    # -- subscription ----------------------------------------------------------

    def subscribe(self, callback: Subscriber) -> Callable[[], None]:
        """Register ``callback`` and return a function that unsubscribes it.

        The unsubscriber stays valid across recovery handovers: if the
        callback was moved to a successor stream (see
        :meth:`attach_subscribers`), it is removed from wherever it
        currently lives.
        """
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            stream: Stream | None = self
            while stream is not None:
                if callback in stream._subscribers:
                    stream._subscribers.remove(callback)
                    return
                stream = stream._moved_to

        return unsubscribe

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def has_subscribers_beyond(self, baseline: int) -> bool:
        """True when more than ``baseline`` subscribers are attached.

        Compiled pipelines snapshot the subscriber count of each intermediate
        boundary stream right after wiring their own continuation; any count
        above that baseline means an external consumer (stream reuse, a test
        tap, a replica) attached later, so the boundary must be written
        through instead of fused past.
        """
        return len(self._subscribers) > baseline

    def detach_subscribers(self) -> list[Subscriber]:
        """Remove and return all subscribers (they stop receiving items).

        Recovery uses this handover pair: result buffers and user callbacks
        are detached from a dying task's delivery stream *before* teardown
        closes it (so they never see a spurious EOS) and re-attached to the
        replacement task's delivery stream with :meth:`attach_subscribers`.
        """
        detached = self._subscribers[:]
        self._subscribers.clear()
        return detached

    def attach_subscribers(
        self, subscribers: Iterable[Subscriber], moved_from: "Stream | None" = None
    ) -> None:
        """Attach previously detached subscribers (see :meth:`detach_subscribers`).

        Pass the stream they came from as ``moved_from`` so unsubscribers
        issued by that stream keep working (they follow the chain here).
        """
        self._subscribers.extend(subscribers)
        if moved_from is not None and moved_from is not self:
            moved_from._moved_to = self

    # -- emission ----------------------------------------------------------------

    def emit(self, item: Element) -> None:
        """Push one XML tree to all subscribers."""
        if self.closed:
            raise StreamClosedError(f"stream {self.qualified_id} is closed")
        if not isinstance(item, Element):
            raise TypeError(f"stream items must be Elements, got {type(item).__name__}")
        self.stats.record(item)
        if self.keep_history:
            self.history.append(item)
        subscribers = self._subscribers
        if len(subscribers) == 1:
            # common delivery-path shape (channel proxy -> one forwarder):
            # skip the defensive copy; a lone subscriber that unsubscribes
            # or subscribes others mid-call sees the same behaviour a
            # snapshot would give it
            subscribers[0](item)
        else:
            for subscriber in list(subscribers):
                subscriber(item)

    def emit_many(self, items: Iterable[Element]) -> None:
        """Push a burst of XML trees, amortising accounting and fan-out.

        Stats and history are updated once for the whole batch (they commit
        when the open stream accepts it).

        Delivery contract:

        * Subscribers that advertise a batch entry point (a ``batch``
          attribute on the callback, as installed by
          :meth:`repro.algebra.operators.Operator.connect`) are **batch
          atomic**: each receives the whole burst in one call, before
          per-item subscribers.  A close they perform takes effect only
          after their call returns.
        * Per-item subscribers then receive the items item-major, exactly
          as a loop of :meth:`emit` calls would deliver them among
          themselves: an item in flight when the stream is closed still
          reaches each of them before delivery stops.
        * A close during delivery stops all further delivery — nothing is
          pushed after the EOS marker — and :class:`StreamClosedError` is
          raised to the producer.
        """
        batch = items if isinstance(items, list) else list(items)
        if not batch:
            return
        if self.closed:
            raise StreamClosedError(f"stream {self.qualified_id} is closed")
        for item in batch:
            if not isinstance(item, Element):
                raise TypeError(
                    f"stream items must be Elements, got {type(item).__name__}"
                )
        self.stats.record_many(batch)
        if self.keep_history:
            self.history.extend(batch)
        batch_subscribers = []
        item_subscribers = []
        for subscriber in list(self._subscribers):
            deliver_batch = getattr(subscriber, "batch", None)
            if deliver_batch is not None:
                batch_subscribers.append(deliver_batch)
            else:
                item_subscribers.append(subscriber)
        for deliver_batch in batch_subscribers:
            deliver_batch(batch)
            if self.closed:
                raise StreamClosedError(
                    f"stream {self.qualified_id} closed during batch delivery"
                )
        if item_subscribers:
            for item in batch:
                for subscriber in item_subscribers:
                    subscriber(item)
                if self.closed:
                    raise StreamClosedError(
                        f"stream {self.qualified_id} closed during batch delivery"
                    )

    def close(self) -> None:
        """Emit the end-of-stream marker and refuse further items."""
        if self.closed:
            return
        self.closed = True
        for subscriber in list(self._subscribers):
            subscriber(EOS)

    def push(self, item: object) -> None:
        """Forward either an item or EOS (convenient for chaining streams)."""
        if is_eos(item):
            self.close()
        else:
            self.emit(item)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"Stream({self.qualified_id}, {state}, items={self.stats.items}, "
            f"subscribers={len(self._subscribers)})"
        )


def collect(stream: Stream) -> list[Element]:
    """Subscribe a list-collector to ``stream`` and return the (live) list.

    Items emitted after the call are appended to the returned list; EOS is
    not appended.  Heavily used by tests and examples.
    """
    sink: list[Element] = []

    def _collector(item: object) -> None:
        if not is_eos(item):
            sink.append(item)  # type: ignore[arg-type]

    stream.subscribe(_collector)
    return sink
