"""Stream items and the end-of-stream marker.

An XML stream is "a possibly infinite sequence of XML trees.  A particular
symbol eos may be considered to denote the termination of the stream"
(Section 3.2).  Items are plain :class:`repro.xmlmodel.Element` trees; the
``EOS`` sentinel terminates a stream.
"""

from __future__ import annotations


class EndOfStream:
    """Singleton sentinel marking stream termination."""

    _instance: "EndOfStream | None" = None

    def __new__(cls) -> "EndOfStream":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "EOS"

    def __reduce__(self):  # keep singleton identity across copy/pickle
        return (EndOfStream, ())


#: The end-of-stream marker shared by all streams.
EOS = EndOfStream()


def is_eos(item: object) -> bool:
    """True when ``item`` is the end-of-stream marker."""
    return isinstance(item, EndOfStream)
