"""Streams of XML trees -- the central data abstraction of P2PM."""

from repro.streams.item import EOS, EndOfStream, is_eos
from repro.streams.stream import Stream, StreamClosedError, StreamStats, collect

__all__ = [
    "EOS",
    "EndOfStream",
    "is_eos",
    "Stream",
    "StreamClosedError",
    "StreamStats",
    "collect",
]
