"""Evolving RSS feeds with controlled churn (drives the RSS alerter)."""

from __future__ import annotations

import random

from repro.xmlmodel.tree import Element


class RSSFeedSimulator:
    """An RSS feed whose entries are added, removed and edited over time."""

    def __init__(
        self,
        feed_url: str,
        initial_entries: int = 5,
        add_rate: float = 0.6,
        remove_rate: float = 0.2,
        modify_rate: float = 0.3,
        seed: int = 0,
    ) -> None:
        self.feed_url = feed_url
        self.add_rate = add_rate
        self.remove_rate = remove_rate
        self.modify_rate = modify_rate
        self.random = random.Random(seed)
        self._sequence = 0
        self._entries: dict[str, str] = {}
        for _ in range(initial_entries):
            self._add_entry()

    # -- evolution ---------------------------------------------------------------

    def _add_entry(self) -> None:
        self._sequence += 1
        guid = f"entry-{self._sequence}"
        self._entries[guid] = f"headline {self._sequence}"

    def tick(self) -> None:
        """Advance the feed one step: maybe add, remove and/or modify entries."""
        if self.random.random() < self.add_rate:
            self._add_entry()
        if self._entries and self.random.random() < self.remove_rate:
            victim = self.random.choice(sorted(self._entries))
            del self._entries[victim]
        if self._entries and self.random.random() < self.modify_rate:
            target = self.random.choice(sorted(self._entries))
            self._entries[target] = f"{self._entries[target]} (updated)"

    # -- snapshot --------------------------------------------------------------------

    def snapshot(self) -> Element:
        """The current feed as an ``<rss>`` document."""
        channel = Element("channel", children=[Element("title", text=self.feed_url)])
        for guid in sorted(self._entries):
            channel.append(
                Element("item", children=[
                    Element("guid", text=guid),
                    Element("title", text=self._entries[guid]),
                ])
            )
        return Element("rss", {"version": "2.0"}, [channel])

    @property
    def entry_count(self) -> int:
        return len(self._entries)
