"""The meteo QoS scenario of Figure 1 / Figure 4, end to end.

Three monitored peers (a.com and b.com call the GetTemperature service of
meteo.com) plus one monitor peer.  The monitor office subscribes to detect
calls slower than a threshold; the subscription manager compiles, optimises,
places and deploys the distributed plan; the SOAP traffic generator then
drives the WS alerters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.monitor.handle import SubscriptionHandle
from repro.monitor.p2pm_peer import P2PMPeer, P2PMSystem
from repro.workloads.soap_traffic import SoapCall, SoapTrafficGenerator
from repro.xmlmodel.tree import Element

#: The subscription of Figure 1 (threshold parameterised).
METEO_SUBSCRIPTION_TEMPLATE = """
for $c1 in outCOM(<p>a.com</p> <p>b.com</p>),
    $c2 in inCOM(<p>meteo.com</p>)
let $duration := $c1.responseTimestamp - $c1.callTimestamp
where
    $duration > {threshold} and
    $c1.callMethod = "GetTemperature" and
    $c1.callee = "meteo.com" and
    $c1.callId = $c2.callId
return
    <incident type="slowAnswer">
        <client>{{$c1.caller}}</client>
        <tstamp>{{$c2.callTimestamp}}</tstamp>
    </incident>
by publish as channel "alertQoS";
"""


@dataclass
class MeteoScenario:
    """A ready-to-run deployment of the meteo monitoring example."""

    threshold: float = 10.0
    slow_fraction: float = 0.15
    seed: int = 7
    system: P2PMSystem = field(init=False)
    monitor: P2PMPeer = field(init=False)
    clients: list[str] = field(default_factory=lambda: ["a.com", "b.com"])
    server: str = "meteo.com"
    traffic: SoapTrafficGenerator = field(init=False)
    task: SubscriptionHandle | None = field(init=False, default=None)
    calls: list[SoapCall] = field(init=False, default_factory=list)
    #: result-buffer bound passed to subscribe() (results are opt-in + bounded)
    max_results: int = 10_000
    #: plan execution mode ("interpreted" or "compiled")
    execution_mode: str = "interpreted"
    #: execution runtime ("single" or "sharded") and worker count
    runtime: str = "single"
    shards: int = 0

    def __post_init__(self) -> None:
        self.system = P2PMSystem(
            seed=self.seed,
            execution_mode=self.execution_mode,
            runtime=self.runtime,
            shards=self.shards,
        )
        for peer_id in self.clients + [self.server]:
            self.system.add_peer(peer_id)
        self.monitor = self.system.add_peer("monitor.meteo.com")
        self.traffic = SoapTrafficGenerator(
            clients=self.clients,
            servers=[self.server],
            methods=["GetTemperature", "GetHumidity"],
            mean_response_time=2.0,
            slow_fraction=self.slow_fraction,
            seed=self.seed,
        )
        if self.runtime == "single":
            # whenever deployment creates a WS alerter on a monitored peer,
            # attach it to the traffic generator so it observes the calls
            for peer_id in self.clients + [self.server]:
                peer = self.system.peer(peer_id)
                peer.add_alerter_hook(self._attach_ws_alerter)
        # sharded: the generator stays pure (the parent's alerter mirrors
        # must not observe anything); run_traffic ships each call to the
        # WS alerters inside the workers that own the monitored peers

    def _attach_ws_alerter(self, alerter) -> None:
        if hasattr(alerter, "observe_call"):
            self.traffic.attach_alerter(alerter)

    # -- driving the scenario ---------------------------------------------------------

    def subscription_text(self) -> str:
        return METEO_SUBSCRIPTION_TEMPLATE.format(threshold=self.threshold)

    def deploy(self, **options) -> SubscriptionHandle:
        """Submit the Figure 1 subscription at the monitor peer."""
        options.setdefault("max_results", self.max_results)
        self.task = self.monitor.subscribe(self.subscription_text(), sub_id="meteo-qos", **options)
        self.system.run()
        # no-op for the single-process runtime; forks the shard workers for
        # "sharded" (deployment is frozen from here on)
        self.system.start_runtime()
        return self.task

    def run_traffic(self, n_calls: int) -> list[SoapCall]:
        """Generate SOAP calls and deliver all resulting monitoring messages."""
        calls = self.traffic.run(n_calls)
        self.calls.extend(calls)
        if self.runtime == "sharded":
            # each call is observed at both endpoints; the WS alerters
            # self-filter by peer and direction, exactly like the attached
            # alerters do under the single-process runtime
            for call in calls:
                self.system.drive_alerter(call.caller, "outCOM", "observe_call", call)
                self.system.drive_alerter(call.callee, "inCOM", "observe_call", call)
        self.system.run()
        return calls

    # -- ground truth -------------------------------------------------------------------

    def expected_incidents(self, calls: list[SoapCall]) -> list[SoapCall]:
        """The calls that the subscription should report (reference semantics)."""
        return [
            call
            for call in calls
            if call.method == "GetTemperature"
            and call.callee == self.server
            and call.duration > self.threshold
        ]

    def incidents(self) -> list[Element]:
        """The incident items actually produced by the deployed task."""
        return self.task.results() if self.task is not None else []
