"""Evolving XHTML pages with controlled change rates (drives the WebPage alerter)."""

from __future__ import annotations

import random

from repro.xmlmodel.tree import Element


class WebPageSimulator:
    """A set of pages at one site; each tick rewrites a fraction of them."""

    def __init__(self, site: str, n_pages: int = 5, change_rate: float = 0.3, seed: int = 0) -> None:
        if n_pages <= 0:
            raise ValueError("a site needs at least one page")
        self.site = site
        self.change_rate = change_rate
        self.random = random.Random(seed)
        self._versions: dict[str, int] = {f"{site}/page{i}": 0 for i in range(n_pages)}
        self.changes_applied = 0

    @property
    def urls(self) -> list[str]:
        return sorted(self._versions)

    def tick(self) -> list[str]:
        """Advance one step; returns the URLs that changed."""
        changed = []
        for url in self.urls:
            if self.random.random() < self.change_rate:
                self._versions[url] += 1
                self.changes_applied += 1
                changed.append(url)
        return changed

    def page(self, url: str) -> Element:
        """The current content of ``url``."""
        version = self._versions[url]
        body = Element("body", children=[
            Element("h1", text=url),
            Element("p", {"id": "version"}, text=f"revision {version}"),
            Element("p", {"id": "content"}, text=f"content of {url} at revision {version}"),
        ])
        return Element("html", children=[Element("head"), body])

    def source_for(self, url: str):
        """A provider callable suitable for :meth:`WebPageAlerter.watch`."""
        return lambda: self.page(url)
