"""Synthetic SOAP RPC traffic between peers.

Each generated :class:`SoapCall` is a call/response pair annotated with the
caller, callee, method, timestamps and status -- exactly the information the
paper's WS alerter extracts from Axis handlers.  The generator notifies the
registered WS alerters of every completed call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.alerters.ws import WSAlerter


@dataclass
class SoapCall:
    """One completed SOAP RPC call."""

    call_id: str
    caller: str
    callee: str
    method: str
    call_timestamp: float
    response_timestamp: float
    status: str = "ok"
    parameters: dict[str, str] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.response_timestamp - self.call_timestamp

    def envelope(self) -> Element:
        """The SOAP envelope shipped inside the alert."""
        body = Element("Body", children=[
            Element(
                self.method,
                children=[
                    Element("param", {"name": name}, text=value)
                    for name, value in sorted(self.parameters.items())
                ],
            )
        ])
        return Element(
            "Envelope",
            {"xmlns": "http://schemas.xmlsoap.org/soap/envelope/"},
            [Element("Header"), body],
        )


class SoapTrafficGenerator:
    """Generates SOAP traffic from client peers to server peers.

    Parameters
    ----------
    clients / servers:
        Peer identifiers of callers and callees.
    methods:
        Method names, chosen uniformly unless ``method_weights`` is given.
    mean_response_time:
        Mean service time (same unit as the thresholds used in subscriptions,
        i.e. seconds in the meteo example).
    slow_fraction:
        Fraction of calls whose response time is drawn from the slow regime
        (an order of magnitude above the mean), producing QoS incidents.
    error_rate:
        Fraction of calls that fail (status ``"fault"``).
    """

    def __init__(
        self,
        clients: list[str],
        servers: list[str],
        methods: list[str] | None = None,
        mean_response_time: float = 2.0,
        slow_fraction: float = 0.1,
        error_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not clients or not servers:
            raise ValueError("the traffic generator needs at least one client and one server")
        self.clients = list(clients)
        self.servers = list(servers)
        self.methods = list(methods) if methods else ["GetTemperature"]
        self.mean_response_time = mean_response_time
        self.slow_fraction = slow_fraction
        self.error_rate = error_rate
        self.random = random.Random(seed)
        self.clock = 0.0
        self.calls_generated = 0
        self._alerters: list["WSAlerter"] = []

    # -- alerter wiring ---------------------------------------------------------

    def attach_alerter(self, alerter: "WSAlerter") -> None:
        """Every generated call is offered to the attached alerters."""
        self._alerters.append(alerter)

    # -- generation ----------------------------------------------------------------

    def next_call(self) -> SoapCall:
        """Generate (and dispatch) the next call."""
        self.calls_generated += 1
        self.clock += self.random.expovariate(1.0)  # inter-arrival ~ Exp(1)
        caller = self.random.choice(self.clients)
        callee = self.random.choice(self.servers)
        method = self.random.choice(self.methods)
        if self.random.random() < self.slow_fraction:
            duration = self.mean_response_time * (8.0 + 4.0 * self.random.random())
        else:
            duration = self.random.uniform(0.2, 1.0) * self.mean_response_time
        status = "fault" if self.random.random() < self.error_rate else "ok"
        call = SoapCall(
            call_id=f"call-{self.calls_generated}",
            caller=caller,
            callee=callee,
            method=method,
            call_timestamp=self.clock,
            response_timestamp=self.clock + duration,
            status=status,
            parameters={"city": self.random.choice(["Paris", "Lisbon", "Orsay"])},
        )
        for alerter in self._alerters:
            alerter.observe_call(call)
        return call

    def run(self, n_calls: int) -> list[SoapCall]:
        """Generate ``n_calls`` calls and return them."""
        return [self.next_call() for _ in range(n_calls)]
