"""An Edos-like content-sharing network.

"Edos is a P2P distribution system ... the data consists of the Mandriva
Linux distribution, i.e., about 10 000 software packages and the associated
metadata.  The monitoring is primarily used to gather statistics about the
peers (e.g., number, efficiency, reliability) and the usage of the system
(e.g., query rate)." (Section 1)

The simulator models mirror peers serving packages to client peers: queries
(metadata lookups), downloads (with success/failure) and peer churn.  Every
event is reported as a SOAP call to the WS alerters of the involved peers,
so the monitoring stack sees the same streams it would see on the real
system, and membership changes are pushed to the package index (a
:class:`~repro.dht.KadopIndex`), feeding the ``areRegistered`` alerter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.alerters.ws import WSAlerter
from repro.dht.kadop import KadopIndex
from repro.workloads.soap_traffic import SoapCall
from repro.xmlmodel.tree import Element


@dataclass
class EdosEvent:
    """One event of the distribution network (query, download, join, leave)."""

    kind: str
    client: str | None
    mirror: str | None
    package: str | None
    call: SoapCall | None = None


class EdosNetwork:
    """The simulated distribution network."""

    def __init__(
        self,
        n_mirrors: int = 3,
        n_clients: int = 20,
        n_packages: int = 200,
        failure_rate: float = 0.05,
        churn_rate: float = 0.02,
        mean_download_time: float = 4.0,
        seed: int = 0,
    ) -> None:
        self.random = random.Random(seed)
        self.mirrors = [f"mirror{i}.edos.org" for i in range(n_mirrors)]
        self.clients = [f"client{i}.edos.org" for i in range(n_clients)]
        self.packages = [f"pkg-{i:05d}" for i in range(n_packages)]
        self.failure_rate = failure_rate
        self.churn_rate = churn_rate
        self.mean_download_time = mean_download_time
        self.clock = 0.0
        self.call_sequence = 0
        self.online_clients = set(self.clients)
        self.events: list[EdosEvent] = []
        self._alerters: list[WSAlerter] = []
        self.index: KadopIndex | None = None

    # -- wiring ---------------------------------------------------------------------

    def attach_alerter(self, alerter: WSAlerter) -> None:
        self._alerters.append(alerter)

    def attach_index(self, index: KadopIndex) -> None:
        """Register the package index whose membership the monitor watches."""
        self.index = index
        for mirror in self.mirrors:
            if mirror not in index.ring:
                index.join_peer(mirror)

    def package_metadata(self, package: str) -> Element:
        """The (small) metadata document of a package."""
        return Element(
            "package",
            {"name": package, "distribution": "mandriva-2007"},
            [
                Element("size", text=str(1000 + (hash(package) % 100000))),
                Element("section", text=self.random.choice(["devel", "games", "net", "office"])),
            ],
        )

    # -- event generation --------------------------------------------------------------

    def _soap_call(self, caller: str, callee: str, method: str, duration: float, status: str, **params) -> SoapCall:
        self.call_sequence += 1
        self.clock += self.random.expovariate(2.0)
        call = SoapCall(
            call_id=f"edos-{self.call_sequence}",
            caller=caller,
            callee=callee,
            method=method,
            call_timestamp=self.clock,
            response_timestamp=self.clock + duration,
            status=status,
            parameters={key: str(value) for key, value in params.items()},
        )
        for alerter in self._alerters:
            alerter.observe_call(call)
        return call

    def step(self) -> EdosEvent:
        """Generate one event and return it."""
        roll = self.random.random()
        if roll < self.churn_rate and self.online_clients:
            client = self.random.choice(sorted(self.online_clients))
            self.online_clients.discard(client)
            if self.index is not None and client in self.index.ring:
                self.index.leave_peer(client)
            event = EdosEvent("leave", client, None, None)
        elif roll < 2 * self.churn_rate and len(self.online_clients) < len(self.clients):
            offline = sorted(set(self.clients) - self.online_clients)
            client = self.random.choice(offline)
            self.online_clients.add(client)
            if self.index is not None and client not in self.index.ring:
                self.index.join_peer(client)
            event = EdosEvent("join", client, None, None)
        elif roll < 0.6 or not self.online_clients:
            client = self.random.choice(sorted(self.online_clients) or self.mirrors)
            mirror = self.random.choice(self.mirrors)
            package = self.random.choice(self.packages)
            call = self._soap_call(
                client, mirror, "QueryPackage", self.random.uniform(0.05, 0.4), "ok",
                package=package,
            )
            event = EdosEvent("query", client, mirror, package, call)
        else:
            client = self.random.choice(sorted(self.online_clients))
            mirror = self.random.choice(self.mirrors)
            package = self.random.choice(self.packages)
            failed = self.random.random() < self.failure_rate
            duration = self.random.expovariate(1.0 / self.mean_download_time)
            call = self._soap_call(
                client, mirror, "DownloadPackage", duration,
                "fault" if failed else "ok", package=package,
            )
            event = EdosEvent("download", client, mirror, package, call)
        self.events.append(event)
        return event

    def run(self, n_events: int) -> list[EdosEvent]:
        return [self.step() for _ in range(n_events)]

    # -- reference statistics (used to validate monitored results) -----------------------

    def reference_statistics(self) -> dict[str, object]:
        """Ground-truth statistics computed directly from the event log."""
        downloads = [event for event in self.events if event.kind == "download"]
        queries = [event for event in self.events if event.kind == "query"]
        failures = [event for event in downloads if event.call and event.call.status != "ok"]
        per_mirror: dict[str, int] = {}
        for event in downloads:
            if event.mirror:
                per_mirror[event.mirror] = per_mirror.get(event.mirror, 0) + 1
        return {
            "downloads": len(downloads),
            "queries": len(queries),
            "failed_downloads": len(failures),
            "downloads_per_mirror": per_mirror,
            "online_clients": len(self.online_clients),
        }
