"""A precisely controllable alert source for chaos scenarios.

Real workloads (SOAP traffic, RSS churn) are great for realism but poor for
invariants: you cannot easily say *which* alerts must have arrived after a
partition heals.  The chaos feed gives every alert a globally unique
``(source, n)`` identity, records exactly what was emitted and when, and
only drives sources that are currently alive -- so scenario invariants such
as "every alert emitted was delivered exactly once" are checkable by set
comparison.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.alerters.base import Alerter
from repro.alerters.registry import register_alerter
from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.p2pm_peer import P2PMPeer, P2PMSystem

#: The P2PML function name chaos subscriptions use in their FOR clause.
CHAOS_FUNCTION = "chaosFeed"


class ChaosFeedAlerter(Alerter):
    """Emits numbered ``<alert>`` items on demand (driven by the workload)."""

    kind = CHAOS_FUNCTION

    def emit_numbered(self, n: int) -> Element:
        alert = Element(
            "alert", {"kind": "chaos", "source": self.peer_id, "n": str(n)}
        )
        self.emit_alert(alert)
        return alert


@register_alerter(CHAOS_FUNCTION)
def _make_chaos_feed(peer: "P2PMPeer", function: str) -> Alerter:
    return ChaosFeedAlerter(peer.peer_id)


class ChaosFeedWorkload:
    """Drives the chaos-feed alerters of a set of source peers.

    Each :meth:`tick` makes every *alive* source emit one alert numbered by
    the tick; the emitted ``(source, n)`` pairs are recorded so invariants
    can compare them against what a subscriber received.
    """

    def __init__(self, sources: list[str]) -> None:
        self.sources = list(sources)
        self.emitted: list[tuple[str, int]] = []

    def tick(self, system: "P2PMSystem", tick: int) -> int:
        """Emit one alert per alive source; returns how many were emitted.

        Emission goes through :meth:`P2PMSystem.drive_alerter` rather than a
        direct alerter reference: under the sharded runtime the call is
        shipped to the worker process that owns the source peer (liveness and
        stream-closure checks read the local mirror, whose pre-start state
        matches every shard).
        """
        count = 0
        for source in self.sources:
            if not system.is_alive(source):
                continue
            alerter = system.peer(source).alerter(CHAOS_FUNCTION)
            if alerter is None or alerter.output.closed:
                continue
            assert isinstance(alerter, ChaosFeedAlerter)
            system.drive_alerter(source, CHAOS_FUNCTION, "emit_numbered", tick)
            self.emitted.append((source, tick))
            count += 1
        return count

    def emitted_since(self, tick: int) -> list[tuple[str, int]]:
        """Alerts emitted at or after ``tick`` (post-recovery delivery checks)."""
        return [(source, n) for source, n in self.emitted if n >= tick]
