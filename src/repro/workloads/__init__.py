"""Synthetic workloads standing in for the paper's monitored systems.

The paper's experiments run against real systems (Axis SOAP services, live
RSS feeds, the Edos/Mandriva distribution network).  None of those are
available offline, so each is replaced by a seeded generator that produces
the same *shape* of events and drives the same alerters:

* :mod:`repro.workloads.soap_traffic` -- SOAP RPC call/response traffic
  between peers (drives the WS alerters; the meteo QoS scenario).
* :mod:`repro.workloads.rss_feeds` -- evolving RSS feeds (drives the RSS alerter).
* :mod:`repro.workloads.webpages` -- evolving XHTML pages (WebPage alerter).
* :mod:`repro.workloads.edos` -- an Edos-like package-distribution network
  with downloads, queries and peer churn.
* :mod:`repro.workloads.meteo` -- the end-to-end meteo QoS scenario of
  Figure 1 / Figure 4 (three monitored peers plus a monitor peer).
* :mod:`repro.workloads.chaos_feed` -- a controllable alert source whose
  emissions carry unique identities, for chaos-scenario invariants.
"""

from repro.workloads.soap_traffic import SoapCall, SoapTrafficGenerator
from repro.workloads.rss_feeds import RSSFeedSimulator
from repro.workloads.webpages import WebPageSimulator
from repro.workloads.edos import EdosNetwork
from repro.workloads.meteo import MeteoScenario
from repro.workloads.chaos_feed import ChaosFeedAlerter, ChaosFeedWorkload

__all__ = [
    "SoapCall",
    "SoapTrafficGenerator",
    "RSSFeedSimulator",
    "WebPageSimulator",
    "EdosNetwork",
    "MeteoScenario",
    "ChaosFeedAlerter",
    "ChaosFeedWorkload",
]
