"""The Filter stream processor (Section 4 of the paper).

Filtering is performed in two stages so that a very high rate of stream
items can be sustained:

1. *Simple conditions* -- equality/inequality tests on the attributes of the
   stream item's root -- are checked on the fly by :class:`PreFilter` and the
   matching conjunctions are found by :class:`AESFilter`, a hash-tree over
   ordered condition sequences (the Atomic Event Set algorithm of [15]).
2. Only the *complex* tree-pattern queries whose simple conditions are all
   satisfied ("active subscriptions") are evaluated, by :class:`YFilterSigma`,
   a shared-prefix NFA in the style of YFilter [8] virtually pruned to the
   active subscriptions.

:class:`FilterOperator` ties the three modules together and adds the
ActiveXML laziness of Section 4: intensional parts of an item (``sc``
service calls) are materialised only when a complex query actually needs to
look at them.  :mod:`repro.filtering.naive` provides the single-stage
baseline used by the benchmarks and by the differential-correctness tests.

All three stages run *compiled*: predicates are closures built at
registration time, the AES tree uses bitmask subsumption with a
per-satisfied-mask result cache, and the YFilter NFA is determinised lazily
into a DFA keyed by document shape.  ``docs/PERFORMANCE.md`` describes the
engine and its counters.
"""

from repro.filtering.conditions import (
    ComputedCondition,
    ConditionRegistry,
    FilterSubscription,
    SimpleCondition,
)
from repro.filtering.prefilter import PreFilter
from repro.filtering.aes import AESFilter, AESMatch
from repro.filtering.yfilter import YFilterSigma
from repro.filtering.filter import FilterOperator, FilterResult
from repro.filtering.naive import NaiveFilter

__all__ = [
    "ComputedCondition",
    "ConditionRegistry",
    "FilterSubscription",
    "SimpleCondition",
    "PreFilter",
    "AESFilter",
    "AESMatch",
    "YFilterSigma",
    "FilterOperator",
    "FilterResult",
    "NaiveFilter",
]
