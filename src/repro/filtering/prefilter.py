"""preFilter: on-the-fly evaluation of simple conditions on root attributes.

"The preFilter module is an automaton that, for each document t, reads the
first tag of t (so, in particular, the root's attributes).  It tests the
simple conditions which are organized in a hash-table with the attribute
name as key and the condition as value." (Section 4)

Only root attributes are inspected; the rest of the document is never read
by this stage, which is what makes it cheap.
"""

from __future__ import annotations

from repro.filtering.conditions import ConditionRegistry, SimpleCondition
from repro.xmlmodel.tree import Element


class PreFilter:
    """Evaluates every registered simple condition against a root's attributes."""

    def __init__(self, registry: ConditionRegistry) -> None:
        self._registry = registry
        self._table: dict[str, list[tuple[int, SimpleCondition]]] = {}
        self._built_for = -1
        self.documents_processed = 0
        self.conditions_evaluated = 0

    def _rebuild_if_needed(self) -> None:
        if self._built_for != len(self._registry):
            self._table = self._registry.by_attribute()
            self._built_for = len(self._registry)

    def satisfied_conditions(self, item: Element) -> list[int]:
        """Ordered list of identifiers of the simple conditions ``item`` satisfies.

        Only conditions on attributes actually present on the root are
        evaluated -- the hash-table organisation means absent attributes cost
        nothing.
        """
        self._rebuild_if_needed()
        self.documents_processed += 1
        satisfied: list[int] = []
        for attribute in item.attrib:
            for condition_id, condition in self._table.get(attribute, ()):
                self.conditions_evaluated += 1
                if condition.evaluate(item.attrib):
                    satisfied.append(condition_id)
        satisfied.sort()
        return satisfied

    def reset_counters(self) -> None:
        self.documents_processed = 0
        self.conditions_evaluated = 0
