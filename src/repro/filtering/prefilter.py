"""preFilter: on-the-fly evaluation of simple conditions on root attributes.

"The preFilter module is an automaton that, for each document t, reads the
first tag of t (so, in particular, the root's attributes).  It tests the
simple conditions which are organized in a hash-table with the attribute
name as key and the condition as value." (Section 4)

Only root attributes are inspected; the rest of the document is never read
by this stage, which is what makes it cheap.

The compiled engine adds two constant-factor refinements:

* conditions are evaluated through their precompiled closures (see
  :class:`~repro.filtering.conditions.SimpleCondition`), and
* the verdict for one ``(attribute, value)`` pair — which condition ids it
  satisfies, as both a sorted tuple and a bitmask — is cached, because alert
  streams draw attribute values from small domains.  Attributes no condition
  mentions are skipped before the cache is even consulted.
"""

from __future__ import annotations

from repro.filtering.conditions import ConditionRegistry, SimpleCondition
from repro.xmlmodel.tree import Element

#: Bound on the (attribute, value) verdict cache; past it the cache is
#: dropped (unbounded value domains would otherwise leak memory).
MAX_VALUE_CACHE = 65536


def flatten_parts(parts: list[tuple[int, ...]]) -> list[int]:
    """Merge per-attribute satisfied-id tuples into one ascending id list."""
    if not parts:
        return []
    if len(parts) == 1:
        return list(parts[0])
    ids = [condition_id for part in parts for condition_id in part]
    ids.sort()
    return ids


class PreFilter:
    """Evaluates every registered simple condition against a root's attributes."""

    def __init__(self, registry: ConditionRegistry) -> None:
        self._registry = registry
        self._table: dict[str, list[tuple[int, SimpleCondition]]] = {}
        self._value_cache: dict[tuple[str, str], tuple[int, tuple[int, ...]]] = {}
        self._built_for = -1
        self.documents_processed = 0
        self.conditions_evaluated = 0
        self.cache_hits = 0
        self.cache_misses = 0

    def _rebuild_if_needed(self) -> None:
        if self._built_for != len(self._registry):
            self._table = self._registry.by_attribute()
            self._value_cache.clear()
            self._built_for = len(self._registry)

    def satisfied_parts(self, item: Element) -> tuple[int, list[tuple[int, ...]]]:
        """Bitmask plus per-attribute satisfied-id tuples (unflattened).

        Only conditions on attributes actually present on the root are
        evaluated -- the hash-table organisation means absent attributes cost
        nothing.  The parts are left unflattened so mask-keyed callers
        (:class:`~repro.filtering.filter.FilterOperator`) can skip building
        the sorted id list entirely when the mask hits their plan cache.
        """
        self._rebuild_if_needed()
        self.documents_processed += 1
        table = self._table
        cache = self._value_cache
        mask = 0
        parts: list[tuple[int, ...]] = []
        for attribute, value in item.attrib.items():
            conditions = table.get(attribute)
            if conditions is None:
                continue
            entry = cache.get((attribute, value))
            if entry is None:
                self.cache_misses += 1
                entry_mask = 0
                entry_ids: list[int] = []
                for condition_id, condition in conditions:
                    self.conditions_evaluated += 1
                    if condition.holds(value):
                        entry_mask |= 1 << condition_id
                        entry_ids.append(condition_id)
                entry = (entry_mask, tuple(entry_ids))
                if len(cache) >= MAX_VALUE_CACHE:
                    cache.clear()
                cache[(attribute, value)] = entry
            else:
                self.cache_hits += 1
            if entry[0]:
                mask |= entry[0]
                parts.append(entry[1])
        return mask, parts

    def satisfied(self, item: Element) -> tuple[int, list[int]]:
        """Bitmask and ordered id list of the simple conditions ``item`` satisfies."""
        mask, parts = self.satisfied_parts(item)
        return mask, flatten_parts(parts)

    def satisfied_conditions(self, item: Element) -> list[int]:
        """Ordered list of identifiers of the simple conditions ``item`` satisfies."""
        return self.satisfied(item)[1]

    def reset_counters(self) -> None:
        """Reset per-run counters (the value cache itself is kept)."""
        self.documents_processed = 0
        self.conditions_evaluated = 0
        self.cache_hits = 0
        self.cache_misses = 0
