"""Single-stage baseline filter used by the benchmarks.

The naive strategy evaluates every subscription in full (simple conditions
*and* tree-pattern queries, via the generic XPath evaluator) on every stream
item, and always materialises intensional content first.  This is the
strawman the two-stage Filter is compared against in experiments E2 and E6.
"""

from __future__ import annotations

from typing import Iterable

from repro.filtering.conditions import FilterSubscription
from repro.filtering.filter import FilterResult
from repro.xmlmodel.axml import ServiceRegistry, has_service_calls, materialize
from repro.xmlmodel.tree import Element


class NaiveFilter:
    """Evaluates every subscription on every item, with no pre-filtering."""

    def __init__(
        self,
        subscriptions: list[FilterSubscription] | None = None,
        service_registry: ServiceRegistry | None = None,
    ) -> None:
        self._subscriptions: dict[str, FilterSubscription] = {}
        self.service_registry = service_registry
        self.items_processed = 0
        self.evaluations = 0
        self.materializations = 0
        for subscription in subscriptions or []:
            self.add_subscription(subscription)

    def add_subscription(self, subscription: FilterSubscription) -> None:
        if subscription.sub_id in self._subscriptions:
            raise ValueError(f"subscription {subscription.sub_id!r} already registered")
        self._subscriptions[subscription.sub_id] = subscription

    def __len__(self) -> int:
        return len(self._subscriptions)

    def process(self, item: Element) -> FilterResult:
        self.items_processed += 1
        target = item
        if self.service_registry is not None and has_service_calls(item):
            self.materializations += 1
            target = materialize(item, self.service_registry)
        matched = []
        for sub_id, subscription in self._subscriptions.items():
            self.evaluations += 1
            if subscription.matches_extensionally(target):
                matched.append(sub_id)
        matched.sort()
        return FilterResult(item=item, matched=matched)

    def process_batch(self, items: Iterable[Element]) -> list[FilterResult]:
        """Batch counterpart of :meth:`process` (oracle parity with FilterOperator)."""
        process = self.process
        return [process(item) for item in items]

    def reset_counters(self) -> None:
        self.items_processed = 0
        self.evaluations = 0
        self.materializations = 0
