"""YFilterSigma: a shared-prefix NFA for tree-pattern queries, run as a lazy DFA.

Path queries are compiled into a single non-deterministic automaton whose
states are shared between queries with common prefixes, as in YFilter [8].
Matching one document is a single traversal maintaining a set of active
states per element; the cost is largely independent of the number of
registered queries.

To keep the per-element cost near-constant the NFA is *determinised lazily*:
the set of NFA states active after reading a tag sequence is interned as a
DFA state, and the transition ``(DFA state, tag) -> DFA state`` is computed
at most once and then cached.  Documents with repeated shapes (the common
case for machine-generated alert streams) traverse the automaton through
plain dict lookups; the NFA subset construction runs only for tag sequences
never seen before.  Each DFA state carries the union of the accepting query
ids of its member NFA states, precomputed as a frozenset.

"Given a tree t, only certain subscriptions are active so the automaton is
virtually pruned to adapt to the specific filtering task for t": the
``active_queries`` argument of :meth:`YFilterSigma.match` restricts which
accepting states are reported and which queries get the (more expensive)
predicate verification.  Pruning only filters the reported ids, so all
callers share one DFA regardless of their active sets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.xmlmodel.axml import ServiceRegistry, has_service_calls, materialize
from repro.xmlmodel.tree import Element
from repro.xmlmodel.xpath import Step, XPath

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.filtering.conditions import FilterSubscription

#: Interned DFA states are capped to keep adversarial tag vocabularies from
#: growing the subset-construction cache without bound; beyond the cap,
#: transitions are recomputed per element instead of cached.
MAX_DFA_STATES = 4096

#: Per-DFA-state transition-cache cap: even when the target state-set is
#: already interned, machine-generated unique tags must not grow a state's
#: transitions dict without bound.
MAX_TRANSITIONS_PER_STATE = 4096


class _State:
    """One NFA state: shared query-prefix node."""

    __slots__ = ("transitions", "descendant", "accepting")

    def __init__(self) -> None:
        self.transitions: dict[str, "_State"] = {}
        self.descendant: "_State | None" = None
        self.accepting: list[str] = []


def _close(out: set[_State], tag: str) -> None:
    """Descendant-or-self closure of a just-computed state set.

    The XPath dialect's ``//`` axis is descendant-*or-self*: in
    ``//Envelope//Header//Header`` a single ``Header`` element satisfies both
    trailing steps at once.  After reading an element with ``tag``, any state
    whose descendant sub-automaton can consume ``tag`` (or ``*``) is therefore
    also entered *at the same element*, transitively.  (The seed NFA missed
    this and under-matched queries like ``//a//a`` — caught by the
    differential tests against ``XPath.select``.)
    """
    work = list(out)
    while work:
        state = work.pop()
        descendant = state.descendant
        if descendant is None or descendant is state:
            # self-loop states' transitions were already followed by _follow
            continue
        target = descendant.transitions.get(tag)
        if target is not None and target not in out:
            out.add(target)
            work.append(target)
        target = descendant.transitions.get("*")
        if target is not None and target not in out:
            out.add(target)
            work.append(target)


def _follow(state: _State, tag: str, out: set[_State]) -> None:
    """Add to ``out`` every NFA state reachable from ``state`` on ``tag``."""
    target = state.transitions.get(tag)
    if target is not None:
        out.add(target)
    target = state.transitions.get("*")
    if target is not None:
        out.add(target)
    descendant = state.descendant
    if descendant is None:
        return
    if descendant is state:
        # a //-state stays active below itself; its name/'*' transitions
        # were already followed above
        out.add(state)
        return
    out.add(descendant)
    target = descendant.transitions.get(tag)
    if target is not None:
        out.add(target)
    target = descendant.transitions.get("*")
    if target is not None:
        out.add(target)


class _DFAState:
    """A materialised set of NFA states with its own transition cache."""

    __slots__ = ("nfa_states", "accepting", "transitions")

    def __init__(self, nfa_states: tuple[_State, ...], accepting: frozenset[str]) -> None:
        self.nfa_states = nfa_states
        self.accepting = accepting
        self.transitions: dict[str, "_DFAState"] = {}


class YFilterSigma:
    """Shared NFA over the structural part of registered path queries."""

    def __init__(self) -> None:
        self._initial = _State()
        self._queries: dict[str, XPath] = {}
        self._verify_queries: set[str] = set()
        self.states_created = 1
        self.elements_processed = 0
        # lazy-DFA machinery and its observability counters
        self._dfa_states: dict[frozenset[_State], _DFAState] = {}
        self._dfa_root: _DFAState | None = None
        self.dfa_cache_hits = 0
        self.dfa_cache_misses = 0

    # -- construction ------------------------------------------------------------

    def add_query(self, query_id: str, query: XPath | str) -> None:
        """Register a query under ``query_id`` (compiling it if given as text)."""
        if query_id in self._queries:
            raise ValueError(f"query id {query_id!r} already registered")
        path = XPath.compile(query) if isinstance(query, str) else query
        self._queries[query_id] = path

        # Structural steps are the leading element-name steps; attribute/text
        # steps and any predicate require verification of the full XPath once
        # the structural prefix has matched.
        structural: list = []
        needs_verification = False
        for step in path.steps:
            if step.is_attribute or step.is_text:
                needs_verification = True
                break
            structural.append(step)
            if step.predicates:
                needs_verification = True
        if needs_verification:
            self._verify_queries.add(query_id)

        # A relative path's first (child-axis) step starts at the *children*
        # of the context node, not the node itself — XPath.select evaluates
        # "b" over root.children.  Structurally that is "/*/b": prepend a
        # wildcard level so the NFA agrees with the oracle.  (Relative
        # descendant behaviour already coincides with the absolute case.)
        if structural and not path.absolute:
            structural.insert(0, Step("child", "*"))

        node = self._initial
        for step in structural:
            if step.axis == "descendant":
                if node.descendant is None:
                    node.descendant = _State()
                    node.descendant.descendant = node.descendant  # self-loop
                    self.states_created += 1
                node = node.descendant
            target = node.transitions.get(step.test)
            if target is None:
                target = _State()
                node.transitions[step.test] = target
                self.states_created += 1
            node = target
        node.accepting.append(query_id)

        # The NFA changed shape, so every materialised DFA state-set (and the
        # accepting unions baked into them) is stale: drop the whole DFA.
        self._dfa_states = {}
        self._dfa_root = None

    @property
    def query_count(self) -> int:
        return len(self._queries)

    def query(self, query_id: str) -> XPath:
        return self._queries[query_id]

    @property
    def dfa_state_count(self) -> int:
        """Number of NFA state-sets materialised as DFA states so far."""
        return len(self._dfa_states)

    # -- matching -------------------------------------------------------------------

    def match(
        self, item: Element, active_queries: set[str] | None = None
    ) -> set[str]:
        """Return the ids of queries matching ``item``.

        When ``active_queries`` is given, the automaton is virtually pruned:
        only those queries can be reported and only they pay for predicate
        verification.
        """
        root = self._dfa_root
        if root is None:
            root, _ = self._materialize(frozenset((self._initial,)))
            self._dfa_root = root
        # Distinct accepting frozensets reached, keyed by identity: repeated
        # document shapes hit the same few DFA states, so deferring the union
        # to the end turns per-element set work into one C-level union.
        accepting_sets: dict[int, frozenset[str]] = {}
        # Queries with an empty structural prefix (first step is an attribute
        # or text() test) accept at the initial state: every document matches
        # them structurally and verification decides.
        if root.accepting:
            accepting_sets[id(root.accepting)] = root.accepting
        processed = 0
        stack = [(item, root)]
        pop = stack.pop
        push = stack.append
        while stack:
            element, dfa = pop()
            processed += 1
            target = dfa.transitions.get(element.tag)
            if target is None:
                self.dfa_cache_misses += 1
                target = self._transition(dfa, element.tag)
            else:
                self.dfa_cache_hits += 1
            accepting = target.accepting
            if accepting:
                accepting_sets[id(accepting)] = accepting
            if target.nfa_states:
                for child in element.children:
                    push((child, target))
        self.elements_processed += processed

        if not accepting_sets:
            return set()
        structural: set[str] = set().union(*accepting_sets.values())
        if active_queries is not None:
            structural &= active_queries
        to_verify = structural & self._verify_queries
        if not to_verify:
            return structural
        matched = structural - to_verify
        queries = self._queries
        for query_id in to_verify:
            if queries[query_id].matches(item):
                matched.add(query_id)
        return matched

    # -- lazy subset construction ------------------------------------------------

    def _transition(self, dfa: _DFAState, tag: str) -> _DFAState:
        """Compute (and usually cache) the DFA transition ``dfa --tag-->``."""
        out: set[_State] = set()
        for state in dfa.nfa_states:
            _follow(state, tag, out)
        _close(out, tag)
        target, interned = self._materialize(frozenset(out))
        # Only link interned targets into the transition cache (a transient
        # state created past the cap must stay collectable), and stop caching
        # once this state has seen MAX_TRANSITIONS_PER_STATE distinct tags.
        if interned and len(dfa.transitions) < MAX_TRANSITIONS_PER_STATE:
            dfa.transitions[tag] = target
        return target

    def _materialize(self, key: frozenset[_State]) -> tuple[_DFAState, bool]:
        """Return the DFA state for ``key`` and whether it is interned."""
        existing = self._dfa_states.get(key)
        if existing is not None:
            return existing, True
        accepting: set[str] = set()
        for state in key:
            accepting.update(state.accepting)
        dfa = _DFAState(tuple(key), frozenset(accepting))
        if len(self._dfa_states) < MAX_DFA_STATES:
            self._dfa_states[key] = dfa
            return dfa, True
        return dfa, False

    def reset_counters(self) -> None:
        """Reset per-run counters (the materialised DFA itself is kept)."""
        self.elements_processed = 0
        self.dfa_cache_hits = 0
        self.dfa_cache_misses = 0


def compile_tree_predicate(
    subscription: "FilterSubscription",
    service_registry: (
        ServiceRegistry | Callable[[], ServiceRegistry | None] | None
    ) = None,
) -> Callable[[Element], bool]:
    """Fuse a *complex* subscription into one ``item -> bool`` closure.

    The counterpart of
    :func:`repro.filtering.conditions.compile_simple_predicate` for
    subscriptions carrying tree-pattern queries: simple and LET-derived
    conditions are checked on the root attributes first (cheap rejection,
    same order as the interpreted :class:`~repro.filtering.filter.FilterOperator`),
    then a private :class:`YFilterSigma` — its lazy DFA built once per
    compiled stage and shared across every item the stage sees — decides the
    conjunction of the subscription's tree patterns in a single traversal.

    ActiveXML laziness is preserved: intensional content is materialised only
    after the attribute conditions pass, exactly when the interpreted filter
    would run its stage-3 check.  ``service_registry`` may be the registry
    itself or a zero-argument resolver; compiled programs outlive peer
    objects in the plan cache, so deployment passes a resolver that always
    reads the *current* peer's registry (a rejoined peer gets a fresh one).
    """
    simple = tuple(
        (condition.attribute, condition.holds) for condition in subscription.simple
    )
    computed = tuple(subscription.computed)
    nfa = YFilterSigma()
    for index, query in enumerate(subscription.complex_queries):
        nfa.add_query(str(index), query)
    n_queries = nfa.query_count
    match = nfa.match
    if callable(service_registry):
        resolve = service_registry
    else:
        pinned = service_registry

        def resolve() -> ServiceRegistry | None:
            return pinned

    def predicate(item: Element) -> bool:
        attrib = item.attrib
        for attribute, holds in simple:
            actual = attrib.get(attribute)
            if actual is None or not holds(actual):
                return False
        for condition in computed:
            if not condition.evaluate(attrib):
                return False
        registry = resolve()
        if registry is not None and has_service_calls(item):
            target = materialize(item, registry)
        else:
            target = item
        return len(match(target)) == n_queries

    # observability hook: tests and stats can reach the stage's automaton
    predicate.yfilter = nfa  # type: ignore[attr-defined]
    return predicate
