"""YFilterSigma: a shared-prefix NFA for tree-pattern queries.

Path queries are compiled into a single non-deterministic automaton whose
states are shared between queries with common prefixes, as in YFilter [8].
Matching one document is a single traversal maintaining a set of active
states per element; the cost is largely independent of the number of
registered queries.

"Given a tree t, only certain subscriptions are active so the automaton is
virtually pruned to adapt to the specific filtering task for t": the
``active_queries`` argument of :meth:`YFilterSigma.match` restricts which
accepting states are reported and which queries get the (more expensive)
predicate verification.
"""

from __future__ import annotations

from repro.xmlmodel.tree import Element
from repro.xmlmodel.xpath import XPath


class _State:
    __slots__ = ("transitions", "descendant", "accepting")

    def __init__(self) -> None:
        self.transitions: dict[str, "_State"] = {}
        self.descendant: "_State | None" = None
        self.accepting: list[str] = []


class YFilterSigma:
    """Shared NFA over the structural part of registered path queries."""

    def __init__(self) -> None:
        self._initial = _State()
        self._queries: dict[str, XPath] = {}
        self._needs_verification: dict[str, bool] = {}
        self.states_created = 1
        self.elements_processed = 0

    # -- construction ------------------------------------------------------------

    def add_query(self, query_id: str, query: XPath | str) -> None:
        """Register a query under ``query_id`` (compiling it if given as text)."""
        if query_id in self._queries:
            raise ValueError(f"query id {query_id!r} already registered")
        path = XPath.compile(query) if isinstance(query, str) else query
        self._queries[query_id] = path

        # Structural steps are the leading element-name steps; attribute/text
        # steps and any predicate require verification of the full XPath once
        # the structural prefix has matched.
        structural: list = []
        needs_verification = False
        for step in path.steps:
            if step.is_attribute or step.is_text:
                needs_verification = True
                break
            structural.append(step)
            if step.predicates:
                needs_verification = True
        self._needs_verification[query_id] = needs_verification

        node = self._initial
        for step in structural:
            if step.axis == "descendant":
                if node.descendant is None:
                    node.descendant = _State()
                    node.descendant.descendant = node.descendant  # self-loop
                    self.states_created += 1
                node = node.descendant
            target = node.transitions.get(step.test)
            if target is None:
                target = _State()
                node.transitions[step.test] = target
                self.states_created += 1
            node = target
        node.accepting.append(query_id)

    @property
    def query_count(self) -> int:
        return len(self._queries)

    def query(self, query_id: str) -> XPath:
        return self._queries[query_id]

    # -- matching -------------------------------------------------------------------

    def match(
        self, item: Element, active_queries: set[str] | None = None
    ) -> set[str]:
        """Return the ids of queries matching ``item``.

        When ``active_queries`` is given, the automaton is virtually pruned:
        only those queries can be reported and only they pay for predicate
        verification.
        """
        structural: set[str] = set()
        self._process(item, {self._initial}, structural, active_queries)
        matched: set[str] = set()
        for query_id in structural:
            if self._needs_verification[query_id]:
                if self._queries[query_id].matches(item):
                    matched.add(query_id)
            else:
                matched.add(query_id)
        return matched

    def _process(
        self,
        element: Element,
        active_states: set[_State],
        structural: set[str],
        active_queries: set[str] | None,
    ) -> None:
        self.elements_processed += 1
        next_states: set[_State] = set()
        for state in active_states:
            self._follow(state, element.tag, next_states)
        for state in next_states:
            for query_id in state.accepting:
                if active_queries is None or query_id in active_queries:
                    structural.add(query_id)
        if next_states:
            for child in element.children:
                self._process(child, next_states, structural, active_queries)

    @staticmethod
    def _follow(state: _State, tag: str, out: set[_State]) -> None:
        target = state.transitions.get(tag)
        if target is not None:
            out.add(target)
        target = state.transitions.get("*")
        if target is not None:
            out.add(target)
        descendant = state.descendant
        if descendant is None:
            return
        if descendant is state:
            # a //-state stays active below itself; its name/'*' transitions
            # were already followed above
            out.add(state)
            return
        out.add(descendant)
        target = descendant.transitions.get(tag)
        if target is not None:
            out.add(target)
        target = descendant.transitions.get("*")
        if target is not None:
            out.add(target)

    def reset_counters(self) -> None:
        self.elements_processed = 0
