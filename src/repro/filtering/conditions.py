"""Simple conditions, their registry, and filter subscriptions.

A *simple condition* is an equality or inequality between an attribute of
the root node of a stream item and a constant, e.g.
``callee = "http://meteo.com"`` (Section 4).  The AES algorithm requires a
total order over simple conditions; the :class:`ConditionRegistry` interns
syntactically-equal conditions and assigns them stable integer identifiers
that provide this order.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable

from repro.xmlmodel.xpath import XPath

#: Comparison operators supported in simple conditions.
OPERATORS = ("=", "!=", "<", "<=", ">", ">=")

_OP_FUNCS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _as_number(value: str) -> float | None:
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _compile_simple(op: str, value: str) -> Callable[[str], bool]:
    """Build the per-value predicate closure for a simple condition.

    The constant is parsed and the operator dispatched exactly once, at
    subscription-registration time; the hot path then runs one closure call
    per (attribute value, condition) pair.  Semantics match the interpreted
    form: numeric comparison when *both* sides parse as numbers, string
    comparison otherwise.
    """
    compare = _OP_FUNCS[op]
    right_num = _as_number(value)
    if right_num is None:

        def holds(actual: str) -> bool:
            return compare(actual, value)

    else:

        def holds(actual: str) -> bool:
            left_num = _as_number(actual)
            if left_num is None:
                return compare(actual, value)
            return compare(left_num, right_num)

    return holds


@dataclass(frozen=True)
class SimpleCondition:
    """``attribute op constant`` over the root attributes of a stream item."""

    attribute: str
    op: str
    value: str
    #: Compiled predicate over the attribute's value; excluded from
    #: equality/hash so interning by (attribute, op, value) is unaffected.
    holds: Callable[[str], bool] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise ValueError(
                f"unsupported operator {self.op!r}; expected one of {OPERATORS}"
            )
        object.__setattr__(self, "value", str(self.value))
        object.__setattr__(self, "holds", _compile_simple(self.op, self.value))

    def evaluate(self, attributes: dict[str, str]) -> bool:
        """True when the condition holds for the given root attributes."""
        actual = attributes.get(self.attribute)
        if actual is None:
            return False
        return self.holds(actual)

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


class ConditionRegistry:
    """Interns simple conditions and assigns them stable, ordered identifiers."""

    def __init__(self) -> None:
        self._by_condition: dict[SimpleCondition, int] = {}
        self._by_id: list[SimpleCondition] = []

    def register(self, condition: SimpleCondition) -> int:
        """Return the identifier of ``condition``, registering it if new."""
        existing = self._by_condition.get(condition)
        if existing is not None:
            return existing
        condition_id = len(self._by_id)
        self._by_condition[condition] = condition_id
        self._by_id.append(condition)
        return condition_id

    def condition(self, condition_id: int) -> SimpleCondition:
        return self._by_id[condition_id]

    def id_of(self, condition: SimpleCondition) -> int:
        return self._by_condition[condition]

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, condition: SimpleCondition) -> bool:
        return condition in self._by_condition

    def conditions(self) -> list[SimpleCondition]:
        return list(self._by_id)

    def by_attribute(self) -> dict[str, list[tuple[int, SimpleCondition]]]:
        """Hash-table view keyed by attribute name (what the preFilter uses)."""
        table: dict[str, list[tuple[int, SimpleCondition]]] = {}
        for condition_id, condition in enumerate(self._by_id):
            table.setdefault(condition.attribute, []).append((condition_id, condition))
        return table


@dataclass(frozen=True)
class ComputedCondition:
    """Comparison of an arithmetic combination of root attributes to a constant.

    This is what a LET-defined variable compiles to, e.g.
    ``$duration := $c1.responseTimestamp - $c1.callTimestamp`` used in
    ``$duration > 10`` becomes
    ``ComputedCondition(((1, "responseTimestamp"), (-1, "callTimestamp")), ">", 10)``.
    A missing or non-numeric attribute makes the condition false.
    """

    terms: tuple[tuple[int, str], ...]  # (sign, attribute-name or numeric literal)
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise ValueError(
                f"unsupported operator {self.op!r}; expected one of {OPERATORS}"
            )
        # Compile once: literal terms fold into a constant base, the target
        # constant is parsed, and the comparison function is dispatched.
        base = 0.0
        attr_terms: list[tuple[int, str]] = []
        for sign, term in self.terms:
            literal = _as_number(term)
            if literal is not None:
                base += sign * literal
            else:
                attr_terms.append((sign, term))
        object.__setattr__(self, "_base", base)
        object.__setattr__(self, "_attr_terms", tuple(attr_terms))
        object.__setattr__(self, "_target", float(self.value))
        object.__setattr__(self, "_compare", _OP_FUNCS[self.op])

    def evaluate(self, attributes: dict[str, str]) -> bool:
        total = self._base
        for sign, term in self._attr_terms:
            raw = attributes.get(term)
            number = _as_number(raw) if raw is not None else None
            if number is None:
                return False
            total += sign * number
        return self._compare(total, self._target)

    def __str__(self) -> str:
        parts = []
        for sign, term in self.terms:
            prefix = "-" if sign < 0 else ("+" if parts else "")
            parts.append(f"{prefix}{term}")
        return f"{''.join(parts)} {self.op} {self.value}"


@dataclass
class FilterSubscription:
    """One subscription ``Qi = (simple conditions) AND (complex queries)``.

    ``complex_queries`` is a conjunction of tree-pattern queries (usually a
    single XPath); a subscription with no complex query is *simple*.
    ``computed`` holds LET-derived arithmetic conditions, also evaluated on
    the root attributes only.
    """

    sub_id: str
    simple: list[SimpleCondition] = field(default_factory=list)
    complex_queries: list[XPath] = field(default_factory=list)
    computed: list[ComputedCondition] = field(default_factory=list)

    @property
    def is_simple(self) -> bool:
        return not self.complex_queries

    @property
    def is_complex(self) -> bool:
        return bool(self.complex_queries)

    def condition_ids(self, registry: ConditionRegistry) -> list[int]:
        """Register this subscription's simple conditions; return ordered ids."""
        ids = sorted({registry.register(condition) for condition in self.simple})
        return ids

    def condition_mask(self, registry: ConditionRegistry) -> int:
        """Bitmask with bit ``i`` set for each registered simple-condition id ``i``."""
        mask = 0
        for condition_id in self.condition_ids(registry):
            mask |= 1 << condition_id
        return mask

    def computed_hold(self, item) -> bool:
        """True when every computed (LET-derived) condition holds for ``item``."""
        if not self.computed:
            return True
        attrib = item.attrib
        for condition in self.computed:
            if not condition.evaluate(attrib):
                return False
        return True

    def matches_extensionally(self, item) -> bool:
        """Reference semantics: evaluate everything directly (used by tests/naive)."""
        if not all(condition.evaluate(item.attrib) for condition in self.simple):
            return False
        if not self.computed_hold(item):
            return False
        return all(query.matches(item) for query in self.complex_queries)


def compile_simple_predicate(subscription: FilterSubscription):
    """Fuse a *simple* subscription's conditions into one ``item -> bool`` closure.

    The returned predicate is semantically identical to running the
    subscription through :class:`repro.filtering.filter.PubSubFilter` with no
    complex queries registered: every :class:`SimpleCondition` must hold on
    the root attributes and every :class:`ComputedCondition` must hold as
    well.  Attribute lookups and per-condition ``holds`` closures are bound at
    compile time so the hot path is a single call frame with no virtual hops.

    Raises :class:`ValueError` for complex subscriptions — tree-pattern
    queries fuse through :func:`repro.filtering.yfilter.compile_tree_predicate`
    instead.
    """
    if subscription.complex_queries:
        raise ValueError(
            f"subscription {subscription.sub_id!r} has complex queries; "
            "only simple subscriptions compile to a fused predicate"
        )
    # Pre-extract (attribute, holds) pairs; SimpleCondition is frozen so the
    # compiled closures cannot drift from the interpreted conditions.
    simple = tuple((condition.attribute, condition.holds) for condition in subscription.simple)
    computed = tuple(subscription.computed)

    def predicate(item) -> bool:
        attrib = item.attrib
        for attribute, holds in simple:
            actual = attrib.get(attribute)
            if actual is None or not holds(actual):
                return False
        for condition in computed:
            if not condition.evaluate(attrib):
                return False
        return True

    return predicate
