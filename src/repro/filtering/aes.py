"""AESFilter: the Atomic Event Set hash-tree of [15], with bitmask subsumption.

Each subscription contributes the *ordered* sequence of its simple-condition
identifiers.  The hash-tree stores these sequences by shared prefix: a node's
hash table maps a condition identifier to a child node; a cell is *marked*
with the subscriptions for which that condition is the last simple condition.

Given the ordered list of conditions satisfied by a document (produced by
the preFilter), matching walks the tree and collects the markings of every
subscription whose full condition sequence is contained in the satisfied
list.  The cost depends on the number of satisfied conditions, not on the
total number of subscriptions, which is why the organisation "scales with
the number of subscriptions".

Compiled-engine refinements over the textbook structure:

* every condition sequence is also an **int bitmask** (bit ``i`` set for
  condition id ``i``), and match results are **cached per satisfied-mask**:
  alert streams repeat root attribute shapes heavily, and two documents
  satisfying the same condition set always match the same subscriptions, so
  repeats are one dict lookup;
* because the mask is the cache key, it is authoritative: each tree node
  stores the mask of its path and a marking is reported only when
  ``path_mask & satisfied_mask == path_mask`` (one machine-int AND).  For a
  well-formed call the walk already guarantees this — it only descends
  satisfied edges — but the clamp keeps an inconsistent ``(ids, mask)``
  pair passed by a caller from poisoning the cache for that mask;
* the walk is **iterative** (explicit stack), so deep condition sequences
  never hit Python's recursion limit and no per-level call frames are paid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.filtering.conditions import ConditionRegistry, FilterSubscription

#: Result-cache bound; beyond it the cache is dropped and rebuilt (the set of
#: distinct satisfied-masks is normally tiny compared to the item count).
MAX_MATCH_CACHE = 65536


@dataclass
class AESMatch:
    """Result of matching one document's satisfied conditions."""

    simple_matches: list[str] = field(default_factory=list)
    active_complex: list[str] = field(default_factory=list)

    def all_ids(self) -> list[str]:
        return self.simple_matches + self.active_complex


class _HashTreeNode:
    __slots__ = ("table", "simple_markings", "complex_markings", "path_mask")

    def __init__(self, path_mask: int = 0) -> None:
        self.table: dict[int, _HashTreeNode] = {}
        # subscriptions whose *last* simple condition is the edge leading here
        self.simple_markings: list[str] = []
        self.complex_markings: list[str] = []
        # bitmask of the condition ids along the path from the root to here
        self.path_mask = path_mask


class AESFilter:
    """Hash-tree matcher for conjunctions of simple conditions."""

    def __init__(self, registry: ConditionRegistry) -> None:
        self._registry = registry
        self._root = _HashTreeNode()
        # subscriptions with no simple conditions are always active/matched
        self._always_simple: list[str] = []
        self._always_complex: list[str] = []
        # subscription id -> its condition-sequence bitmask
        self._masks: dict[str, int] = {}
        self._match_cache: dict[int, tuple[tuple[str, ...], tuple[str, ...]]] = {}
        self.subscription_count = 0
        self.nodes_visited = 0
        self.match_cache_hits = 0
        self.match_cache_misses = 0

    # -- construction / maintenance ------------------------------------------------

    def add_subscription(self, subscription: FilterSubscription) -> None:
        """Insert one subscription's ordered simple-condition sequence."""
        condition_ids = subscription.condition_ids(self._registry)
        self.subscription_count += 1
        # any previously cached result may be missing the new subscription
        self._match_cache.clear()
        mask = 0
        for condition_id in condition_ids:
            mask |= 1 << condition_id
        self._masks[subscription.sub_id] = mask
        if not condition_ids:
            if subscription.is_complex:
                self._always_complex.append(subscription.sub_id)
            else:
                self._always_simple.append(subscription.sub_id)
            return
        node = self._root
        for condition_id in condition_ids:
            child = node.table.get(condition_id)
            if child is None:
                child = _HashTreeNode(node.path_mask | (1 << condition_id))
                node.table[condition_id] = child
            node = child
        if subscription.is_complex:
            node.complex_markings.append(subscription.sub_id)
        else:
            node.simple_markings.append(subscription.sub_id)

    def add_subscriptions(self, subscriptions: list[FilterSubscription]) -> None:
        for subscription in subscriptions:
            self.add_subscription(subscription)

    def mask_of(self, sub_id: str) -> int:
        """The condition-sequence bitmask registered for ``sub_id``."""
        return self._masks[sub_id]

    # -- matching ----------------------------------------------------------------------

    def match(
        self, satisfied_conditions: list[int], satisfied_mask: int | None = None
    ) -> AESMatch:
        """Find subscriptions whose condition sequence ⊆ ``satisfied_conditions``.

        ``satisfied_conditions`` must be sorted ascending (the preFilter
        guarantees this).  ``satisfied_mask`` is the same set as a bitmask;
        it is derived from the list when not supplied.
        """
        if satisfied_mask is None:
            satisfied_mask = 0
            for condition_id in satisfied_conditions:
                satisfied_mask |= 1 << condition_id
        cached = self._match_cache.get(satisfied_mask)
        if cached is not None:
            self.match_cache_hits += 1
            return AESMatch(list(cached[0]), list(cached[1]))
        self.match_cache_misses += 1

        simple = list(self._always_simple)
        complex_ = list(self._always_complex)
        satisfied = satisfied_conditions
        n = len(satisfied)
        visited = 0
        # Iterative prefix-shared walk: (node, index into `satisfied` from
        # which the node's children may still be extended).
        stack: list[tuple[_HashTreeNode, int]] = [(self._root, 0)]
        pop = stack.pop
        push = stack.append
        while stack:
            node, start = pop()
            table = node.table
            for index in range(start, n):
                child = table.get(satisfied[index])
                if child is None:
                    continue
                visited += 1
                # always true for consistent (ids, mask) inputs; clamps the
                # cached-by-mask result when a caller passes them inconsistent
                path_mask = child.path_mask
                if path_mask & satisfied_mask == path_mask:
                    if child.simple_markings:
                        simple.extend(child.simple_markings)
                    if child.complex_markings:
                        complex_.extend(child.complex_markings)
                if child.table:
                    push((child, index + 1))
        self.nodes_visited += visited
        if len(self._match_cache) >= MAX_MATCH_CACHE:
            self._match_cache.clear()
        self._match_cache[satisfied_mask] = (tuple(simple), tuple(complex_))
        return AESMatch(simple, complex_)

    # -- introspection -------------------------------------------------------------------

    def node_count(self) -> int:
        """Total number of hash-tree nodes (measures prefix sharing)."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.table.values())
        return total

    def reset_counters(self) -> None:
        """Reset per-run counters (the match cache itself is kept)."""
        self.nodes_visited = 0
        self.match_cache_hits = 0
        self.match_cache_misses = 0
