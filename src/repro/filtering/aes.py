"""AESFilter: the Atomic Event Set hash-tree of [15].

Each subscription contributes the *ordered* sequence of its simple-condition
identifiers.  The hash-tree stores these sequences by shared prefix: a node's
hash table maps a condition identifier to a child node; a cell is *marked*
with the subscriptions for which that condition is the last simple condition.

Given the ordered list of conditions satisfied by a document (produced by
the preFilter), matching walks the tree and collects the markings of every
subscription whose full condition sequence is contained in the satisfied
list.  The cost depends on the number of satisfied conditions, not on the
total number of subscriptions, which is why the organisation "scales with
the number of subscriptions".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.filtering.conditions import ConditionRegistry, FilterSubscription


@dataclass
class AESMatch:
    """Result of matching one document's satisfied conditions."""

    simple_matches: list[str] = field(default_factory=list)
    active_complex: list[str] = field(default_factory=list)

    def all_ids(self) -> list[str]:
        return self.simple_matches + self.active_complex


class _HashTreeNode:
    __slots__ = ("table", "simple_markings", "complex_markings")

    def __init__(self) -> None:
        self.table: dict[int, _HashTreeNode] = {}
        # subscriptions whose *last* simple condition is the edge leading here
        self.simple_markings: list[str] = []
        self.complex_markings: list[str] = []


class AESFilter:
    """Hash-tree matcher for conjunctions of simple conditions."""

    def __init__(self, registry: ConditionRegistry) -> None:
        self._registry = registry
        self._root = _HashTreeNode()
        # subscriptions with no simple conditions are always active/matched
        self._always_simple: list[str] = []
        self._always_complex: list[str] = []
        self.subscription_count = 0
        self.nodes_visited = 0

    # -- construction / maintenance ------------------------------------------------

    def add_subscription(self, subscription: FilterSubscription) -> None:
        """Insert one subscription's ordered simple-condition sequence."""
        condition_ids = subscription.condition_ids(self._registry)
        self.subscription_count += 1
        if not condition_ids:
            if subscription.is_complex:
                self._always_complex.append(subscription.sub_id)
            else:
                self._always_simple.append(subscription.sub_id)
            return
        node = self._root
        for condition_id in condition_ids:
            node = node.table.setdefault(condition_id, _HashTreeNode())
        if subscription.is_complex:
            node.complex_markings.append(subscription.sub_id)
        else:
            node.simple_markings.append(subscription.sub_id)

    def add_subscriptions(self, subscriptions: list[FilterSubscription]) -> None:
        for subscription in subscriptions:
            self.add_subscription(subscription)

    # -- matching ----------------------------------------------------------------------

    def match(self, satisfied_conditions: list[int]) -> AESMatch:
        """Find subscriptions whose condition sequence ⊆ ``satisfied_conditions``.

        ``satisfied_conditions`` must be sorted ascending (the preFilter
        guarantees this).
        """
        result = AESMatch(
            simple_matches=list(self._always_simple),
            active_complex=list(self._always_complex),
        )
        self._walk(self._root, satisfied_conditions, 0, result)
        return result

    def _walk(
        self,
        node: _HashTreeNode,
        satisfied: list[int],
        start: int,
        result: AESMatch,
    ) -> None:
        for index in range(start, len(satisfied)):
            child = node.table.get(satisfied[index])
            if child is None:
                continue
            self.nodes_visited += 1
            if child.simple_markings:
                result.simple_matches.extend(child.simple_markings)
            if child.complex_markings:
                result.active_complex.extend(child.complex_markings)
            self._walk(child, satisfied, index + 1, result)

    # -- introspection -------------------------------------------------------------------

    def node_count(self) -> int:
        """Total number of hash-tree nodes (measures prefix sharing)."""

        def count(node: _HashTreeNode) -> int:
            return 1 + sum(count(child) for child in node.table.values())

        return count(self._root)

    def reset_counters(self) -> None:
        self.nodes_visited = 0
