"""FilterOperator: the full two-stage filter of Section 4.

Processing of one stream item:

1. :class:`PreFilter` reads the root attributes and returns the ordered list
   of satisfied simple conditions.
2. :class:`AESFilter` finds (i) simple subscriptions entirely satisfied and
   (ii) *active* complex subscriptions, i.e. those whose simple conditions
   are all satisfied and whose tree-pattern queries must still be checked.
3. :class:`YFilterSigma`, virtually pruned to the active subscriptions,
   checks the tree-pattern queries.

ActiveXML laziness: if the item carries intensional content (``sc`` service
calls) it is materialised *only* when step 3 actually runs, so items
rejected by their simple conditions never trigger the external call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.filtering.aes import AESFilter
from repro.filtering.conditions import ConditionRegistry, FilterSubscription
from repro.filtering.prefilter import PreFilter
from repro.filtering.yfilter import YFilterSigma
from repro.xmlmodel.axml import ServiceRegistry, has_service_calls, materialize
from repro.xmlmodel.tree import Element


@dataclass
class FilterResult:
    """Matches of one stream item against the subscription set."""

    item: Element
    matched: list[str] = field(default_factory=list)

    @property
    def any(self) -> bool:
        return bool(self.matched)


class FilterOperator:
    """Matches stream items against a (large) set of filter subscriptions."""

    def __init__(
        self,
        subscriptions: list[FilterSubscription] | None = None,
        service_registry: ServiceRegistry | None = None,
    ) -> None:
        self.conditions = ConditionRegistry()
        self.prefilter = PreFilter(self.conditions)
        self.aes = AESFilter(self.conditions)
        self.yfilter = YFilterSigma()
        self.service_registry = service_registry
        self._subscriptions: dict[str, FilterSubscription] = {}
        self._query_ids: dict[str, list[str]] = {}
        # counters used by benchmarks and tests
        self.items_processed = 0
        self.items_matched = 0
        self.complex_evaluations = 0
        self.materializations = 0
        for subscription in subscriptions or []:
            self.add_subscription(subscription)

    # -- subscription management ---------------------------------------------------

    def add_subscription(self, subscription: FilterSubscription) -> None:
        """Register a subscription (offline adjustment of the filter)."""
        if subscription.sub_id in self._subscriptions:
            raise ValueError(f"subscription {subscription.sub_id!r} already registered")
        self._subscriptions[subscription.sub_id] = subscription
        self.aes.add_subscription(subscription)
        query_ids: list[str] = []
        for index, query in enumerate(subscription.complex_queries):
            query_id = f"{subscription.sub_id}::{index}"
            self.yfilter.add_query(query_id, query)
            query_ids.append(query_id)
        self._query_ids[subscription.sub_id] = query_ids

    def subscription(self, sub_id: str) -> FilterSubscription:
        return self._subscriptions[sub_id]

    @property
    def subscription_ids(self) -> list[str]:
        return sorted(self._subscriptions)

    def __len__(self) -> int:
        return len(self._subscriptions)

    # -- item processing ---------------------------------------------------------------

    def process(self, item: Element) -> FilterResult:
        """Match one stream item; returns the identifiers of satisfied subscriptions."""
        self.items_processed += 1
        satisfied = self.prefilter.satisfied_conditions(item)
        aes_match = self.aes.match(satisfied)
        matched = [
            sub_id
            for sub_id in aes_match.simple_matches
            if self._subscriptions[sub_id].computed_hold(item)
        ]

        active_complex = [
            sub_id
            for sub_id in aes_match.active_complex
            if self._subscriptions[sub_id].computed_hold(item)
        ]
        if active_complex:
            self.complex_evaluations += len(active_complex)
            target = self._extensional_view(item)
            active_query_ids = {
                query_id
                for sub_id in active_complex
                for query_id in self._query_ids[sub_id]
            }
            matched_queries = self.yfilter.match(target, active_query_ids)
            for sub_id in active_complex:
                if all(qid in matched_queries for qid in self._query_ids[sub_id]):
                    matched.append(sub_id)

        matched.sort()
        if matched:
            self.items_matched += 1
        return FilterResult(item=item, matched=matched)

    def _extensional_view(self, item: Element) -> Element:
        """Materialise intensional content only when complex queries must run."""
        if self.service_registry is not None and has_service_calls(item):
            self.materializations += 1
            return materialize(item, self.service_registry)
        return item

    def reset_counters(self) -> None:
        self.items_processed = 0
        self.items_matched = 0
        self.complex_evaluations = 0
        self.materializations = 0
        self.prefilter.reset_counters()
        self.aes.reset_counters()
        self.yfilter.reset_counters()
