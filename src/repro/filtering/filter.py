"""FilterOperator: the full two-stage filter of Section 4.

Processing of one stream item:

1. :class:`PreFilter` reads the root attributes and returns the satisfied
   simple conditions as an ordered id list plus a bitmask.
2. :class:`AESFilter` finds (i) simple subscriptions entirely satisfied and
   (ii) *active* complex subscriptions, i.e. those whose simple conditions
   are all satisfied and whose tree-pattern queries must still be checked.
3. :class:`YFilterSigma`, virtually pruned to the active subscriptions,
   checks the tree-pattern queries.

ActiveXML laziness: if the item carries intensional content (``sc`` service
calls) it is materialised *only* when step 3 actually runs, so items
rejected by their simple conditions never trigger the external call.

The compiled engine memoises, per satisfied-condition **bitmask**, the whole
outcome of stage 2 *plus* its bookkeeping: which matched subscriptions still
need LET-derived (computed) conditions evaluated, which active complex
subscriptions exist, and the frozen set of YFilter query ids they activate.
Two items satisfying the same simple conditions — the overwhelmingly common
case for machine-generated alert streams — therefore skip straight from the
preFilter to the (DFA-cached) tree-pattern check.  :meth:`process_batch`
amortises the remaining per-item dispatch for alerter bursts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.filtering.aes import AESFilter
from repro.filtering.conditions import ConditionRegistry, FilterSubscription
from repro.filtering.prefilter import PreFilter, flatten_parts
from repro.filtering.yfilter import YFilterSigma
from repro.xmlmodel.axml import ServiceRegistry, has_service_calls, materialize
from repro.xmlmodel.tree import Element

#: Bound on the per-satisfied-mask plan cache (cleared wholesale when full).
MAX_MASK_CACHE = 65536


@dataclass
class FilterResult:
    """Matches of one stream item against the subscription set."""

    item: Element
    matched: list[str] = field(default_factory=list)

    @property
    def any(self) -> bool:
        return bool(self.matched)


class _MaskPlan:
    """Everything stage 2 derives from one satisfied-condition bitmask."""

    __slots__ = (
        "simple_plain",
        "simple_computed",
        "complex_plain",
        "complex_computed",
        "plain_query_ids",
    )

    def __init__(
        self,
        simple_plain: tuple[str, ...],
        simple_computed: tuple[str, ...],
        complex_plain: tuple[str, ...],
        complex_computed: tuple[str, ...],
        plain_query_ids: frozenset[str],
    ) -> None:
        self.simple_plain = simple_plain
        self.simple_computed = simple_computed
        self.complex_plain = complex_plain
        self.complex_computed = complex_computed
        self.plain_query_ids = plain_query_ids


class FilterOperator:
    """Matches stream items against a (large) set of filter subscriptions."""

    def __init__(
        self,
        subscriptions: list[FilterSubscription] | None = None,
        service_registry: ServiceRegistry | None = None,
    ) -> None:
        self.conditions = ConditionRegistry()
        self.prefilter = PreFilter(self.conditions)
        self.aes = AESFilter(self.conditions)
        self.yfilter = YFilterSigma()
        self.service_registry = service_registry
        self._subscriptions: dict[str, FilterSubscription] = {}
        self._query_ids: dict[str, tuple[str, ...]] = {}
        self._mask_cache: dict[int, _MaskPlan] = {}
        # counters used by benchmarks and tests
        self.items_processed = 0
        self.items_matched = 0
        self.complex_evaluations = 0
        self.materializations = 0
        self.mask_cache_hits = 0
        self.mask_cache_misses = 0
        for subscription in subscriptions or []:
            self.add_subscription(subscription)

    # -- subscription management ---------------------------------------------------

    def add_subscription(self, subscription: FilterSubscription) -> None:
        """Register a subscription (offline adjustment of the filter)."""
        if subscription.sub_id in self._subscriptions:
            raise ValueError(f"subscription {subscription.sub_id!r} already registered")
        self._subscriptions[subscription.sub_id] = subscription
        self.aes.add_subscription(subscription)
        query_ids: list[str] = []
        for index, query in enumerate(subscription.complex_queries):
            query_id = f"{subscription.sub_id}::{index}"
            self.yfilter.add_query(query_id, query)
            query_ids.append(query_id)
        self._query_ids[subscription.sub_id] = tuple(query_ids)
        # cached plans may be missing the new subscription
        self._mask_cache.clear()

    def subscription(self, sub_id: str) -> FilterSubscription:
        return self._subscriptions[sub_id]

    @property
    def subscription_ids(self) -> list[str]:
        return sorted(self._subscriptions)

    def __len__(self) -> int:
        return len(self._subscriptions)

    # -- item processing ---------------------------------------------------------------

    def process(self, item: Element) -> FilterResult:
        """Match one stream item; returns the identifiers of satisfied subscriptions."""
        self.items_processed += 1
        satisfied_mask, satisfied_parts = self.prefilter.satisfied_parts(item)
        plan = self._mask_cache.get(satisfied_mask)
        if plan is None:
            self.mask_cache_misses += 1
            plan = self._compile_plan(satisfied_mask, flatten_parts(satisfied_parts))
        else:
            self.mask_cache_hits += 1

        # plan.simple_plain is pre-sorted; only later appends force a re-sort
        matched = list(plan.simple_plain)
        needs_sort = False
        if plan.simple_computed:
            subscriptions = self._subscriptions
            for sub_id in plan.simple_computed:
                if subscriptions[sub_id].computed_hold(item):
                    matched.append(sub_id)
                    needs_sort = True

        if plan.complex_plain or plan.complex_computed:
            active_complex: Sequence[str]
            active_query_ids: frozenset[str] | set[str]
            if plan.complex_computed:
                subscriptions = self._subscriptions
                passing = [
                    sub_id
                    for sub_id in plan.complex_computed
                    if subscriptions[sub_id].computed_hold(item)
                ]
                active_complex = [*plan.complex_plain, *passing]
                active_query_ids = set(plan.plain_query_ids)
                for sub_id in passing:
                    active_query_ids.update(self._query_ids[sub_id])
            else:
                active_complex = plan.complex_plain
                active_query_ids = plan.plain_query_ids
            if active_complex:
                self.complex_evaluations += len(active_complex)
                target = self._extensional_view(item)
                matched_queries = self.yfilter.match(target, active_query_ids)
                query_ids = self._query_ids
                for sub_id in active_complex:
                    for query_id in query_ids[sub_id]:
                        if query_id not in matched_queries:
                            break
                    else:
                        matched.append(sub_id)
                        needs_sort = True

        if needs_sort:
            matched.sort()
        if matched:
            self.items_matched += 1
        return FilterResult(item=item, matched=matched)

    def process_batch(self, items: Iterable[Element]) -> list[FilterResult]:
        """Match a burst of stream items, amortising per-item dispatch."""
        process = self.process
        return [process(item) for item in items]

    def _compile_plan(self, satisfied_mask: int, satisfied_ids: list[int]) -> _MaskPlan:
        """Run stage 2 once for this satisfied-mask and memoise its outcome."""
        aes_match = self.aes.match(satisfied_ids, satisfied_mask)
        subscriptions = self._subscriptions
        simple_plain: list[str] = []
        simple_computed: list[str] = []
        for sub_id in aes_match.simple_matches:
            if subscriptions[sub_id].computed:
                simple_computed.append(sub_id)
            else:
                simple_plain.append(sub_id)
        complex_plain: list[str] = []
        complex_computed: list[str] = []
        for sub_id in aes_match.active_complex:
            if subscriptions[sub_id].computed:
                complex_computed.append(sub_id)
            else:
                complex_plain.append(sub_id)
        plain_query_ids = frozenset(
            query_id
            for sub_id in complex_plain
            for query_id in self._query_ids[sub_id]
        )
        simple_plain.sort()
        plan = _MaskPlan(
            tuple(simple_plain),
            tuple(simple_computed),
            tuple(complex_plain),
            tuple(complex_computed),
            plain_query_ids,
        )
        if len(self._mask_cache) >= MAX_MASK_CACHE:
            self._mask_cache.clear()
        self._mask_cache[satisfied_mask] = plan
        return plan

    def _extensional_view(self, item: Element) -> Element:
        """Materialise intensional content only when complex queries must run."""
        if self.service_registry is not None and has_service_calls(item):
            self.materializations += 1
            return materialize(item, self.service_registry)
        return item

    def reset_counters(self) -> None:
        """Reset this operator's counters and those of all three stages."""
        self.items_processed = 0
        self.items_matched = 0
        self.complex_evaluations = 0
        self.materializations = 0
        self.mask_cache_hits = 0
        self.mask_cache_misses = 0
        self.prefilter.reset_counters()
        self.aes.reset_counters()
        self.yfilter.reset_counters()
