"""Consistent hashing helpers for the identifier ring."""

from __future__ import annotations

import hashlib

#: Number of bits of the identifier space (2**M positions on the ring).
M_BITS = 32
RING_SIZE = 1 << M_BITS


def hash_key(key: str, bits: int = M_BITS) -> int:
    """Hash ``key`` to an integer identifier in ``[0, 2**bits)``.

    SHA-1 is used (as in Chord) and truncated to ``bits`` bits; the function
    is deterministic across runs and platforms.
    """
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    value = int.from_bytes(digest, "big")
    return value % (1 << bits)


def ring_distance(start: int, end: int, bits: int = M_BITS) -> int:
    """Clockwise distance from ``start`` to ``end`` on the ring."""
    size = 1 << bits
    return (end - start) % size


def in_interval(value: int, start: int, end: int, bits: int = M_BITS) -> bool:
    """True when ``value`` lies in the half-open clockwise interval (start, end]."""
    size = 1 << bits
    value %= size
    start %= size
    end %= size
    if start < end:
        return start < value <= end
    if start > end:  # interval wraps around zero
        return value > start or value <= end
    return True  # start == end: the interval is the full ring
