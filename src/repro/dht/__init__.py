"""DHT substrate: Chord-style ring and the KadoP-like XML index.

Section 5 of the paper stores the Stream Definition Database in KadoP [3],
"a P2P XML index and repository over a DHT system", so that stream discovery
scales to millions of streams without a central bottleneck.  This package
provides a self-contained equivalent:

* :mod:`repro.dht.hashing` -- consistent hashing onto a ``2**m`` identifier ring.
* :mod:`repro.dht.chord` -- a Chord-style ring with finger tables, key
  storage and hop-counted lookups.
* :mod:`repro.dht.kadop` -- an XML postings index layered over the ring,
  answering the tree-pattern queries used by the Reuse algorithm, plus the
  membership event stream consumed by the ``areRegistered`` alerter.
"""

from repro.dht.hashing import hash_key, ring_distance
from repro.dht.chord import ChordNode, ChordRing, LookupResult
from repro.dht.kadop import KadopIndex, MembershipEvent

__all__ = [
    "hash_key",
    "ring_distance",
    "ChordNode",
    "ChordRing",
    "LookupResult",
    "KadopIndex",
    "MembershipEvent",
]
