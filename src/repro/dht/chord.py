"""A Chord-style distributed hash table.

The ring stores (key, value) pairs at the successor node of the key's hash.
Lookups are routed through finger tables, so the number of hops grows
logarithmically with the number of nodes -- the property benchmark E8
measures.  Node joins and departures move exactly the keys that change
successor, and an event log of joins/leaves feeds the ``areRegistered``
membership alerter.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator

from repro.dht.hashing import M_BITS, hash_key, in_interval


@dataclass
class LookupResult:
    """Outcome of a key lookup: responsible node and routing cost."""

    node_id: str
    hops: int
    path: list[str] = field(default_factory=list)


class ChordNode:
    """One node of the ring; stores the keys it is responsible for."""

    def __init__(self, node_id: str, position: int) -> None:
        self.node_id = node_id
        self.position = position
        self.storage: dict[str, object] = {}
        # finger table, rebuilt lazily when the ring membership changes
        self.fingers: list["ChordNode"] = []
        self._fingers_version = -1

    def __repr__(self) -> str:
        return f"ChordNode({self.node_id!r}, position={self.position})"


class ChordRing:
    """The whole ring.

    The implementation is a *simulation* of Chord: global knowledge is used
    to build correct finger tables after each membership change (the paper's
    KadoP similarly assumes a maintained DHT), but lookups strictly follow
    finger-table routing so hop counts are faithful.
    """

    def __init__(self, bits: int = M_BITS) -> None:
        self.bits = bits
        self._nodes: dict[str, ChordNode] = {}
        self._sorted: list[ChordNode] = []
        self._positions: list[int] = []  # sorted positions, parallel to _sorted
        self._version = 0  # bumped on every membership change (invalidates fingers)
        self.membership_log: list[tuple[str, str]] = []  # (event, node_id)
        self.lookup_count = 0
        self.total_hops = 0

    # -- membership -----------------------------------------------------------

    def join(self, node_id: str) -> ChordNode:
        """Add a node; keys now owned by it are transferred from its successor."""
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already in the ring")
        position = hash_key(node_id, self.bits)
        while any(node.position == position for node in self._sorted):
            position = (position + 1) % (1 << self.bits)  # avoid collisions
        node = ChordNode(node_id, position)
        self._nodes[node_id] = node
        index = bisect.bisect_left(self._positions, position)
        self._sorted.insert(index, node)
        self._positions.insert(index, position)
        self._version += 1
        self._transfer_keys_to(node)
        self.membership_log.append(("join", node_id))
        return node

    def leave(self, node_id: str) -> None:
        """Remove a node; its keys move to its successor."""
        node = self._remove(node_id)
        self.membership_log.append(("leave", node_id))
        if self._sorted:
            successor = self._successor_node(node.position)
            successor.storage.update(node.storage)

    def fail(self, node_id: str) -> list[str]:
        """Abrupt departure: the node crashes and its keys are *lost*.

        Unlike the graceful :meth:`leave`, no key transfer happens -- the
        keys the node stored disappear with it, exactly the situation the
        KadoP layer's re-replication (:meth:`repro.dht.kadop.KadopIndex.fail_peer`)
        must repair.  The ring itself re-stabilises: successor lists and
        finger tables are rebuilt lazily for the surviving nodes.  Returns
        the sorted list of lost keys so the caller can restore them.
        """
        node = self._remove(node_id)
        self.membership_log.append(("fail", node_id))
        return sorted(node.storage)

    def _remove(self, node_id: str) -> ChordNode:
        node = self._nodes.pop(node_id, None)
        if node is None:
            raise KeyError(f"node {node_id!r} is not in the ring")
        index = self._sorted.index(node)
        del self._sorted[index]
        del self._positions[index]
        self._version += 1
        return node

    @property
    def node_ids(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def node(self, node_id: str) -> ChordNode:
        return self._nodes[node_id]

    def nodes(self) -> Iterator[ChordNode]:
        return iter(self._sorted)

    # -- topology maintenance ----------------------------------------------------

    def _successor_node(self, position: int) -> ChordNode:
        """First node whose position is >= ``position`` (wrapping around)."""
        index = bisect.bisect_left(self._positions, position)
        if index == len(self._sorted):
            index = 0
        return self._sorted[index]

    def _fingers_of(self, node: ChordNode) -> list[ChordNode]:
        """The node's finger table, rebuilt lazily after membership changes."""
        if node._fingers_version != self._version:
            node.fingers = [
                self._successor_node((node.position + (1 << i)) % (1 << self.bits))
                for i in range(self.bits)
            ]
            node._fingers_version = self._version
        return node.fingers

    def _transfer_keys_to(self, new_node: ChordNode) -> None:
        if len(self._sorted) == 1:
            return
        successor = self._successor_node((new_node.position + 1) % (1 << self.bits))
        if successor is new_node:
            return
        moved = [
            key
            for key in successor.storage
            if self._successor_node(hash_key(key, self.bits)) is new_node
        ]
        for key in moved:
            new_node.storage[key] = successor.storage.pop(key)

    # -- routing ------------------------------------------------------------------

    def lookup(self, key: str, start: str | None = None) -> LookupResult:
        """Route to the node responsible for ``key`` using finger tables."""
        if not self._sorted:
            raise RuntimeError("the ring is empty")
        target = hash_key(key, self.bits)
        current = self._nodes[start] if start else self._sorted[0]
        hops = 0
        path = [current.node_id]
        # Follow fingers: jump to the finger closest to (but not past) the target.
        while True:
            successor = self._successor_of(current)
            if in_interval(target, current.position, successor.position, self.bits):
                responsible = successor
                break
            next_node = self._closest_preceding(current, target)
            if next_node is current:
                responsible = self._successor_node(target)
                break
            current = next_node
            hops += 1
            path.append(current.node_id)
        if responsible.node_id != path[-1]:
            hops += 1
            path.append(responsible.node_id)
        self.lookup_count += 1
        self.total_hops += hops
        return LookupResult(responsible.node_id, hops, path)

    def _successor_of(self, node: ChordNode) -> ChordNode:
        index = self._sorted.index(node)
        return self._sorted[(index + 1) % len(self._sorted)]

    def _closest_preceding(self, node: ChordNode, target: int) -> ChordNode:
        for finger in reversed(self._fingers_of(node)):
            if finger is node:
                continue
            if in_interval(
                finger.position,
                node.position,
                (target - 1) % (1 << self.bits),
                self.bits,
            ):
                return finger
        return node

    # -- storage -------------------------------------------------------------------

    def put(self, key: str, value: object, start: str | None = None) -> LookupResult:
        """Store ``value`` under ``key`` at the responsible node."""
        result = self.lookup(key, start)
        self._nodes[result.node_id].storage[key] = value
        return result

    def get(self, key: str, start: str | None = None) -> tuple[object | None, LookupResult]:
        """Fetch the value stored under ``key`` (``None`` when absent)."""
        result = self.lookup(key, start)
        return self._nodes[result.node_id].storage.get(key), result

    def remove(self, key: str, start: str | None = None) -> bool:
        result = self.lookup(key, start)
        return self._nodes[result.node_id].storage.pop(key, None) is not None

    @property
    def average_hops(self) -> float:
        """Mean hops per lookup since the ring was created."""
        if self.lookup_count == 0:
            return 0.0
        return self.total_hops / self.lookup_count

    def storage_distribution(self) -> dict[str, int]:
        """Number of keys stored per node (used to check load spread)."""
        return {node.node_id: len(node.storage) for node in self._sorted}
