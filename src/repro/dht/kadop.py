"""KadoP-style P2P XML index over the Chord ring.

KadoP [3] lets "all the peers ... participate in the storage and indexing of
the Stream Definition Database" and supports discovering streams "even when
millions of streams have been declared by tens of thousands of peers".

The index stores whole XML documents (stream descriptions) in the DHT and
maintains postings lists from *terms* -- element tags and (tag, attribute,
value) triples -- to document identifiers.  A tree-pattern query is answered
by intersecting the postings of the terms it mentions and then verifying the
full XPath on the candidate documents, mirroring how KadoP narrows down
candidates before structural verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dht.chord import ChordRing
from repro.xmlmodel.tree import Element
from repro.xmlmodel.xpath import BooleanExpr, Comparison, XPath


@dataclass(frozen=True)
class MembershipEvent:
    """A peer joining or leaving the monitored DHT (feeds ``areRegistered``)."""

    kind: str  # "join" | "leave"
    peer_id: str

    def to_element(self) -> Element:
        tag = "p-join" if self.kind == "join" else "p-leave"
        return Element(tag, text=self.peer_id)


MembershipListener = Callable[[MembershipEvent], None]

#: ``listener(kind, doc_id, document)`` with kind ``"publish"`` or
#: ``"unpublish"``.  Secondary indexes over the document store (the Stream
#: Definition Database's in-memory indexes) subscribe here so they stay
#: coherent no matter who publishes into the index.
DocumentListener = Callable[[str, str, Element], None]

_DOCS_KEY = "__all_documents__"

#: Bound on the per-query caches; generated queries embed peer/stream ids, so
#: a long churny run could otherwise grow them without limit.
_QUERY_CACHE_LIMIT = 4096


class KadopIndex:
    """The Stream Definition Database: publish XML descriptions, query by XPath."""

    def __init__(self, ring: ChordRing | None = None) -> None:
        self.ring = ring if ring is not None else ChordRing()
        if len(self.ring) == 0:
            self.ring.join("kadop-seed")
        self._doc_count = 0
        self._membership_listeners: list[MembershipListener] = []
        self._document_listeners: list[DocumentListener] = []
        #: query-result cache keyed on the canonical query string; any
        #: mutation of the document store (publish, unpublish, failure-time
        #: key restoration) invalidates it wholesale
        self._query_cache: dict[str, list[tuple[str, Element]]] = {}
        #: per-query term derivation -- depends only on the query text, so it
        #: survives document-store mutations
        self._query_terms: dict[str, frozenset[str]] = {}
        self.query_cache_hits = 0
        self.query_cache_misses = 0
        #: replica store of every published document, keyed by doc id.  KadoP
        #: replicates index entries across peers; we model that as a full
        #: mirror from which keys lost to an abrupt node failure are restored.
        self._doc_replicas: dict[str, Element] = {}
        #: per-document term extraction, computed once at publish time --
        #: unpublish and failure-time re-replication reuse it instead of
        #: re-walking the document tree per term key
        self._doc_terms: dict[str, frozenset[str]] = {}
        self.keys_restored = 0
        # ensure the catalogue of all doc ids exists
        if self.ring.get(_DOCS_KEY)[0] is None:
            self.ring.put(_DOCS_KEY, set())

    # -- peer membership --------------------------------------------------------

    def join_peer(self, peer_id: str) -> None:
        """A peer registers with the DHT; keys are rebalanced automatically.

        Registration is idempotent with respect to storage membership: a peer
        that already participates in the ring (e.g. because it stores part of
        the index) still produces a ``join`` event for the membership stream.
        """
        if peer_id not in self.ring:
            self.ring.join(peer_id)
        self._notify(MembershipEvent("join", peer_id))

    def leave_peer(self, peer_id: str) -> None:
        """A peer deregisters; its keys move to its successor."""
        if peer_id in self.ring and len(self.ring) > 1:
            self.ring.leave(peer_id)
        self._notify(MembershipEvent("leave", peer_id))

    def fail_peer(self, peer_id: str) -> int:
        """A peer crashes: its ring node vanishes and its keys are lost.

        The surviving ring re-stabilises, and the keys the dead node stored
        are re-replicated from the document mirror onto their new successor
        nodes (KadoP's replication keeps the index available through
        churn).  A ``leave`` membership event is emitted, so dynamic
        alerters stop monitoring the peer.  Returns the number of restored
        keys.
        """
        restored = 0
        if peer_id in self.ring and len(self.ring) > 1:
            lost = self.ring.fail(peer_id)
            restored = self._restore_keys(lost)
            self.keys_restored += restored
            self._query_cache.clear()
        self._notify(MembershipEvent("leave", peer_id))
        return restored

    def _restore_keys(self, lost: list[str]) -> int:
        """Re-insert lost index keys from the replicated document store."""
        restored = 0
        for key in lost:
            if key == _DOCS_KEY:
                self.ring.put(_DOCS_KEY, set(self._doc_replicas))
                restored += 1
            elif key.startswith("doc:"):
                doc_id = key[len("doc:"):]
                document = self._doc_replicas.get(doc_id)
                if document is not None:
                    self.ring.put(key, document.copy())
                    restored += 1
            elif key.startswith("term:"):
                term = key[len("term:"):]
                postings = {
                    doc_id
                    for doc_id in self._doc_replicas
                    if term in self._terms_of(doc_id)
                }
                self.ring.put(key, postings)
                restored += 1
        return restored

    def subscribe_membership(self, listener: MembershipListener) -> None:
        """Register a callback invoked on every join/leave (the DHT event stream)."""
        self._membership_listeners.append(listener)

    def _notify(self, event: MembershipEvent) -> None:
        for listener in list(self._membership_listeners):
            listener(event)

    def subscribe_documents(self, listener: DocumentListener) -> None:
        """Register a callback invoked on every document publish/unpublish."""
        self._document_listeners.append(listener)

    def _notify_documents(self, kind: str, doc_id: str, document: Element) -> None:
        for listener in list(self._document_listeners):
            listener(kind, doc_id, document)

    # -- publication ---------------------------------------------------------------

    def publish(self, document: Element, doc_id: str | None = None) -> str:
        """Index ``document`` and return its identifier."""
        if doc_id is None:
            self._doc_count += 1
            doc_id = f"doc{self._doc_count}"
        self.ring.put(f"doc:{doc_id}", document.copy())
        mirror = document.copy()
        self._doc_replicas[doc_id] = mirror
        terms = frozenset(self._terms_of_document(document))
        self._doc_terms[doc_id] = terms
        catalogue, _ = self.ring.get(_DOCS_KEY)
        assert isinstance(catalogue, set)
        catalogue.add(doc_id)
        for term in terms:
            self._add_posting(term, doc_id)
        self._query_cache.clear()
        self._notify_documents("publish", doc_id, mirror)
        return doc_id

    def unpublish(self, doc_id: str) -> bool:
        """Remove a document from the index.  Returns False when unknown."""
        document, _ = self.ring.get(f"doc:{doc_id}")
        if document is None:
            return False
        assert isinstance(document, Element)
        for term in self._terms_of(doc_id, document):
            postings, _ = self.ring.get(f"term:{term}")
            if isinstance(postings, set):
                postings.discard(doc_id)
        catalogue, _ = self.ring.get(_DOCS_KEY)
        if isinstance(catalogue, set):
            catalogue.discard(doc_id)
        self.ring.remove(f"doc:{doc_id}")
        mirror = self._doc_replicas.pop(doc_id, None)
        self._doc_terms.pop(doc_id, None)
        self._query_cache.clear()
        self._notify_documents("unpublish", doc_id, mirror if mirror is not None else document)
        return True

    def document(self, doc_id: str) -> Element | None:
        document, _ = self.ring.get(f"doc:{doc_id}")
        return document if isinstance(document, Element) else None

    @property
    def document_ids(self) -> list[str]:
        catalogue, _ = self.ring.get(_DOCS_KEY)
        return sorted(catalogue) if isinstance(catalogue, set) else []

    # -- querying ---------------------------------------------------------------------

    def query(self, query: str | XPath) -> list[tuple[str, Element]]:
        """Return ``(doc_id, document)`` pairs whose document matches ``query``.

        Results are cached per canonical query string until the document
        store next mutates, so repeated control-plane probes (the Reuse
        algorithm re-asking the same Stream Definition Database questions)
        cost one dict lookup instead of a posting-list intersection plus a
        structural verification per candidate.
        """
        path = XPath.compile(query) if isinstance(query, str) else query
        cached = self._query_cache.get(path.expression)
        if cached is not None:
            self.query_cache_hits += 1
            return list(cached)
        self.query_cache_misses += 1
        results = self._query_uncached(path)
        if len(self._query_cache) >= _QUERY_CACHE_LIMIT:
            self._query_cache.clear()
        self._query_cache[path.expression] = results
        return list(results)

    def _query_uncached(self, path: XPath) -> list[tuple[str, Element]]:
        candidates = self._candidate_doc_ids(path)
        results: list[tuple[str, Element]] = []
        for doc_id in sorted(candidates):
            document = self.document(doc_id)
            if document is not None and path.matches(document):
                results.append((doc_id, document))
        return results

    def query_lookup_cost(self, query: str | XPath) -> dict[str, float]:
        """Run a query and report the DHT routing cost it incurred.

        Bypasses the query-result cache: this probe exists to measure the
        routing work a cold query costs, not the cache's hit path.
        """
        path = XPath.compile(query) if isinstance(query, str) else query
        before_lookups = self.ring.lookup_count
        before_hops = self.ring.total_hops
        results = self._query_uncached(path)
        lookups = self.ring.lookup_count - before_lookups
        hops = self.ring.total_hops - before_hops
        return {
            "results": len(results),
            "lookups": lookups,
            "hops": hops,
            "hops_per_lookup": hops / lookups if lookups else 0.0,
        }

    # -- internals -----------------------------------------------------------------------

    def _add_posting(self, term: str, doc_id: str) -> None:
        key = f"term:{term}"
        postings, _ = self.ring.get(key)
        if not isinstance(postings, set):
            postings = set()
            self.ring.put(key, postings)
        postings.add(doc_id)

    def _postings(self, term: str) -> set[str]:
        postings, _ = self.ring.get(f"term:{term}")
        return set(postings) if isinstance(postings, set) else set()

    def _terms_of(self, doc_id: str, document: Element | None = None) -> frozenset[str]:
        """Terms of a published document, from the publish-time cache.

        Falls back to re-extracting (and caching) from ``document`` or the
        replica store for documents indexed before the cache existed.
        """
        terms = self._doc_terms.get(doc_id)
        if terms is None:
            if document is None:
                document = self._doc_replicas.get(doc_id)
            if document is None:
                return frozenset()
            terms = frozenset(self._terms_of_document(document))
            self._doc_terms[doc_id] = terms
        return terms

    @staticmethod
    def _terms_of_document(document: Element) -> set[str]:
        terms: set[str] = set()
        for node in document.iter():
            terms.add(f"tag:{node.tag}")
            for name, value in node.attrib.items():
                terms.add(f"attr:{node.tag}@{name}={value}")
        return terms

    def _candidate_doc_ids(self, path: XPath) -> set[str]:
        terms = self._query_terms.get(path.expression)
        if terms is None:
            terms = frozenset(_terms_of_query(path))
            if len(self._query_terms) >= _QUERY_CACHE_LIMIT:
                self._query_terms.clear()
            self._query_terms[path.expression] = terms
        if not terms:
            catalogue, _ = self.ring.get(_DOCS_KEY)
            return set(catalogue) if isinstance(catalogue, set) else set()
        # fetch in deterministic term order (lookup accounting stays stable),
        # then intersect smallest-set-first: the running intersection can
        # only shrink, so starting from the rarest term minimises the work
        # and lets an empty prefix short-circuit the rest
        candidate_sets = [self._postings(term) for term in sorted(terms)]
        candidate_sets.sort(key=len)
        candidates = candidate_sets[0]
        for other in candidate_sets[1:]:
            if not candidates:
                return candidates
            candidates &= other
        return candidates


def _terms_of_query(path: XPath) -> set[str]:
    """Extract index terms that every matching document must contain."""
    terms: set[str] = set()
    for step in path.steps:
        _terms_of_step(step, terms)
    return terms


def _terms_of_step(step, terms: set[str]) -> None:
    tag = None
    if not step.is_attribute and not step.is_text and step.test != "*":
        tag = step.test
        terms.add(f"tag:{tag}")
    for predicate in step.predicates:
        _terms_of_boolean(predicate, tag, terms)


def _terms_of_boolean(expr: BooleanExpr, tag: str | None, terms: set[str]) -> None:
    if expr.kind == "leaf":
        assert expr.leaf is not None
        _terms_of_comparison(expr.leaf, tag, terms)
    elif expr.kind == "and":
        for child in expr.children:
            _terms_of_boolean(child, tag, terms)
    # "or" branches are not required terms: skip them (verification handles it)


def _terms_of_comparison(comparison: Comparison, tag: str | None, terms: set[str]) -> None:
    operands = [comparison.left]
    if comparison.right is not None:
        operands.append(comparison.right)
    # attribute = literal on a named step is a strong, indexable term
    if (
        tag is not None
        and comparison.op == "="
        and comparison.left.kind == "attribute"
        and comparison.right is not None
        and comparison.right.kind == "literal"
    ):
        terms.add(f"attr:{tag}@{comparison.left.value}={comparison.right.value}")
    # path operands contribute their element tags as required terms
    for operand in operands:
        if operand.kind == "path":
            nested = operand.value
            assert isinstance(nested, XPath)
            for step in nested.steps:
                _terms_of_step(step, terms)
