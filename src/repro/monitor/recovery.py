"""Self-healing deployments: detect orphaned resources, redeploy around failures.

The paper's P2P Monitor lives in a volatile network -- "peers join, leave
and fail while subscriptions stay alive".  This module is the monitor-side
half of that story:

* when a peer fails, the :class:`RecoveryManager` walks the system's
  :class:`~repro.monitor.lifecycle.ResourceLedger` to find the *orphaned*
  resources (streams, operators and channel proxies hosted by or wired
  through the dead peer) and, from their holder chains, the subscriptions
  that depend on them;
* each affected subscription is marked ``RECOVERING`` and its plan is
  rebuilt and redeployed on surviving peers.  Union branches whose alerter
  source died are *pruned* (the inCOM-style semantics: a departed peer
  stops being monitored) and remembered as *pending sources*;
* when a pending source revives, the subscription is redeployed once more
  to restore full coverage.

Delivery continuity: result buffers and ``on_result`` callbacks survive a
redeployment -- they are handed over from the dying task's delivery stream
to the replacement's, so a handle obtained before a failure keeps working
after it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.algebra.plan import ALERTER, EXISTING, UNION, PlanNode
from repro.monitor.subscription import (
    CANCELLED,
    DEPLOYED,
    PAUSED,
    RECOVERING,
    Subscription,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.manager import SubscriptionManager
    from repro.monitor.p2pm_peer import P2PMSystem


# --------------------------------------------------------------------------- #
# Plan surgery
# --------------------------------------------------------------------------- #


def prune_dead_sources(
    plan: PlanNode, down: frozenset[str]
) -> tuple[PlanNode | None, set[str]]:
    """Remove plan branches rooted at sources hosted on failed peers.

    A union keeps its surviving branches (monitoring degrades gracefully,
    like the dynamic-membership alerter dropping departed peers); any other
    node with a dead, non-substitutable source makes its whole subtree
    undeployable.  Returns the pruned plan (``None`` when nothing can run)
    plus the set of failed peers whose revival would restore coverage.
    """
    pending: set[str] = set()
    pruned = _prune(plan, down, pending)
    return pruned, pending


def _prune(node: PlanNode, down: frozenset[str], pending: set[str]) -> PlanNode | None:
    if node.kind == ALERTER and not node.params.get("membership_var"):
        peer = node.params.get("peer")
        if peer in down:
            pending.add(str(peer))
            return None
        return node
    if node.kind == EXISTING:
        provider = node.params.get("provider_peer") or node.params.get("peer")
        if provider in down:
            pending.add(str(provider))
            return None
        return node
    survivors = [_prune(child, down, pending) for child in node.children]
    if node.kind == UNION:
        node.children = [child for child in survivors if child is not None]
        return node if node.children else None
    if any(child is None for child in survivors):
        return None
    node.children = [child for child in survivors if child is not None]
    return node


# --------------------------------------------------------------------------- #
# Recovery events
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery decision, delivered to ``on_recovery`` listeners."""

    sub_id: str
    manager_peer: str
    #: what prompted it: a peer ``failure`` or a pending-source ``revival``
    trigger: str
    #: the peer that failed / revived
    peer_id: str
    #: ``recovering`` (redeployment starting), ``deployed`` (full coverage),
    #: ``degraded`` (some sources pruned), ``waiting`` (nothing deployable
    #: until a source revives), ``abandoned`` (the subscription's own
    #: manager peer failed), or ``intact`` (the manager came back and its
    #: untouched deployment needed no redeploy)
    outcome: str
    #: failed source peers whose revival will trigger another redeployment
    pending_sources: tuple[str, ...] = ()


RecoveryListener = Callable[[RecoveryEvent], None]


# --------------------------------------------------------------------------- #
# The recovery manager
# --------------------------------------------------------------------------- #


class RecoveryManager:
    """System-wide failure detector and redeployment driver."""

    def __init__(self, system: "P2PMSystem") -> None:
        self.system = system
        self.events: list[RecoveryEvent] = []
        self._listeners: list[RecoveryListener] = []
        #: sub_id -> failed source peers whose revival restores full coverage
        self.pending_sources: dict[str, set[str]] = {}
        self.recoveries = 0
        #: listener callbacks that raised (isolated, not propagated)
        self.listener_errors = 0

    def subscribe(self, listener: RecoveryListener) -> Callable[[], None]:
        """Register a callback invoked on every recovery event; returns an
        unsubscriber."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    # -- failure analysis -------------------------------------------------------

    def orphaned_resources(self, peer_id: str) -> list[object]:
        """Ledger entries stranded by ``peer_id``'s failure.

        Streams are keyed ``(peer, stream_id)`` and channel subscriptions
        ``("proxy", consumer, producer, stream_id)``; an entry is orphaned
        when the failed peer hosts the resource or carries its transport.
        """
        orphans: list[object] = []
        for key in self.system.resources.keys():
            if not isinstance(key, tuple):
                continue
            if len(key) == 2 and key[0] == peer_id:
                orphans.append(key)
            elif len(key) == 4 and key[0] == "proxy" and peer_id in (key[1], key[2]):
                orphans.append(key)
        return orphans

    def affected_subscriptions(self, peer_id: str) -> list[str]:
        """Subscriptions holding (directly or transitively) orphaned resources.

        Walks holder chains upward through the ResourceLedger: a stream's
        holders are downstream streams, channel subscriptions or
        subscription terminals (``sub:<id>``); following them from every
        orphaned key reaches exactly the subscriptions that span the failed
        peer.
        """
        ledger = self.system.resources
        frontier: list[object] = self.orphaned_resources(peer_id)
        visited: set[object] = set(frontier)
        subscriptions: set[str] = set()
        while frontier:
            key = frontier.pop()
            for holder in ledger.holders(key):
                if holder.startswith("sub:"):
                    subscriptions.add(holder[len("sub:"):])
                    continue
                next_key = _holder_to_key(holder)
                if next_key is not None and next_key not in visited:
                    visited.add(next_key)
                    frontier.append(next_key)
        return sorted(subscriptions)

    # -- lifecycle hooks --------------------------------------------------------

    def handle_peer_failure(self, peer_id: str) -> list[RecoveryEvent]:
        """React to a peer failure: recover every subscription spanning it."""
        produced: list[RecoveryEvent] = []
        for sub_id in self.affected_subscriptions(peer_id):
            located = self._locate(sub_id)
            if located is None:
                continue
            manager, record = located
            if record.status not in (DEPLOYED, PAUSED, RECOVERING):
                continue
            produced.append(self._recover(manager, record, "failure", peer_id))
        return produced

    def handle_peer_revival(self, peer_id: str) -> list[RecoveryEvent]:
        """React to a revival: restore coverage for subscriptions waiting on it."""
        produced: list[RecoveryEvent] = []
        for sub_id in sorted(self.pending_sources):
            if peer_id not in self.pending_sources.get(sub_id, set()):
                continue
            located = self._locate(sub_id)
            if located is None or located[1].status == CANCELLED:
                self.pending_sources.pop(sub_id, None)
                continue
            manager, record = located
            produced.append(self._recover(manager, record, "revival", peer_id))
        return produced

    # -- internals --------------------------------------------------------------

    def _locate(
        self, sub_id: str
    ) -> tuple["SubscriptionManager", Subscription] | None:
        for peer_id in self.system.peer_ids:
            manager = self.system.peer(peer_id).manager
            if sub_id in manager.database:
                return manager, manager.database.get(sub_id)
        return None

    def _recover(
        self,
        manager: "SubscriptionManager",
        record: Subscription,
        trigger: str,
        peer_id: str,
    ) -> RecoveryEvent:
        sub_id = record.sub_id
        manager_peer = manager.peer.peer_id
        # act on what the system *believes*: in detector mode this is the
        # confirmed set (ground truth lagged by the detection latency), so
        # recovery never consults the oracle it is meant to replace
        down = self.system.believed_down()
        if manager_peer in down:
            # the Subscription Manager itself is dead: nothing can be
            # redriven from it (its control messages would be dropped).
            # Remember it as a pending source, so its own revival re-drives
            # the subscription.
            pending = self.pending_sources.setdefault(sub_id, set())
            pending.add(manager_peer)
            return self._emit(
                sub_id, manager_peer, trigger, peer_id, "abandoned", tuple(sorted(pending))
            )
        if (
            trigger == "revival"
            and peer_id == manager_peer
            and record.task is not None
            and record.status in (DEPLOYED, PAUSED)
            and not (
                self.system.believed_down() & set(record.task.peers_involved())
            )
        ):
            # the manager was believed dead ("abandoned") while its deployment
            # ran on untouched -- nothing was torn down or pruned, and no peer
            # the task spans is believed down now.  A redeploy here would only
            # churn epochs, destroying reliable-channel outboxes that still
            # hold items undelivered during the outage; clear the marker
            # instead and let retransmission finish the job.
            self.pending_sources.pop(sub_id, None)
            return self._emit(sub_id, manager_peer, trigger, peer_id, "intact")
        # a pause issued before (or during) recovery must survive any number
        # of waiting rounds, so it is persisted on the record, not a local
        was_paused = record.status == PAUSED or bool(
            record.notes.get("recovery_was_paused", False)
        )
        if record.status in (DEPLOYED, PAUSED):
            manager.database.mark(sub_id, RECOVERING)
        # redeployment is synchronous, so announce the RECOVERING state first:
        # listeners observing handle.status here see the transition
        self._emit(sub_id, manager_peer, trigger, peer_id, "recovering")
        try:
            outcome, pending_peers = manager.redeploy(sub_id, down=down)
        except Exception:  # noqa: BLE001 - recovery must never crash the system
            outcome, pending_peers = "waiting", tuple(sorted(down))
        if outcome == "waiting":
            self.pending_sources[sub_id] = set(pending_peers)
            record.notes["recovery_was_paused"] = was_paused
        else:
            if pending_peers:
                self.pending_sources[sub_id] = set(pending_peers)
            else:
                self.pending_sources.pop(sub_id, None)
            record.notes.pop("recovery_was_paused", None)
            manager.database.mark(sub_id, DEPLOYED)
            if was_paused:
                manager.database.mark(sub_id, PAUSED)
                if record.task is not None and record.task.valve is not None:
                    record.task.valve.pause()
            self.recoveries += 1
        return self._emit(
            sub_id, manager_peer, trigger, peer_id, outcome, tuple(pending_peers)
        )

    def _emit(
        self,
        sub_id: str,
        manager_peer: str,
        trigger: str,
        peer_id: str,
        outcome: str,
        pending: tuple[str, ...] = (),
    ) -> RecoveryEvent:
        event = RecoveryEvent(sub_id, manager_peer, trigger, peer_id, outcome, pending)
        self.events.append(event)
        for listener in list(self._listeners):
            try:
                listener(event)
            except Exception:  # noqa: BLE001 - one bad listener must not
                # starve the others (or abort the recovery that emitted this)
                self.listener_errors += 1
        return event


def _holder_to_key(holder: str) -> object | None:
    """Map a ledger holder string back to the ledger key it stands for."""
    if holder.startswith("stream:"):
        rest = holder[len("stream:"):]
        if "@" in rest:
            stream_id, peer_id = rest.rsplit("@", 1)
            return (peer_id, stream_id)
        return None
    if holder.startswith("proxy:"):
        parts = holder[len("proxy:"):].split(":", 2)
        if len(parts) == 3:
            consumer, producer, stream_id = parts
            return ("proxy", consumer, producer, stream_id)
        return None
    return None
