"""Subscriptions and the per-peer Subscription Database.

"A peer keeps the information about all subscriptions under his
responsibility in a database named Subscription Database." (Section 3.1)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.plan import PlanNode
from repro.p2pml.ast import SubscriptionAST

#: Lifecycle states of a subscription.
PENDING = "pending"
DEPLOYED = "deployed"
CANCELLED = "cancelled"


@dataclass
class Subscription:
    """One monitoring subscription managed by a peer."""

    sub_id: str
    text: str | None
    ast: SubscriptionAST
    plan: PlanNode | None = None
    status: str = PENDING
    manager_peer: str | None = None
    notes: dict[str, object] = field(default_factory=dict)


class SubscriptionDatabase:
    """All subscriptions a Subscription Manager is responsible for."""

    def __init__(self) -> None:
        self._subscriptions: dict[str, Subscription] = {}
        self._counter = 0

    def new_id(self, prefix: str = "sub") -> str:
        self._counter += 1
        return f"{prefix}-{self._counter}"

    def add(self, subscription: Subscription) -> None:
        if subscription.sub_id in self._subscriptions:
            raise ValueError(f"subscription {subscription.sub_id!r} already registered")
        self._subscriptions[subscription.sub_id] = subscription

    def get(self, sub_id: str) -> Subscription:
        return self._subscriptions[sub_id]

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._subscriptions

    def __len__(self) -> int:
        return len(self._subscriptions)

    @property
    def subscription_ids(self) -> list[str]:
        return sorted(self._subscriptions)

    def with_status(self, status: str) -> list[Subscription]:
        return [sub for sub in self._subscriptions.values() if sub.status == status]

    def mark(self, sub_id: str, status: str) -> None:
        self._subscriptions[sub_id].status = status
