"""Subscriptions and the per-peer Subscription Database.

"A peer keeps the information about all subscriptions under his
responsibility in a database named Subscription Database." (Section 3.1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.algebra.plan import PlanNode
from repro.p2pml.ast import SubscriptionAST

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.deployment import DeployedTask

#: Lifecycle states of a subscription.
PENDING = "pending"
DEPLOYED = "deployed"
PAUSED = "paused"
RECOVERING = "recovering"
CANCELLED = "cancelled"

#: Legal status transitions driven by the lifecycle verbs.  ``RECOVERING``
#: is entered when a peer the subscription spans fails; the recovery layer
#: drives it back to ``DEPLOYED`` (or ``PAUSED``) once the plan has been
#: redeployed on surviving peers.
TRANSITIONS: dict[str, set[str]] = {
    PENDING: {DEPLOYED, CANCELLED},
    DEPLOYED: {PAUSED, RECOVERING, CANCELLED},
    PAUSED: {DEPLOYED, RECOVERING, CANCELLED},
    RECOVERING: {DEPLOYED, PAUSED, CANCELLED},
    CANCELLED: set(),
}


class SubscriptionStateError(RuntimeError):
    """Raised on an illegal lifecycle transition (e.g. resuming a cancelled task)."""


@dataclass
class Subscription:
    """One monitoring subscription managed by a peer."""

    sub_id: str
    text: str | None
    ast: SubscriptionAST
    plan: PlanNode | None = None
    status: str = PENDING
    manager_peer: str | None = None
    task: "DeployedTask | None" = None
    notes: dict[str, object] = field(default_factory=dict)


class SubscriptionDatabase:
    """All subscriptions a Subscription Manager is responsible for."""

    def __init__(self) -> None:
        self._subscriptions: dict[str, Subscription] = {}
        self._counter = 0

    def new_id(self, prefix: str = "sub") -> str:
        self._counter += 1
        return f"{prefix}-{self._counter}"

    def add(self, subscription: Subscription) -> None:
        if subscription.sub_id in self._subscriptions:
            raise ValueError(f"subscription {subscription.sub_id!r} already registered")
        self._subscriptions[subscription.sub_id] = subscription

    def get(self, sub_id: str) -> Subscription:
        return self._subscriptions[sub_id]

    def remove(self, sub_id: str) -> bool:
        """Drop a record entirely (failed deployments); False when unknown."""
        return self._subscriptions.pop(sub_id, None) is not None

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._subscriptions

    def __len__(self) -> int:
        return len(self._subscriptions)

    @property
    def subscription_ids(self) -> list[str]:
        return sorted(self._subscriptions)

    def with_status(self, status: str) -> list[Subscription]:
        return [sub for sub in self._subscriptions.values() if sub.status == status]

    def mark(self, sub_id: str, status: str) -> None:
        """Drive a status transition, validating it against :data:`TRANSITIONS`."""
        record = self._subscriptions[sub_id]
        if status == record.status:
            return
        if status not in TRANSITIONS.get(record.status, set()):
            raise SubscriptionStateError(
                f"subscription {sub_id!r} cannot go from {record.status!r} to {status!r}"
            )
        record.status = status
