"""The Stream Definition Database (Section 5), backed by the KadoP index.

Every stream produced in the system is described by an XML document::

    <Stream PeerId="..." StreamId="..." isAChannel="...">
      <Operator>...</Operator><Operands>...</Operands>
      <Stats>...</Stats>
    </Stream>

Replicas (peers re-publishing a channel they subscribe to) are described by
``<InChannel>`` documents.  Descriptions are always expressed over the
*original* streams, never over replicas, which is what makes the Reuse
algorithm a sequence of simple tree-pattern queries.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.algebra.plan import (
    ALERTER,
    DISTINCT,
    EXISTING,
    FILTER,
    GROUP,
    JOIN,
    PUBLISH,
    RESTRUCTURE,
    UNION,
    PlanNode,
    plan_signature,
)
from repro.dht.kadop import KadopIndex
from repro.xmlmodel.tree import Element

#: Operator element names used in stream descriptions, by plan-node kind.
OPERATOR_NAMES = {
    ALERTER: None,  # the alerter kind itself is used (inCOM, outCOM, rss, ...)
    FILTER: "Filter",
    UNION: "Union",
    JOIN: "Join",
    RESTRUCTURE: "Restructure",
    DISTINCT: "DuplicateRemoval",
    GROUP: "Group",
    PUBLISH: "Publisher",
    EXISTING: None,
}


def operator_spec(node: PlanNode) -> str:
    """A short, stable fingerprint of a node's own parameters.

    Two nodes with the same kind, the same spec and operand-equal children
    compute the same stream; the spec is stored on the operator element so
    that reuse queries can require it.
    """
    signature = plan_signature(PlanNode(node.kind, dict(node.params), []))
    return hashlib.sha1(signature.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class StreamDescription:
    """Decoded view of one ``<Stream>`` document."""

    peer_id: str
    stream_id: str
    is_channel: bool
    operator: str
    spec: str
    operands: tuple[tuple[str, str], ...]

    @property
    def qualified_id(self) -> str:
        return f"{self.stream_id}@{self.peer_id}"


class StreamDefinitionDatabase:
    """Publish and query stream descriptions over the DHT-backed index."""

    def __init__(self, index: KadopIndex | None = None) -> None:
        self.index = index if index is not None else KadopIndex()
        self.streams_published = 0
        self.replicas_published = 0
        self.descriptions_retracted = 0

    # -- publication ---------------------------------------------------------------

    def describe_node(
        self,
        node: PlanNode,
        peer_id: str,
        stream_id: str,
        operand_streams: list[tuple[str, str]],
        is_channel: bool = True,
        avg_volume: float = 0.0,
    ) -> Element:
        """Build the ``<Stream>`` description of a deployed plan node."""
        operator_name = OPERATOR_NAMES.get(node.kind)
        if node.kind == ALERTER:
            operator_name = node.params.get("alerter", "alerter")
        if operator_name is None:
            raise ValueError(f"plan node of kind {node.kind!r} does not produce a stream")
        operator = Element("Operator", children=[
            Element(operator_name, {"spec": operator_spec(node)})
        ])
        operands = Element("Operands", children=[
            Element("Operand", {"OPeerId": op_peer, "OStreamId": op_stream})
            for op_peer, op_stream in operand_streams
        ])
        stats = Element("Stats", {"avgVolume": f"{avg_volume:.1f}"})
        return Element(
            "Stream",
            {
                "PeerId": peer_id,
                "StreamId": stream_id,
                "isAChannel": "true" if is_channel else "false",
            },
            [operator, operands, stats],
        )

    def publish_stream(self, description: Element) -> str:
        """Store a ``<Stream>`` description; returns its document id."""
        if description.tag != "Stream":
            raise ValueError("expected a <Stream> description")
        self.streams_published += 1
        doc_id = f"stream:{description.attrib['StreamId']}@{description.attrib['PeerId']}"
        self.index.publish(description, doc_id)
        return doc_id

    def publish_node(
        self,
        node: PlanNode,
        peer_id: str,
        stream_id: str,
        operand_streams: list[tuple[str, str]],
        is_channel: bool = True,
    ) -> str:
        """Describe and publish a deployed node's output stream."""
        description = self.describe_node(node, peer_id, stream_id, operand_streams, is_channel)
        return self.publish_stream(description)

    def publish_replica(
        self, peer_id: str, stream_id: str, replica_peer_id: str, replica_stream_id: str
    ) -> str:
        """Declare that ``replica_peer_id`` can also provide ``stream_id@peer_id``."""
        self.replicas_published += 1
        description = Element(
            "InChannel",
            {
                "PeerId": peer_id,
                "StreamId": stream_id,
                "ReplicaPeerId": replica_peer_id,
                "ReplicaStreamId": replica_stream_id,
            },
        )
        doc_id = f"replica:{replica_stream_id}@{replica_peer_id}"
        self.index.publish(description, doc_id)
        return doc_id

    # -- retraction ---------------------------------------------------------------

    def retract(self, doc_id: str) -> bool:
        """Withdraw a published description (stream or replica) by document id.

        Cancellation uses this so that the Reuse algorithm stops matching
        streams that are no longer produced.  Returns False when unknown.
        """
        removed = self.index.unpublish(doc_id)
        if removed:
            self.descriptions_retracted += 1
        return removed

    # -- queries (the ones of Section 5) -------------------------------------------------

    def find_alerter_streams(self, peer_id: str, alerter_kind: str) -> list[StreamDescription]:
        """``/Stream[@PeerId = $p1][Operator/inCom]`` and friends."""
        query = f"/Stream[@PeerId = '{peer_id}'][Operator/{alerter_kind}]"
        return [self._decode(doc) for _, doc in self.index.query(query)]

    def find_operator_streams(
        self,
        operator: str,
        spec: str | None,
        operands: list[tuple[str, str]],
    ) -> list[StreamDescription]:
        """Find streams computing ``operator`` over exactly the given operands."""
        spec_predicate = f"[@spec = '{spec}']" if spec else ""
        predicates = "".join(
            f"[Operands/Operand[@OPeerId='{peer}'][@OStreamId='{stream}']]"
            for peer, stream in operands
        )
        query = f"/Stream[Operator/{operator}{spec_predicate}]{predicates}"
        candidates = [self._decode(doc) for _, doc in self.index.query(query)]
        # exact operand-set match: the query guarantees inclusion, not equality
        wanted = sorted(operands)
        return [c for c in candidates if sorted(c.operands) == wanted]

    def find_replicas(self, peer_id: str, stream_id: str) -> list[tuple[str, str]]:
        """Replica providers of ``stream_id@peer_id`` as (peer, stream) pairs."""
        query = f"/InChannel[@PeerId = '{peer_id}'][@StreamId = '{stream_id}']"
        return [
            (doc.attrib["ReplicaPeerId"], doc.attrib["ReplicaStreamId"])
            for _, doc in self.index.query(query)
        ]

    def all_stream_descriptions(self) -> list[StreamDescription]:
        return [self._decode(doc) for _, doc in self.index.query("/Stream")]

    # -- decoding -----------------------------------------------------------------------------

    @staticmethod
    def _decode(document: Element) -> StreamDescription:
        operator_element = document.find("Operator")
        operator_child = operator_element.children[0] if operator_element and operator_element.children else None
        operands_element = document.find("Operands")
        operands = tuple(
            (operand.attrib["OPeerId"], operand.attrib["OStreamId"])
            for operand in (operands_element.children if operands_element else [])
        )
        return StreamDescription(
            peer_id=document.attrib["PeerId"],
            stream_id=document.attrib["StreamId"],
            is_channel=document.attrib.get("isAChannel") == "true",
            operator=operator_child.tag if operator_child is not None else "",
            spec=operator_child.attrib.get("spec", "") if operator_child is not None else "",
            operands=operands,
        )
