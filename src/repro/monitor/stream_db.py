"""The Stream Definition Database (Section 5), backed by the KadoP index.

Every stream produced in the system is described by an XML document::

    <Stream PeerId="..." StreamId="..." isAChannel="...">
      <Operator>...</Operator><Operands>...</Operands>
      <Stats>...</Stats>
    </Stream>

Replicas (peers re-publishing a channel they subscribe to) are described by
``<InChannel>`` documents.  Descriptions are always expressed over the
*original* streams, never over replicas, which is what makes the Reuse
algorithm a sequence of simple tree-pattern queries.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.algebra.plan import (
    ALERTER,
    DISTINCT,
    EXISTING,
    FILTER,
    GROUP,
    JOIN,
    PUBLISH,
    RESTRUCTURE,
    UNION,
    PlanNode,
    signature_detail,
)
from repro.dht.kadop import KadopIndex
from repro.xmlmodel.tree import Element

#: Operator element names used in stream descriptions, by plan-node kind.
OPERATOR_NAMES = {
    ALERTER: None,  # the alerter kind itself is used (inCOM, outCOM, rss, ...)
    FILTER: "Filter",
    UNION: "Union",
    JOIN: "Join",
    RESTRUCTURE: "Restructure",
    DISTINCT: "DuplicateRemoval",
    GROUP: "Group",
    PUBLISH: "Publisher",
    EXISTING: None,
}


def operator_spec(node: PlanNode) -> str:
    """A short, stable fingerprint of a node's own parameters.

    Two nodes with the same kind, the same spec and operand-equal children
    compute the same stream; the spec is stored on the operator element so
    that reuse queries can require it.  The spec is memoised per node (and
    carried by ``PlanNode.copy``): the reuse pass computes it for every
    probed node, and ``params`` never mutates after construction.
    """
    spec = node._spec
    if spec is None:
        signature = f"{node.kind}[{signature_detail(node)}]()"
        spec = hashlib.sha1(signature.encode("utf-8")).hexdigest()[:12]
        node._spec = spec
    return spec


@dataclass(frozen=True, slots=True)
class StreamDescription:
    """Decoded view of one ``<Stream>`` document."""

    peer_id: str
    stream_id: str
    is_channel: bool
    operator: str
    spec: str
    operands: tuple[tuple[str, str], ...]

    @property
    def qualified_id(self) -> str:
        return f"{self.stream_id}@{self.peer_id}"


class StreamDefinitionDatabase:
    """Publish and query stream descriptions over the DHT-backed index.

    The XPath queries of Section 5 stay available (``find_*_oracle``), but
    the default lookup path is a set of in-memory secondary indexes over the
    document store -- (operator, operand-set), (peer, alerter kind) and the
    replica map -- kept coherent through the index's document-event stream,
    so a reuse probe costs a dict lookup instead of a posting-list
    intersection plus per-candidate XML decoding.  The indexes observe the
    *index*, not this facade: descriptions published directly into KadoP (or
    restored after a peer failure) are picked up all the same.
    """

    def __init__(self, index: KadopIndex | None = None, use_index: bool = True) -> None:
        self.index = index if index is not None else KadopIndex()
        self.use_index = use_index
        #: optional control-plane router (reliable mode): publications and
        #: retractions travel as RPCs to the document's DHT home peer instead
        #: of mutating the index in place -- must expose
        #: ``publish_document(description, doc_id)`` and
        #: ``retract_document(doc_id) -> bool``
        self.router = None
        self.streams_published = 0
        self.replicas_published = 0
        self.descriptions_retracted = 0
        #: decoded ``<Stream>`` documents by doc id (the decode cache)
        self._descriptions: dict[str, StreamDescription] = {}
        #: (operator name, sorted operand pairs) -> doc ids
        self._by_operator: dict[tuple[str, tuple[tuple[str, str], ...]], set[str]] = {}
        #: (peer id, operator/alerter element name) -> doc ids
        self._by_alerter: dict[tuple[str, str], set[str]] = {}
        #: (original peer, original stream) -> {doc id: (replica peer, replica stream)}
        self._replica_map: dict[tuple[str, str], dict[str, tuple[str, str]]] = {}
        #: replica doc id -> its original (peer, stream) key, so a replica can
        #: be deindexed even when its document has since been overwritten
        self._replica_keys: dict[str, tuple[str, str]] = {}
        #: bumped whenever a description that can influence reuse *matching*
        #: changes: any ``<Stream>`` except Publisher outputs (a PUBLISH node
        #: is never matched) and excluding ``<InChannel>`` replicas (they only
        #: affect provider choice, which is re-ranked on every probe).  The
        #: reuse signature cache keys its entries on this counter.
        self.reuse_version = 0
        for doc_id in self.index.document_ids:
            document = self.index.document(doc_id)
            if document is not None:
                self._index_document(doc_id, document)
        self.index.subscribe_documents(self._on_document_event)

    # -- publication ---------------------------------------------------------------

    def describe_node(
        self,
        node: PlanNode,
        peer_id: str,
        stream_id: str,
        operand_streams: list[tuple[str, str]],
        is_channel: bool = True,
        avg_volume: float = 0.0,
    ) -> Element:
        """Build the ``<Stream>`` description of a deployed plan node."""
        operator_name = OPERATOR_NAMES.get(node.kind)
        if node.kind == ALERTER:
            operator_name = node.params.get("alerter", "alerter")
        if operator_name is None:
            raise ValueError(f"plan node of kind {node.kind!r} does not produce a stream")
        operator = Element("Operator", children=[
            Element(operator_name, {"spec": operator_spec(node)})
        ])
        operands = Element("Operands", children=[
            Element("Operand", {"OPeerId": op_peer, "OStreamId": op_stream})
            for op_peer, op_stream in operand_streams
        ])
        stats = Element("Stats", {"avgVolume": f"{avg_volume:.1f}"})
        return Element(
            "Stream",
            {
                "PeerId": peer_id,
                "StreamId": stream_id,
                "isAChannel": "true" if is_channel else "false",
            },
            [operator, operands, stats],
        )

    def publish_stream(self, description: Element) -> str:
        """Store a ``<Stream>`` description; returns its document id."""
        if description.tag != "Stream":
            raise ValueError("expected a <Stream> description")
        self.streams_published += 1
        doc_id = f"stream:{description.attrib['StreamId']}@{description.attrib['PeerId']}"
        if self.router is not None:
            self.router.publish_document(description, doc_id)
        else:
            self.index.publish(description, doc_id)
        return doc_id

    def publish_node(
        self,
        node: PlanNode,
        peer_id: str,
        stream_id: str,
        operand_streams: list[tuple[str, str]],
        is_channel: bool = True,
    ) -> str:
        """Describe and publish a deployed node's output stream."""
        description = self.describe_node(node, peer_id, stream_id, operand_streams, is_channel)
        return self.publish_stream(description)

    def publish_replica(
        self, peer_id: str, stream_id: str, replica_peer_id: str, replica_stream_id: str
    ) -> str:
        """Declare that ``replica_peer_id`` can also provide ``stream_id@peer_id``."""
        self.replicas_published += 1
        description = Element(
            "InChannel",
            {
                "PeerId": peer_id,
                "StreamId": stream_id,
                "ReplicaPeerId": replica_peer_id,
                "ReplicaStreamId": replica_stream_id,
            },
        )
        doc_id = f"replica:{replica_stream_id}@{replica_peer_id}"
        if self.router is not None:
            self.router.publish_document(description, doc_id)
        else:
            self.index.publish(description, doc_id)
        return doc_id

    # -- retraction ---------------------------------------------------------------

    def retract(self, doc_id: str) -> bool:
        """Withdraw a published description (stream or replica) by document id.

        Cancellation uses this so that the Reuse algorithm stops matching
        streams that are no longer produced.  Returns False when unknown.
        """
        if self.router is not None:
            removed = self.router.retract_document(doc_id)
        else:
            removed = self.index.unpublish(doc_id)
        if removed:
            self.descriptions_retracted += 1
        return removed

    # -- queries (the ones of Section 5) -------------------------------------------------

    def find_alerter_streams(self, peer_id: str, alerter_kind: str) -> list[StreamDescription]:
        """``/Stream[@PeerId = $p1][Operator/inCom]`` and friends."""
        if not self.use_index:
            return self.find_alerter_streams_oracle(peer_id, alerter_kind)
        doc_ids = self._by_alerter.get((peer_id, alerter_kind), ())
        return [self._descriptions[doc_id] for doc_id in sorted(doc_ids)]

    def find_operator_streams(
        self,
        operator: str,
        spec: str | None,
        operands: list[tuple[str, str]],
    ) -> list[StreamDescription]:
        """Find streams computing ``operator`` over exactly the given operands."""
        if not self.use_index:
            return self.find_operator_streams_oracle(operator, spec, operands)
        doc_ids = self._by_operator.get((operator, tuple(sorted(operands))), ())
        found = [self._descriptions[doc_id] for doc_id in sorted(doc_ids)]
        if spec:
            found = [description for description in found if description.spec == spec]
        return found

    def find_replicas(self, peer_id: str, stream_id: str) -> list[tuple[str, str]]:
        """Replica providers of ``stream_id@peer_id`` as (peer, stream) pairs."""
        if not self.use_index:
            return self.find_replicas_oracle(peer_id, stream_id)
        providers = self._replica_map.get((peer_id, stream_id), {})
        return [providers[doc_id] for doc_id in sorted(providers)]

    def all_stream_descriptions(self) -> list[StreamDescription]:
        if not self.use_index:
            return [self._decode(doc) for _, doc in self.index.query("/Stream")]
        return [self._descriptions[doc_id] for doc_id in sorted(self._descriptions)]

    # -- the XPath query path, retained as the differential oracle ----------------------

    def find_alerter_streams_oracle(
        self, peer_id: str, alerter_kind: str
    ) -> list[StreamDescription]:
        query = f"/Stream[@PeerId = '{peer_id}'][Operator/{alerter_kind}]"
        return [self._decode(doc) for _, doc in self.index.query(query)]

    def find_operator_streams_oracle(
        self,
        operator: str,
        spec: str | None,
        operands: list[tuple[str, str]],
    ) -> list[StreamDescription]:
        spec_predicate = f"[@spec = '{spec}']" if spec else ""
        predicates = "".join(
            f"[Operands/Operand[@OPeerId='{peer}'][@OStreamId='{stream}']]"
            for peer, stream in operands
        )
        query = f"/Stream[Operator/{operator}{spec_predicate}]{predicates}"
        candidates = [self._decode(doc) for _, doc in self.index.query(query)]
        # exact operand-set match: the query guarantees inclusion, not equality
        wanted = sorted(operands)
        return [c for c in candidates if sorted(c.operands) == wanted]

    def find_replicas_oracle(self, peer_id: str, stream_id: str) -> list[tuple[str, str]]:
        query = f"/InChannel[@PeerId = '{peer_id}'][@StreamId = '{stream_id}']"
        return [
            (doc.attrib["ReplicaPeerId"], doc.attrib["ReplicaStreamId"])
            for _, doc in self.index.query(query)
        ]

    def verify_index_coherence(self) -> list[str]:
        """Compare every secondary index against the document store.

        Rebuilds what the indexes *should* contain from the raw ``<Stream>``
        and ``<InChannel>`` documents (the XPath oracle's ground truth) and
        returns a list of human-readable discrepancies -- empty when the
        indexes are coherent.  Exercised by the differential tests and the
        nightly chaos soak after publish/retract/failure churn.
        """
        problems: list[str] = []
        descriptions: dict[str, StreamDescription] = {}
        by_operator: dict[tuple[str, tuple[tuple[str, str], ...]], set[str]] = {}
        by_alerter: dict[tuple[str, str], set[str]] = {}
        replica_map: dict[tuple[str, str], dict[str, tuple[str, str]]] = {}
        for doc_id in self.index.document_ids:
            document = self.index.document(doc_id)
            if document is None:
                continue
            if document.tag == "Stream":
                description = self._decode(document)
                descriptions[doc_id] = description
                by_operator.setdefault(
                    (description.operator, tuple(sorted(description.operands))), set()
                ).add(doc_id)
                by_alerter.setdefault(
                    (description.peer_id, description.operator), set()
                ).add(doc_id)
            elif document.tag == "InChannel":
                original = (document.attrib["PeerId"], document.attrib["StreamId"])
                replica_map.setdefault(original, {})[doc_id] = (
                    document.attrib["ReplicaPeerId"],
                    document.attrib["ReplicaStreamId"],
                )
        for name, expected, actual in (
            ("descriptions", descriptions, self._descriptions),
            ("by_operator", by_operator, self._by_operator),
            ("by_alerter", by_alerter, self._by_alerter),
            ("replica_map", replica_map, self._replica_map),
        ):
            if expected != actual:
                missing = expected.keys() - actual.keys()
                extra = actual.keys() - expected.keys()
                differing = sorted(
                    key
                    for key in expected.keys() & actual.keys()
                    if expected[key] != actual[key]  # type: ignore[index]
                )[:5]
                problems.append(
                    f"{name}: {len(missing)} missing, {len(extra)} stale, "
                    f"first differing keys {differing}"
                )
        return problems

    # -- secondary-index maintenance ----------------------------------------------------

    def _on_document_event(self, kind: str, doc_id: str, document: Element) -> None:
        if kind == "publish":
            self._index_document(doc_id, document)
        elif kind == "unpublish":
            self._deindex_document(doc_id)

    def _index_document(self, doc_id: str, document: Element) -> None:
        # doc ids are deterministic and KadoP overwrites silently: drop any
        # earlier filing first, or a republished description would linger
        # under its old operator/alerter/replica keys
        self._deindex_document(doc_id)
        if document.tag == "Stream":
            description = self._decode(document)
            self._descriptions[doc_id] = description
            operator_key = (description.operator, tuple(sorted(description.operands)))
            self._by_operator.setdefault(operator_key, set()).add(doc_id)
            self._by_alerter.setdefault(
                (description.peer_id, description.operator), set()
            ).add(doc_id)
            if description.operator != OPERATOR_NAMES[PUBLISH]:
                self.reuse_version += 1
        elif document.tag == "InChannel":
            original = (document.attrib["PeerId"], document.attrib["StreamId"])
            self._replica_map.setdefault(original, {})[doc_id] = (
                document.attrib["ReplicaPeerId"],
                document.attrib["ReplicaStreamId"],
            )
            self._replica_keys[doc_id] = original

    def _deindex_document(self, doc_id: str) -> None:
        description = self._descriptions.pop(doc_id, None)
        if description is not None:
            operator_key = (description.operator, tuple(sorted(description.operands)))
            bucket = self._by_operator.get(operator_key)
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    del self._by_operator[operator_key]
            alerter_key = (description.peer_id, description.operator)
            bucket = self._by_alerter.get(alerter_key)
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    del self._by_alerter[alerter_key]
            if description.operator != OPERATOR_NAMES[PUBLISH]:
                self.reuse_version += 1
            return
        original = self._replica_keys.pop(doc_id, None)
        if original is not None:
            providers = self._replica_map.get(original)
            if providers is not None:
                providers.pop(doc_id, None)
                if not providers:
                    del self._replica_map[original]

    # -- decoding -----------------------------------------------------------------------------

    @staticmethod
    def _decode(document: Element) -> StreamDescription:
        operator_element = document.find("Operator")
        operator_child = operator_element.children[0] if operator_element and operator_element.children else None
        operands_element = document.find("Operands")
        operands = tuple(
            (operand.attrib["OPeerId"], operand.attrib["OStreamId"])
            for operand in (operands_element.children if operands_element else [])
        )
        return StreamDescription(
            peer_id=document.attrib["PeerId"],
            stream_id=document.attrib["StreamId"],
            is_channel=document.attrib.get("isAChannel") == "true",
            operator=operator_child.tag if operator_child is not None else "",
            spec=operator_child.attrib.get("spec", "") if operator_child is not None else "",
            operands=operands,
        )
