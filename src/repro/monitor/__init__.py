"""The P2P Monitor itself: subscription management, optimisation, reuse,
placement and deployment (Sections 3 and 5).

The top-level entry points are:

* :class:`repro.monitor.P2PMSystem` -- a whole monitoring deployment: the
  simulated network, the KadoP-backed Stream Definition Database and the
  set of :class:`P2PMPeer` objects.
* :class:`repro.monitor.P2PMPeer` -- one peer: it can host alerters, stream
  processors and publishers, and runs a :class:`SubscriptionManager` that
  accepts P2PML subscriptions and deploys the corresponding distributed
  monitoring plans.
"""

from repro.monitor.subscription import (
    CANCELLED,
    DEPLOYED,
    PAUSED,
    PENDING,
    RECOVERING,
    Subscription,
    SubscriptionDatabase,
    SubscriptionStateError,
)
from repro.monitor.stream_db import StreamDefinitionDatabase, StreamDescription
from repro.monitor.lifecycle import DeliveryValve, ResourceLedger, ResultBuffer
from repro.monitor.optimizer import optimize_plan
from repro.monitor.placement import place_plan
from repro.monitor.recovery import RecoveryEvent, RecoveryManager, prune_dead_sources
from repro.monitor.reuse import ReuseEngine, ReuseReport, ReuseSignatureCache
from repro.monitor.deployment import DeployedTask, Deployer
from repro.monitor.handle import SubscriptionHandle
from repro.monitor.manager import SubmitManyError, SubscriptionManager
from repro.monitor.p2pm_peer import P2PMPeer, P2PMSystem

__all__ = [
    "Subscription",
    "SubscriptionDatabase",
    "SubscriptionStateError",
    "PENDING",
    "DEPLOYED",
    "PAUSED",
    "RECOVERING",
    "CANCELLED",
    "RecoveryEvent",
    "RecoveryManager",
    "prune_dead_sources",
    "StreamDefinitionDatabase",
    "StreamDescription",
    "DeliveryValve",
    "ResourceLedger",
    "ResultBuffer",
    "optimize_plan",
    "place_plan",
    "ReuseEngine",
    "ReuseReport",
    "ReuseSignatureCache",
    "SubmitManyError",
    "DeployedTask",
    "Deployer",
    "SubscriptionHandle",
    "SubscriptionManager",
    "P2PMPeer",
    "P2PMSystem",
]
