"""Plan optimisation: algebraic rewriting before reuse and placement.

"In a first step, the subscription manager computes an optimized plan for
the given subscription.  The optimization is performed using algebraic
rewrite rules and heuristics." (Section 3.4)

The rewrites applied here are the ones the paper relies on for the meteo
example: selections are pushed through unions and towards the join side they
refer to (so that filtering happens next to the sources), and redundant
consecutive duplicate-removal operators are collapsed.
"""

from __future__ import annotations

from repro.algebra.plan import DISTINCT, PlanNode
from repro.algebra.rewrite import push_selections_down


def optimize_plan(plan: PlanNode, push_selections: bool = True) -> PlanNode:
    """Return an optimised copy of ``plan``.

    ``push_selections`` can be disabled to obtain the unoptimised baseline
    used by the communication benchmarks (experiment E5).
    """
    optimized = plan.copy()
    if push_selections:
        optimized = push_selections_down(optimized)
    optimized = _collapse_duplicate_distinct(optimized)
    return optimized


def _collapse_duplicate_distinct(node: PlanNode) -> PlanNode:
    node.children = [_collapse_duplicate_distinct(child) for child in node.children]
    if (
        node.kind == DISTINCT
        and len(node.children) == 1
        and node.children[0].kind == DISTINCT
        and node.params.get("criterion") == node.children[0].params.get("criterion")
    ):
        return node.children[0]
    return node
