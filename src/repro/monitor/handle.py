"""The public handle on a submitted subscription.

``P2PMPeer.subscribe()`` / ``SubscriptionManager.submit()`` return a
:class:`SubscriptionHandle` instead of the raw deployment state: results are
consumed through a bounded buffer or callbacks (never an unbounded list),
and the paper's full subscription lifecycle (Section 3.1) is driven through
``pause()`` / ``resume()`` / ``cancel()``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.streams.item import is_eos
from repro.streams.stream import Stream
from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algebra.plan import PlanNode
    from repro.monitor.deployment import DeployedTask
    from repro.monitor.manager import SubscriptionManager
    from repro.monitor.subscription import Subscription
    from repro.publishers import Publisher

ResultCallback = Callable[[Element], None]


class SubscriptionHandle:
    """Everything a client may do with a running subscription.

    The handle is a thin, stateless view over the Subscription Database
    record and the deployed task; two handles for the same ``sub_id`` are
    interchangeable.
    """

    def __init__(self, manager: "SubscriptionManager", record: "Subscription") -> None:
        self._manager = manager
        self._record = record

    # -- identity & state ------------------------------------------------------

    @property
    def sub_id(self) -> str:
        return self._record.sub_id

    @property
    def status(self) -> str:
        """Current lifecycle state: pending, deployed, paused, recovering or
        cancelled.  ``recovering`` means a peer the subscription spans has
        failed and the recovery layer is redeploying (or waiting for a
        pending source peer to revive)."""
        return self._record.status

    @property
    def is_active(self) -> bool:
        """True while the subscription is deployed, paused or recovering."""
        from repro.monitor.subscription import DEPLOYED, PAUSED, RECOVERING

        return self._record.status in (DEPLOYED, PAUSED, RECOVERING)

    @property
    def is_recovering(self) -> bool:
        """True while a peer failure is being healed for this subscription."""
        from repro.monitor.subscription import RECOVERING

        return self._record.status == RECOVERING

    @property
    def task(self) -> "DeployedTask | None":
        """The deployment-side state (advanced use; prefer the handle API)."""
        return self._record.task

    # -- deployment views ------------------------------------------------------

    @property
    def plan(self) -> "PlanNode | None":
        task = self._record.task
        return task.plan if task is not None else self._record.plan

    @property
    def reuse_report(self):
        task = self._require_task()
        return task.reuse_report

    @property
    def publisher(self) -> "Publisher | None":
        return self._require_task().publisher

    @property
    def channels_created(self) -> list[str]:
        return self._require_task().channels_created

    @property
    def operator_count(self) -> int:
        return self._require_task().operator_count

    def peers_involved(self) -> list[str]:
        return self._require_task().peers_involved()

    @property
    def output_stream(self) -> Stream | None:
        """The raw plan-output stream at the manager peer (pre-valve)."""
        return self._require_task().output_stream

    @property
    def delivery_stream(self) -> Stream | None:
        """The post-valve stream results are delivered on (pauses with the task)."""
        return self._require_task().delivery

    # -- results ---------------------------------------------------------------

    def results(self) -> list[Element]:
        """Snapshot of the bounded result buffer, oldest first.

        Buffering is opt-in: submit the subscription with ``max_results=N``.
        Without it, consume results incrementally through :meth:`on_result`.
        """
        task = self._require_task()
        if task.results_buffer is None:
            raise RuntimeError(
                f"subscription {self.sub_id!r} was submitted without result "
                "buffering; pass max_results=N to subscribe()/submit() or "
                "attach a callback with on_result()"
            )
        return task.results_buffer.snapshot()

    def __iter__(self) -> Iterator[Element]:
        return iter(self.results())

    def on_result(self, callback: ResultCallback) -> Callable[[], None]:
        """Invoke ``callback`` for every delivered result; returns an unsubscriber.

        Callbacks attach to the delivery stream, after the pause/resume
        valve: a paused subscription delivers nothing until resumed.
        """
        task = self._require_task()
        if task.delivery is None:
            raise RuntimeError(f"subscription {self.sub_id!r} has no delivery stream")

        def deliver(item: object) -> None:
            if not is_eos(item):
                assert isinstance(item, Element)
                callback(item)

        return task.delivery.subscribe(deliver)

    def on_recovery(self, callback) -> Callable[[], None]:
        """Invoke ``callback(event)`` whenever this subscription is recovered.

        ``event`` is a :class:`~repro.monitor.recovery.RecoveryEvent`
        describing the trigger (peer failure or revival) and the outcome
        (``redeployed``, ``degraded``, ``waiting``).  Returns an
        unsubscriber.  ``on_result`` callbacks survive recovery: they are
        handed over to the replacement task's delivery stream.
        """
        sub_id = self.sub_id

        def filtered(event) -> None:
            if event.sub_id == sub_id:
                callback(event)

        return self._manager.peer.system.recovery.subscribe(filtered)

    # -- lifecycle -------------------------------------------------------------

    def cancel(self) -> bool:
        """Tear down everything this subscription exclusively owns.

        Operators are detached, exclusively-owned streams closed, Stream
        Definition Database advertisements retracted, and shared resources
        (reused streams, shared alerters) merely released -- they survive
        until their last subscriber cancels.  Returns False when already
        cancelled.
        """
        return self._manager.cancel(self.sub_id)

    def pause(self) -> None:
        """Stop result delivery without tearing the deployment down."""
        self._manager.pause(self.sub_id)

    def resume(self) -> None:
        """Restart delivery, flushing items retained while paused."""
        self._manager.resume(self.sub_id)

    # -- accounting ------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Counters describing the subscription's deployment and delivery.

        The ``reliability`` sub-dict surfaces the system-wide transport
        counters (RPC retries/timeouts, circuit-breaker trips, heartbeats,
        channel retransmissions/replays/sheds) plus recovery-listener
        failures -- system-wide because transport and detection are shared
        infrastructure, not per-subscription state.
        """
        task = self._require_task()
        valve = task.valve
        buffer = task.results_buffer
        system = self._manager.peer.system
        reliability: dict[str, int] = dict(
            system.network.stats.reliability_snapshot()
        )
        reliability["listener_errors"] = system.recovery.listener_errors
        return {
            "sub_id": self.sub_id,
            "status": self.status,
            "items_delivered": valve.items_delivered if valve is not None else 0,
            "items_pending": valve.pending_count if valve is not None else 0,
            "dropped_while_paused": valve.dropped_while_paused if valve is not None else 0,
            "results_buffered": len(buffer) if buffer is not None else 0,
            "results_dropped": buffer.dropped if buffer is not None else 0,
            "operators": task.operator_count,
            "peers": task.peers_involved(),
            "channels": list(task.channels_created),
            "nodes_reused": (
                task.reuse_report.nodes_reused if task.reuse_report is not None else 0
            ),
            "reliability": reliability,
            # system-wide like "reliability": the CSE table and plan cache
            # are shared across every co-deployed subscription
            "compile": system.compile_snapshot(),
        }

    # -- internals -------------------------------------------------------------

    def _require_task(self) -> "DeployedTask":
        task = self._record.task
        if task is None:
            raise RuntimeError(f"subscription {self.sub_id!r} is not deployed")
        return task

    def __repr__(self) -> str:
        return f"SubscriptionHandle({self.sub_id!r}, status={self.status!r})"
