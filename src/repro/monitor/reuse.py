"""The Reuse algorithm (Section 5): mapping plan nodes to existing streams.

"The algorithm proceeds from the 'leaves' of the monitoring plan, attempting
to map nodes in the plan to existing streams.  Operators that have all their
operands matched generate queries to the database.  The result of the
queries determines whether this operator will be mapped to an existing
stream.  For a node that is matched, the algorithm searches for possible
replicas of the streams to substitute for that node.  The nodes that have
not been matched correspond to new streams that have to be produced."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.plan import ALERTER, EXISTING, PUBLISH, PlanNode, plan_signature
from repro.monitor.stream_db import OPERATOR_NAMES, StreamDefinitionDatabase, operator_spec
from repro.net.simnet import SimNetwork


@dataclass
class ReuseReport:
    """What the reuse pass found and replaced."""

    nodes_considered: int = 0
    nodes_reused: int = 0
    reused: list[tuple[str, str, str]] = field(default_factory=list)  # (kind, stream, provider)
    queries_issued: int = 0
    #: True when the whole pass was answered from the signature cache
    cache_hit: bool = False

    @property
    def savings_ratio(self) -> float:
        if self.nodes_considered == 0:
            return 0.0
        return self.nodes_reused / self.nodes_considered


def reuse_cache_key(plan: PlanNode) -> tuple[str, str]:
    """Cache key under which a whole reuse pass may be replayed.

    ``plan_signature`` alone is deliberately coarse (it identifies plans that
    *compute the same streams*, ignoring variable names and local publication
    targets), so the key extends it with the per-node parameters that shape
    the deployed plan.  Plans whose keys are equal get identical rewrites
    from identical database states.
    """
    parts: list[str] = []
    for node in plan.iter_nodes():
        keys = [
            "var",
            "left_var",
            "right_var",
            "membership_var",
            "mode",
            "key",
            "every",
            "criterion",
        ]
        if node.params.get("mode") != "local":
            # a local-mode PUBLISH embeds the subscription id as its target,
            # but deployment ignores it: keying on it would make every
            # locally-consumed subscription's key unique for no reason
            keys += ["target", "subscriber"]
        extras = [str(node.params.get(key, "")) for key in keys]
        parts.append("\x1f".join(extras))
    return plan_signature(plan), "\x1e".join(parts)


@dataclass
class _CachedRewrite:
    """One replayable reuse outcome: the rewritten plan and what it matched."""

    version: int
    plan: PlanNode
    nodes_considered: int
    #: (original node kind, canonical (peer, stream)) per match, in visit order
    reused_originals: list[tuple[str, tuple[str, str]]]
    #: for each EXISTING node of ``plan`` in post-order: index into
    #: ``reused_originals`` of the match that produced it
    existing_indices: list[int]


class ReuseSignatureCache:
    """Interned reuse outcomes keyed by plan signature.

    Entries are valid only while the Stream Definition Database's
    ``reuse_version`` is unchanged (no reuse-relevant description published
    or retracted since); provider choices are *not* cached -- they are
    re-ranked on every hit, so replica churn and peer failures never serve a
    stale provider.
    """

    #: bound on interned rewrites: each entry holds a deep-copied plan, and a
    #: long run ingesting many distinct subscription shapes would otherwise
    #: accumulate version-stale entries without limit
    LIMIT = 1024

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], _CachedRewrite] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple[str, str], version: int) -> _CachedRewrite | None:
        entry = self._entries.get(key)
        if entry is None or entry.version != version:
            return None
        return entry

    def put(self, key: tuple[str, str], entry: _CachedRewrite) -> None:
        if len(self._entries) >= self.LIMIT and key not in self._entries:
            # drop the version-stale dead weight first; clear outright only
            # when the live entries alone exceed the bound
            stale = [k for k, e in self._entries.items() if e.version != entry.version]
            for k in stale:
                del self._entries[k]
            if len(self._entries) >= self.LIMIT:
                self._entries.clear()
        self._entries[key] = entry

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class ReuseEngine:
    """Rewrites a plan so that sub-plans already computed elsewhere are reused."""

    def __init__(
        self,
        stream_db: StreamDefinitionDatabase,
        network: SimNetwork | None = None,
        consumer_peer: str | None = None,
        signature_cache: ReuseSignatureCache | None = None,
    ) -> None:
        self.stream_db = stream_db
        self.network = network
        self.consumer_peer = consumer_peer
        self.signature_cache = signature_cache
        #: id(EXISTING node) -> index into report.reused, recorded during a
        #: visit so the signature cache can re-rank providers on replay
        self._existing_entries: dict[int, int] = {}
        #: (original node kind, canonical (peer, stream)) per match, in visit
        #: order -- the replayable part of ``report.reused``
        self._reused_originals: list[tuple[str, tuple[str, str]]] = []

    def apply(self, plan: PlanNode, in_place: bool = False) -> tuple[PlanNode, ReuseReport]:
        """Return a rewritten ``plan`` plus a report of what was reused.

        With ``in_place`` the caller donates ``plan`` (it is rewritten on the
        single copy it already owns -- the compiler hands the manager a fresh
        tree, so there is nothing to protect); otherwise a copy is rewritten
        and the input stays untouched.
        """
        report = ReuseReport()
        cache = self.signature_cache
        key = reuse_cache_key(plan) if cache is not None else None
        if cache is not None and key is not None:
            entry = cache.get(key, self.stream_db.reuse_version)
            if entry is not None:
                cache.hits += 1
                return self._replay(entry, report), report
            cache.misses += 1
        working = plan if in_place else plan.copy()
        self._existing_entries.clear()
        self._reused_originals = []
        rewritten, _ = self._visit(working, report)
        if cache is not None and key is not None:
            existing_indices = [
                self._existing_entries[id(node)]
                for node in rewritten.iter_nodes()
                if node.kind == EXISTING
            ]
            cache.put(
                key,
                _CachedRewrite(
                    version=self.stream_db.reuse_version,
                    plan=rewritten.copy(),
                    nodes_considered=report.nodes_considered,
                    reused_originals=list(self._reused_originals),
                    existing_indices=existing_indices,
                ),
            )
        self._existing_entries.clear()
        return rewritten, report

    def _replay(self, entry: _CachedRewrite, report: ReuseReport) -> PlanNode:
        """Rebuild a cached rewrite, re-ranking every provider choice."""
        rewritten = entry.plan.copy()
        report.cache_hit = True
        report.nodes_considered = entry.nodes_considered
        report.nodes_reused = len(entry.reused_originals)
        providers: list[tuple[str, str]] = []
        for kind, original in entry.reused_originals:
            provider = self._select_provider(original, report)
            providers.append(provider)
            report.reused.append((kind, f"{original[1]}@{original[0]}", provider[0]))
        existing_nodes = [
            node for node in rewritten.iter_nodes() if node.kind == EXISTING
        ]
        for node, index in zip(existing_nodes, entry.existing_indices):
            provider_peer, provider_stream = providers[index]
            # provider_* params are the one sanctioned post-construction
            # mutation: they never feed signature details or specs
            node.params["provider_peer"] = provider_peer
            node.params["provider_stream_id"] = provider_stream
            # defence in depth: copy() already drops compiled stages, but a
            # mutated node must never carry one under any future refactor
            node._stage = None
        return rewritten

    # -- bottom-up matching -----------------------------------------------------------

    def _visit(
        self, node: PlanNode, report: ReuseReport
    ) -> tuple[PlanNode, tuple[str, str] | None]:
        """Returns (rewritten node, (peer, stream) of the matching stream or None)."""
        if node.kind == PUBLISH:
            # publication is always performed anew for the new subscription
            new_children = [self._visit(child, report)[0] for child in node.children]
            node.children = new_children
            return node, None

        child_results = [self._visit(child, report) for child in node.children]
        node.children = [child for child, _ in child_results]
        child_matches = [match for _, match in child_results]
        report.nodes_considered += 1

        match = self._match_node(node, child_matches, report)
        if match is None:
            return node, None

        provider_peer, provider_stream = self._select_provider(match, report)
        report.nodes_reused += 1
        report.reused.append((node.kind, f"{match[1]}@{match[0]}", provider_peer))
        self._reused_originals.append((node.kind, match))
        existing = PlanNode(
            EXISTING,
            {
                # canonical (original) identity, used when describing derived streams
                "peer": match[0],
                "stream_id": match[1],
                # where to actually fetch the data from (a replica may be closer)
                "provider_peer": provider_peer,
                "provider_stream_id": provider_stream,
                "var": node.params.get("var"),
            },
            [],
        )
        self._existing_entries[id(existing)] = len(report.reused) - 1
        return existing, match

    def _match_node(
        self,
        node: PlanNode,
        child_matches: list[tuple[str, str] | None],
        report: ReuseReport,
    ) -> tuple[str, str] | None:
        if node.kind == EXISTING:
            return node.params["peer"], node.params["stream_id"]
        if node.kind == ALERTER:
            peer = node.params.get("peer")
            if not peer or peer == "local":
                return None
            report.queries_issued += 1
            found = self.stream_db.find_alerter_streams(peer, node.params.get("alerter", ""))
            if found:
                return found[0].peer_id, found[0].stream_id
            return None
        # an inner operator can only be reused when every operand matched
        if not child_matches or any(match is None for match in child_matches):
            return None
        operator_name = OPERATOR_NAMES.get(node.kind)
        if operator_name is None:
            return None
        report.queries_issued += 1
        found = self.stream_db.find_operator_streams(
            operator_name,
            operator_spec(node),
            [match for match in child_matches if match is not None],
        )
        if found:
            return found[0].peer_id, found[0].stream_id
        return None

    # -- replica selection ---------------------------------------------------------------

    def _select_provider(
        self, original: tuple[str, str], report: ReuseReport
    ) -> tuple[str, str]:
        """Pick the original stream or one of its replicas, preferring a close provider."""
        peer_id, stream_id = original
        if self.network is None or self.consumer_peer is None:
            # no network/consumer context to rank candidates: the original
            # stream is the answer, so don't touch the database at all
            return original
        report.queries_issued += 1
        candidates = [(peer_id, stream_id)] + self.stream_db.find_replicas(peer_id, stream_id)
        if len(candidates) == 1:
            return candidates[0]
        if len(candidates) > 2:
            # replicas of popular streams pile up on the same few peers; all
            # candidates of one peer share a distance (and liveness), and
            # ties resolve to the earliest candidate, so only the first per
            # peer can ever win the ranking below
            first_per_peer: dict[str, tuple[str, str]] = {}
            for candidate in candidates:
                first_per_peer.setdefault(candidate[0], candidate)
            candidates = list(first_per_peer.values())
        # a provider that is registered but currently failed cannot serve the
        # stream; prefer alive providers (fall back to mere registration so a
        # fully dark candidate set still resolves deterministically)
        reachable = [c for c in candidates if self.network.is_alive(c[0])]
        if not reachable:
            reachable = [c for c in candidates if self.network.has_peer(c[0])]
        if not reachable:
            return candidates[0]
        return min(
            reachable,
            key=lambda candidate: self.network.distance(self.consumer_peer, candidate[0]),
        )
