"""The Reuse algorithm (Section 5): mapping plan nodes to existing streams.

"The algorithm proceeds from the 'leaves' of the monitoring plan, attempting
to map nodes in the plan to existing streams.  Operators that have all their
operands matched generate queries to the database.  The result of the
queries determines whether this operator will be mapped to an existing
stream.  For a node that is matched, the algorithm searches for possible
replicas of the streams to substitute for that node.  The nodes that have
not been matched correspond to new streams that have to be produced."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.plan import ALERTER, EXISTING, PUBLISH, PlanNode
from repro.monitor.stream_db import OPERATOR_NAMES, StreamDefinitionDatabase, operator_spec
from repro.net.simnet import SimNetwork


@dataclass
class ReuseReport:
    """What the reuse pass found and replaced."""

    nodes_considered: int = 0
    nodes_reused: int = 0
    reused: list[tuple[str, str, str]] = field(default_factory=list)  # (kind, stream, provider)
    queries_issued: int = 0

    @property
    def savings_ratio(self) -> float:
        if self.nodes_considered == 0:
            return 0.0
        return self.nodes_reused / self.nodes_considered


class ReuseEngine:
    """Rewrites a plan so that sub-plans already computed elsewhere are reused."""

    def __init__(
        self,
        stream_db: StreamDefinitionDatabase,
        network: SimNetwork | None = None,
        consumer_peer: str | None = None,
    ) -> None:
        self.stream_db = stream_db
        self.network = network
        self.consumer_peer = consumer_peer

    def apply(self, plan: PlanNode) -> tuple[PlanNode, ReuseReport]:
        """Return a rewritten copy of ``plan`` plus a report of what was reused."""
        report = ReuseReport()
        rewritten, _ = self._visit(plan.copy(), report)
        return rewritten, report

    # -- bottom-up matching -----------------------------------------------------------

    def _visit(
        self, node: PlanNode, report: ReuseReport
    ) -> tuple[PlanNode, tuple[str, str] | None]:
        """Returns (rewritten node, (peer, stream) of the matching stream or None)."""
        if node.kind == PUBLISH:
            # publication is always performed anew for the new subscription
            new_children = [self._visit(child, report)[0] for child in node.children]
            node.children = new_children
            return node, None

        child_results = [self._visit(child, report) for child in node.children]
        node.children = [child for child, _ in child_results]
        child_matches = [match for _, match in child_results]
        report.nodes_considered += 1

        match = self._match_node(node, child_matches, report)
        if match is None:
            return node, None

        provider_peer, provider_stream = self._select_provider(match, report)
        report.nodes_reused += 1
        report.reused.append((node.kind, f"{match[1]}@{match[0]}", provider_peer))
        existing = PlanNode(
            EXISTING,
            {
                # canonical (original) identity, used when describing derived streams
                "peer": match[0],
                "stream_id": match[1],
                # where to actually fetch the data from (a replica may be closer)
                "provider_peer": provider_peer,
                "provider_stream_id": provider_stream,
                "var": node.params.get("var"),
            },
            [],
        )
        return existing, match

    def _match_node(
        self,
        node: PlanNode,
        child_matches: list[tuple[str, str] | None],
        report: ReuseReport,
    ) -> tuple[str, str] | None:
        if node.kind == EXISTING:
            return node.params["peer"], node.params["stream_id"]
        if node.kind == ALERTER:
            peer = node.params.get("peer")
            if not peer or peer == "local":
                return None
            report.queries_issued += 1
            found = self.stream_db.find_alerter_streams(peer, node.params.get("alerter", ""))
            if found:
                return found[0].peer_id, found[0].stream_id
            return None
        # an inner operator can only be reused when every operand matched
        if not child_matches or any(match is None for match in child_matches):
            return None
        operator_name = OPERATOR_NAMES.get(node.kind)
        if operator_name is None:
            return None
        report.queries_issued += 1
        found = self.stream_db.find_operator_streams(
            operator_name,
            operator_spec(node),
            [match for match in child_matches if match is not None],
        )
        if found:
            return found[0].peer_id, found[0].stream_id
        return None

    # -- replica selection ---------------------------------------------------------------

    def _select_provider(
        self, original: tuple[str, str], report: ReuseReport
    ) -> tuple[str, str]:
        """Pick the original stream or one of its replicas, preferring a close provider."""
        peer_id, stream_id = original
        report.queries_issued += 1
        candidates = [(peer_id, stream_id)] + self.stream_db.find_replicas(peer_id, stream_id)
        if len(candidates) == 1 or self.network is None or self.consumer_peer is None:
            return candidates[0]
        # a provider that is registered but currently failed cannot serve the
        # stream; prefer alive providers (fall back to mere registration so a
        # fully dark candidate set still resolves deterministically)
        reachable = [c for c in candidates if self.network.is_alive(c[0])]
        if not reachable:
            reachable = [c for c in candidates if self.network.has_peer(c[0])]
        if not reachable:
            return candidates[0]
        return min(
            reachable,
            key=lambda candidate: self.network.distance(self.consumer_peer, candidate[0]),
        )
