"""P2PM peers and the system facade tying everything together.

A :class:`P2PMPeer` corresponds to Figure 2: it runs a Subscription Manager,
may host alerters, stream processors and publishers, and exchanges streams
with other peers through channels.  A :class:`P2PMSystem` owns the simulated
network, the KadoP index and the shared Stream Definition Database, and is
the registry through which deployment finds peers.
"""

from __future__ import annotations

from typing import Callable

from repro.alerters import (
    ALERTER_KINDS,
    Alerter,
    AreRegisteredAlerter,
    AXMLRepository,
    AXMLRepositoryAlerter,
    RSSFeedAlerter,
    WebPageAlerter,
    WSAlerter,
)
from repro.dht.chord import ChordRing
from repro.dht.kadop import KadopIndex
from repro.monitor.manager import SubscriptionManager
from repro.monitor.stream_db import StreamDefinitionDatabase
from repro.net.peer import Peer
from repro.net.simnet import SimNetwork
from repro.streams.stream import Stream
from repro.xmlmodel.axml import ServiceRegistry

AlerterHook = Callable[[Alerter], None]


class P2PMSystem:
    """A whole monitoring deployment: network + peers + Stream Definition DB."""

    def __init__(self, seed: int = 0, publish_replicas: bool = True) -> None:
        self.network = SimNetwork(seed=seed)
        self.kadop = KadopIndex(ChordRing())
        self.stream_db = StreamDefinitionDatabase(self.kadop)
        self.publish_replicas = publish_replicas
        #: operators assigned per peer so far; shared across subscription
        #: managers so that placement balances the load globally
        self.placement_load: dict[str, int] = {}
        self._peers: dict[str, P2PMPeer] = {}

    # -- peers ------------------------------------------------------------------

    def add_peer(
        self, peer_id: str, coordinates: tuple[float, float] | None = None
    ) -> "P2PMPeer":
        """Create a new P2PM peer and register it with the network and the DHT."""
        if peer_id in self._peers:
            raise ValueError(f"peer {peer_id!r} already exists")
        peer = P2PMPeer(peer_id, self, coordinates)
        self._peers[peer_id] = peer
        # every P2PM peer also participates in the storage of the Stream
        # Definition Database (KadoP is itself a P2P system)
        if peer_id not in self.kadop.ring:
            self.kadop.ring.join(peer_id)
        return peer

    def peer(self, peer_id: str) -> "P2PMPeer":
        try:
            return self._peers[peer_id]
        except KeyError as exc:
            raise KeyError(f"unknown P2PM peer {peer_id!r}") from exc

    def has_peer(self, peer_id: str) -> bool:
        return peer_id in self._peers

    @property
    def peer_ids(self) -> list[str]:
        return sorted(self._peers)

    def run(self, max_steps: int | None = None) -> int:
        """Deliver pending network messages (returns how many were delivered)."""
        return self.network.run(max_steps)


class P2PMPeer:
    """One peer of the monitoring system."""

    def __init__(
        self,
        peer_id: str,
        system: P2PMSystem,
        coordinates: tuple[float, float] | None = None,
    ) -> None:
        self.peer_id = peer_id
        self.system = system
        self.net = Peer(peer_id, system.network, coordinates)
        self.manager = SubscriptionManager(self)
        self.repository = AXMLRepository(peer_id)
        self.service_registry = ServiceRegistry()
        self.operators: list = []
        self.publishers: list = []
        self.dynamic_sources: list = []
        self._alerters: dict[str, Alerter] = {}
        self._alerter_hooks: list[AlerterHook] = []
        self._feed_sources: dict[str, Callable] = {}

    # -- subscriptions -----------------------------------------------------------------

    def subscribe(self, subscription, sub_id: str | None = None, **options):
        """Submit a P2PML subscription; this peer becomes its Subscription Manager."""
        return self.manager.submit(subscription, sub_id=sub_id, **options)

    # -- alerter hosting -----------------------------------------------------------------

    def add_alerter_hook(self, hook: AlerterHook) -> None:
        """Register a callback invoked whenever an alerter is created here.

        Workload simulators use this to attach newly created alerters to
        their event sources (e.g. the SOAP traffic generator).
        """
        self._alerter_hooks.append(hook)
        for alerter in self._alerters.values():
            hook(alerter)

    def register_feed(self, url: str, source: Callable) -> None:
        """Declare the snapshot source of an RSS feed / Web page served here."""
        self._feed_sources[url] = source

    def host_alerter(self, function: str, alerter: Alerter) -> Alerter:
        """Host a pre-built alerter under a P2PML function name."""
        self._alerters[function] = alerter
        for hook in self._alerter_hooks:
            hook(alerter)
        return alerter

    def alerter(self, function: str) -> Alerter | None:
        return self._alerters.get(function)

    @property
    def hosted_alerters(self) -> list[str]:
        return sorted(self._alerters)

    def get_or_create_alerter(self, function: str) -> Alerter:
        """Return the alerter implementing ``function``, creating it if needed."""
        existing = self._alerters.get(function)
        if existing is not None:
            return existing
        kind, options = ALERTER_KINDS.get(function, (None, {}))
        if kind == "ws":
            alerter: Alerter = WSAlerter(self.peer_id, options["direction"])
        elif kind == "rss":
            url, source = self._single_feed_source(function)
            alerter = RSSFeedAlerter(self.peer_id, url, source)
        elif kind == "webpage":
            alerter = WebPageAlerter(self.peer_id)
            for url, source in sorted(self._feed_sources.items()):
                alerter.watch(url, source)
        elif kind == "axml":
            alerter = AXMLRepositoryAlerter(self.peer_id, self.repository)
        elif kind == "membership":
            alerter = AreRegisteredAlerter(self.peer_id, self.system.kadop)
        else:
            raise ValueError(
                f"peer {self.peer_id!r} cannot host an alerter for {function!r}"
            )
        return self.host_alerter(function, alerter)

    def _single_feed_source(self, function: str):
        if not self._feed_sources:
            raise ValueError(
                f"peer {self.peer_id!r} has no registered feed for alerter {function!r}"
            )
        url = sorted(self._feed_sources)[0]
        return url, self._feed_sources[url]

    # -- channels --------------------------------------------------------------------------

    def ensure_channel(self, channel_id: str, stream: Stream) -> None:
        """Publish ``stream`` as a channel unless it is already published."""
        if not self.net.channels.publishes(channel_id):
            self.net.publish_channel(channel_id, stream)

    def __repr__(self) -> str:
        return (
            f"P2PMPeer({self.peer_id!r}, alerters={len(self._alerters)}, "
            f"operators={len(self.operators)})"
        )
