"""P2PM peers and the system facade tying everything together.

A :class:`P2PMPeer` corresponds to Figure 2: it runs a Subscription Manager,
may host alerters, stream processors and publishers, and exchanges streams
with other peers through channels.  A :class:`P2PMSystem` owns the simulated
network, the KadoP index and the shared Stream Definition Database, and is
the registry through which deployment finds peers.
"""

from __future__ import annotations

from typing import Callable

from repro.alerters import Alerter, AXMLRepository, create_alerter
from repro.compile import (
    EXECUTION_MODES,
    CompiledPipeline,
    CompiledPlanCache,
    CompileStats,
    MaterializedTable,
    PlanCompiler,
)
from repro.dht.chord import ChordRing
from repro.dht.kadop import KadopIndex
from repro.monitor.control import ControlPlaneRouter, register_control_methods
from repro.monitor.lifecycle import ResourceLedger
from repro.monitor.manager import SubscriptionManager
from repro.monitor.recovery import RecoveryManager
from repro.monitor.reuse import ReuseSignatureCache
from repro.monitor.stream_db import StreamDefinitionDatabase
from repro.net.detector import DetectorConfig, HeartbeatDetector
from repro.net.faults import FaultModel
from repro.net.peer import Peer
from repro.net.rpc import RetryPolicy, RpcEndpoint
from repro.net.runtime import RUNTIMES, create_runtime
from repro.net.simnet import SimNetwork
from repro.streams.stream import Stream
from repro.xmlmodel.axml import ServiceRegistry

AlerterHook = Callable[[Alerter], None]


class P2PMSystem:
    """A whole monitoring deployment: network + peers + Stream Definition DB.

    Failure handling comes in two modes:

    * ``failure_mode="oracle"`` (the default, backwards compatible):
      :meth:`fail_peer` synchronously notifies the DHT and the recovery
      manager -- the perfect failure oracle no real deployment has.
    * ``failure_mode="detector"``: kills are *silent*.  A
      :class:`~repro.net.detector.HeartbeatDetector` pings a seeded
      neighbor set every :meth:`tick`; its confirmations (not the oracle)
      drive DHT re-replication, channel-subscriber death marking and
      recovery redeployment, and its rejoin handshake replaces revive
      notifications.  Channels switch to acknowledged delivery with
      per-tick retransmission (``reliable_channels``).

    Orthogonally, ``reliable_control=True`` routes Stream Definition
    Database publications/retractions and deployment control messages
    through the retrying RPC layer (:mod:`repro.monitor.control`), so a
    lossy network yields typed errors instead of silently lost control ops.
    """

    def __init__(
        self,
        seed: int = 0,
        publish_replicas: bool = True,
        fault_model: FaultModel | None = None,
        failure_mode: str = "oracle",
        reliable_control: bool = False,
        reliable_channels: bool | None = None,
        detector_config: DetectorConfig | None = None,
        rpc_policy: RetryPolicy | None = None,
        execution_mode: str = "compiled",
        runtime: str = "single",
        shards: int = 0,
        shard_assigner=None,
        supervise: bool = True,
        supervisor_config=None,
        placement_mode: str | None = None,
    ) -> None:
        if failure_mode not in ("oracle", "detector"):
            raise ValueError(
                f"failure_mode must be 'oracle' or 'detector', got {failure_mode!r}"
            )
        if execution_mode not in EXECUTION_MODES:
            raise ValueError(
                f"execution_mode must be one of {EXECUTION_MODES}, got {execution_mode!r}"
            )
        if runtime not in RUNTIMES:
            raise ValueError(f"runtime must be one of {RUNTIMES}, got {runtime!r}")
        if runtime == "sharded":
            # v1 sharded restrictions: detection, retransmission and retrying
            # control RPCs all assume one global clock and one event heap
            if failure_mode != "oracle":
                raise ValueError(
                    "runtime='sharded' requires failure_mode='oracle' "
                    "(heartbeat detection needs a global clock)"
                )
            if reliable_control:
                raise ValueError(
                    "runtime='sharded' does not support reliable_control=True"
                )
            if reliable_channels:
                raise ValueError(
                    "runtime='sharded' does not support reliable_channels=True"
                )
        if placement_mode is None:
            # sharded runs want whole pipelines inside one worker: colocating
            # movable operators at the manager peer keeps cross-shard traffic
            # down to source->pipeline hops
            placement_mode = "manager" if runtime == "sharded" else "source"
        if placement_mode not in ("source", "manager"):
            raise ValueError(
                f"placement_mode must be 'source' or 'manager', got {placement_mode!r}"
            )
        self.placement_mode = placement_mode
        self.network = SimNetwork(seed=seed, fault_model=fault_model)
        self.kadop = KadopIndex(ChordRing())
        self.stream_db = StreamDefinitionDatabase(self.kadop)
        self.failure_mode = failure_mode
        self.reliable_control = reliable_control
        #: acknowledged channel delivery; defaults to on exactly when the
        #: failure oracle is off (detection latency opens a loss window the
        #: retransmit/takeover machinery must cover)
        self.reliable_channels = (
            failure_mode == "detector" if reliable_channels is None else reliable_channels
        )
        self.rpc_policy = rpc_policy if rpc_policy is not None else RetryPolicy()
        self.detector: HeartbeatDetector | None = None
        if failure_mode == "detector":
            self.detector = HeartbeatDetector(
                self.network, seed=seed, config=detector_config
            )
            self.detector.on_confirm = self._on_peer_confirmed_down
            self.detector.on_rejoin = self._on_peer_rejoined
        if reliable_control:
            self.stream_db.router = ControlPlaneRouter(self)
        #: interned reuse outcomes shared by every peer's subscription
        #: manager: identical subscriptions short-circuit straight to their
        #: matched plan while the Stream Definition Database is unchanged
        self.reuse_cache = ReuseSignatureCache()
        #: refcounted registry of deployed resources; cancellation releases
        #: references and tears down what nothing else holds (Section 5 reuse)
        self.resources = ResourceLedger()
        #: provenance of replica streams: (replica_peer, replica_stream) ->
        #: ledger key of the channel subscription that carries it, so a
        #: consumer picking a replica provider keeps the transport chain alive
        self.replica_providers: dict[tuple[str, str], object] = {}
        self.publish_replicas = publish_replicas
        #: operators assigned per peer so far; shared across subscription
        #: managers so that placement balances the load globally
        self.placement_load: dict[str, int] = {}
        #: detects orphaned resources after a peer failure and redeploys the
        #: affected subscriptions on surviving peers
        self.recovery = RecoveryManager(self)
        #: compiled execution (the default): fused pipeline closures with a
        #: system-wide materialized-expression table (cross-plan CSE);
        #: ``execution_mode="interpreted"`` pins the per-operator reference
        #: path (golden-trace-pinned)
        self.execution_mode = execution_mode
        if execution_mode == "compiled":
            self.materialized: MaterializedTable | None = MaterializedTable()
            self.compile_cache: CompiledPlanCache | None = CompiledPlanCache()
            self.compile_stats: CompileStats | None = CompileStats()
            self.compiler: PlanCompiler | None = PlanCompiler(
                self.materialized,
                self.compile_cache,
                self.compile_stats,
                registry_for=self._service_registry_for,
            )
        else:
            self.materialized = None
            self.compile_cache = None
            self.compile_stats = None
            self.compiler = None
        self._peers: dict[str, P2PMPeer] = {}
        #: execution backend: who drains the event scheduler(s), and where
        #: (see :mod:`repro.net.runtime`)
        self.runtime = create_runtime(
            runtime,
            self,
            shards=shards,
            assigner=shard_assigner,
            supervise=supervise,
            supervisor_config=supervisor_config,
        )

    # -- peers ------------------------------------------------------------------

    def add_peer(
        self, peer_id: str, coordinates: tuple[float, float] | None = None
    ) -> "P2PMPeer":
        """Create a new P2PM peer and register it with the network and the DHT."""
        self.runtime.check_lifecycle("add_peer")
        if peer_id in self._peers:
            raise ValueError(f"peer {peer_id!r} already exists")
        peer = P2PMPeer(peer_id, self, coordinates)
        self._peers[peer_id] = peer
        # every P2PM peer also participates in the storage of the Stream
        # Definition Database (KadoP is itself a P2P system)
        if peer_id not in self.kadop.ring:
            self.kadop.ring.join(peer_id)
        if self.detector is not None:
            self.detector.attach(peer.net)
        peer.net.channels.reliable = self.reliable_channels
        return peer

    def peer(self, peer_id: str) -> "P2PMPeer":
        try:
            return self._peers[peer_id]
        except KeyError as exc:
            raise KeyError(f"unknown P2PM peer {peer_id!r}") from exc

    def has_peer(self, peer_id: str) -> bool:
        return peer_id in self._peers

    def _service_registry_for(self, peer_id: str) -> "ServiceRegistry | None":
        """Current service registry of ``peer_id`` (None once the peer left).

        Handed to the plan compiler as the tree-pattern stages' lazy
        resolver: compiled programs live in the plan cache across peer
        departures and rejoins, so the registry must be looked up per item,
        never captured at compile time.
        """
        peer = self._peers.get(peer_id)
        return peer.service_registry if peer is not None else None

    @property
    def peer_ids(self) -> list[str]:
        return sorted(self._peers)

    def run(self, max_steps: int | None = None) -> int:
        """Deliver pending network messages (returns how many were delivered).

        Delegated to the execution runtime: the single-process backend drains
        the one event heap in place; the sharded backend runs one lock-step
        exchange epoch across its workers and harvests results back into the
        local handles.
        """
        return self.runtime.run(max_steps)

    # -- execution runtime -------------------------------------------------------

    def start_runtime(self) -> None:
        """Freeze deployment and hand execution to the runtime backend.

        A no-op for the default single-process runtime.  For
        ``runtime="sharded"`` this forks the worker processes: every peer,
        operator and pending message moves to its owning shard, and further
        deployment mutation (subscribe/cancel/pause/resume, peer churn)
        raises until :meth:`shutdown`.
        """
        self.runtime.start()

    def shutdown(self) -> None:
        """Release runtime resources (worker processes); idempotent."""
        self.runtime.shutdown()

    def partition(self, name: str, *groups) -> None:
        """Partition the network (applied in every shard when sharded)."""
        self.runtime.control("partition", name, tuple(groups))

    def heal(self, name: str) -> None:
        """Heal a named partition (applied in every shard when sharded)."""
        self.runtime.control("heal", name)

    def set_fault_model(self, fault_model: FaultModel | None) -> None:
        """Swap the network fault model (applied in every shard when sharded)."""
        self.runtime.control("faults", fault_model)

    def drive_alerter(self, peer_id: str, function: str, method: str, *args):
        """Invoke ``method(*args)`` on the alerter hosting ``function`` at
        ``peer_id``, wherever that peer's state lives.

        Workload generators drive event sources through this instead of
        holding direct alerter references: under the single-process runtime
        it is a plain method call; under the sharded runtime the call is
        shipped to the worker that owns the peer.  Returns ``False`` when the
        peer hosts no such alerter, ``None`` when the call was shipped
        asynchronously.
        """
        return self.runtime.drive(peer_id, function, method, args)

    # -- peer lifecycle (churn) --------------------------------------------------

    def fail_peer(self, peer_id: str, notify: bool | None = None) -> bool:
        """Simulate an abrupt peer failure.

        With ``notify=True`` (the oracle-mode default) the failure
        propagates synchronously through every layer: the DHT re-stabilises
        (its ring node fails abruptly; lost index keys are re-replicated
        onto the surviving nodes) and the recovery manager redeploys every
        subscription spanning the dead peer on surviving peers.

        With ``notify=False`` (the detector-mode default) the kill is
        *silent*: only the network learns about it, and the system must
        notice via heartbeat silence -- :meth:`tick` the system until the
        detector confirms the death and drives the same chain itself.

        Returns False when the peer was already down.
        """
        self.runtime.check_lifecycle("fail_peer")
        if peer_id not in self._peers:
            raise KeyError(f"unknown P2PM peer {peer_id!r}")
        if notify is None:
            notify = self.failure_mode == "oracle"
        if not self.network.fail_peer(peer_id, notify=notify):
            return False
        if notify:
            self.kadop.fail_peer(peer_id)
            self.recovery.handle_peer_failure(peer_id)
        return True

    def revive_peer(self, peer_id: str, notify: bool | None = None) -> bool:
        """Bring a failed peer back.

        With ``notify=True`` (oracle-mode default) the peer rejoins the DHT
        immediately and the recovery manager redeploys subscriptions whose
        pending sources included it.  With ``notify=False`` (detector-mode
        default) only the network revives it: the peer's heartbeat layer
        performs the rejoin handshake and reintegration happens when an
        observer hears it.  Returns False when the peer was not down.
        """
        self.runtime.check_lifecycle("revive_peer")
        if peer_id not in self._peers:
            raise KeyError(f"unknown P2PM peer {peer_id!r}")
        if notify is None:
            notify = self.failure_mode == "oracle"
        if not self.network.revive_peer(peer_id, notify=notify):
            return False
        if notify:
            self.kadop.join_peer(peer_id)
            self.recovery.handle_peer_revival(peer_id)
        return True

    def is_alive(self, peer_id: str) -> bool:
        """True when the peer exists and is not currently failed."""
        return peer_id in self._peers and self.network.is_alive(peer_id)

    def down_peers(self) -> frozenset[str]:
        """The currently failed peers (ground truth, from the network)."""
        return self.network.down_peers()

    def believed_down(self) -> frozenset[str]:
        """The peers the *system* believes are down.

        In detector mode this is the set of CONFIRMED peers -- which lags
        ground truth by the detection latency and may (rarely) include a
        live-but-partitioned peer.  Recovery and placement act on belief,
        not on the oracle.
        """
        if self.detector is not None:
            return self.detector.confirmed_peers()
        return self.network.down_peers()

    def suspected_peers(self) -> list[str]:
        """Peers currently under suspicion (empty in oracle mode)."""
        if self.detector is not None:
            return self.detector.suspected_peers()
        return []

    def avoid_peers(self) -> frozenset[str]:
        """Peers placement should avoid: believed down or under suspicion."""
        believed = self.believed_down()
        suspected = self.suspected_peers()
        if suspected:
            return believed | frozenset(suspected)
        return believed

    # -- detector-driven failure handling ---------------------------------------

    def tick(self) -> None:
        """One control round: heartbeats plus channel retransmissions.

        A no-op in oracle mode, so scenario loops can call it
        unconditionally without perturbing golden traces.  Delegated to the
        runtime so the sharded backend can fan the round out to its workers.
        """
        self.runtime.tick()

    def _local_tick(self) -> None:
        """The in-process part of :meth:`tick` (what runtimes actually run)."""
        if self.detector is not None:
            self.detector.tick()
        if self.reliable_channels:
            for peer in self._peers.values():
                if self.network.is_alive(peer.peer_id):
                    peer.net.channels.retransmit_tick()
        if self.compile_stats is not None:
            self.compile_stats.record_tick()

    # -- compiled execution ------------------------------------------------------

    def compiled_pipelines(self) -> list[CompiledPipeline]:
        """Every live compiled pipeline, ordered by peer id."""
        pipelines: list[CompiledPipeline] = []
        for peer_id in sorted(self._peers):
            for operator in self._peers[peer_id].operators:
                if isinstance(operator, CompiledPipeline):
                    pipelines.append(operator)
        return pipelines

    def compile_snapshot(self) -> dict:
        """Compiler counters for ``handle.stats()["compile"]``."""
        snapshot: dict = {"mode": self.execution_mode}
        if self.compiler is None:
            return snapshot
        assert self.compile_stats is not None
        assert self.materialized is not None
        assert self.compile_cache is not None
        snapshot.update(self.compile_stats.snapshot())
        cse = self.materialized.snapshot()
        ticks = self.compile_stats.ticks
        cse["hits_per_tick"] = round(cse["hits"] / ticks, 2) if ticks else 0.0
        cse["misses_per_tick"] = round(cse["misses"] / ticks, 2) if ticks else 0.0
        snapshot["cse"] = cse
        snapshot["plan_cache"] = self.compile_cache.snapshot()
        snapshot["pipelines_active"] = sum(
            1 for pipeline in self.compiled_pipelines() if not pipeline.detached
        )
        return snapshot

    def compile_report(self) -> str:
        """Readable debug dump of the compiler state and live pipelines."""
        lines = [f"execution mode: {self.execution_mode}"]
        if self.compiler is None:
            lines.append("plan compiler disabled (interpreted execution)")
            return "\n".join(lines)
        snapshot = self.compile_snapshot()
        lines.append(
            f"segments fused: {snapshot['segments_fused']} "
            f"({snapshot['stages_fused']} stages), "
            f"remote splits: {snapshot['remote_splits']}"
        )
        cse = snapshot["cse"]
        lines.append(
            f"CSE table: {cse['signatures']} signatures, "
            f"{cse['hits']} hits / {cse['misses']} misses "
            f"(hit rate {cse['hit_rate']})"
        )
        cache = snapshot["plan_cache"]
        lines.append(
            f"plan cache: {cache['programs']} programs, "
            f"{cache['hits']} hits / {cache['misses']} misses"
        )
        invocations = snapshot["stage_invocations"]
        lines.append(
            f"stage invocations: {invocations['batch']} batch "
            f"({invocations['batch_items']} items) / {invocations['item']} per-item"
        )
        for kind, count in snapshot["consumers_fused"].items():
            lines.append(f"consumer fused {kind}: x{count}")
        # fallback reasons arrive sorted from the snapshot; the seen-set
        # guards against duplicates so the report is deterministic even if a
        # future recorder double-counts a (kind, reason) pair
        seen_fallbacks: set[tuple[str, str]] = set()
        for kind, reasons in snapshot["fallbacks"].items():
            for reason, count in sorted(reasons.items()):
                if (kind, reason) in seen_fallbacks:
                    continue
                seen_fallbacks.add((kind, reason))
                lines.append(f"fallback {kind}: {reason} x{count}")
        for pipeline in self.compiled_pipelines():
            info = pipeline.describe()
            status = "detached" if info["detached"] else "live"
            lines.append(
                f"pipeline sub={info['sub_id']} @{info['peer']} [{status}] "
                f"in={info['items_in']} out={info['items_out']} "
                f"stages={' | '.join(info['stages'])}"
            )
        return "\n".join(lines)

    def _on_peer_confirmed_down(self, peer_id: str) -> None:
        """Detector confirmation: drive the same chain the oracle would."""
        self.kadop.fail_peer(peer_id)
        for peer in self._peers.values():
            peer.net.channels.handle_peer_death(peer_id)
        self.recovery.handle_peer_failure(peer_id)

    def _on_peer_rejoined(self, peer_id: str) -> None:
        """Detector rejoin handshake: reintegrate a confirmed-dead peer."""
        self.kadop.join_peer(peer_id)
        for peer in self._peers.values():
            peer.net.channels.handle_peer_rejoin(peer_id)
        self.recovery.handle_peer_revival(peer_id)


class P2PMPeer:
    """One peer of the monitoring system."""

    def __init__(
        self,
        peer_id: str,
        system: P2PMSystem,
        coordinates: tuple[float, float] | None = None,
    ) -> None:
        self.peer_id = peer_id
        self.system = system
        self.net = Peer(peer_id, system.network, coordinates)
        self.rpc = RpcEndpoint(self.net, system.rpc_policy)
        register_control_methods(self)
        self.manager = SubscriptionManager(self)
        self.repository = AXMLRepository(peer_id)
        self.service_registry = ServiceRegistry()
        self.operators: list = []
        self.publishers: list = []
        self.dynamic_sources: list = []
        self._alerters: dict[str, Alerter] = {}
        self._alerter_hooks: list[AlerterHook] = []
        self._feed_sources: dict[str, Callable] = {}

    # -- subscriptions -----------------------------------------------------------------

    def subscribe(self, subscription, sub_id: str | None = None, **options):
        """Submit a subscription; this peer becomes its Subscription Manager.

        ``subscription`` is P2PML text, a parsed
        :class:`~repro.p2pml.ast.SubscriptionAST`, or a
        :class:`~repro.p2pml.builder.SubscriptionBuilder`.  Returns the
        :class:`~repro.monitor.handle.SubscriptionHandle` through which
        results are consumed and the lifecycle (``pause``/``resume``/
        ``cancel``) is driven.  Pass ``max_results=N`` to opt into a bounded
        result buffer readable via ``handle.results()``.
        """
        return self.manager.submit(subscription, sub_id=sub_id, **options)

    def subscribe_many(self, subscriptions, sub_ids=None, **options):
        """Submit a batch of subscriptions through one shared ingestion context.

        Equivalent to calling :meth:`subscribe` per entry (same handles in
        the same order), but discovery, reuse and deployment state are
        shared across the batch -- see
        :meth:`~repro.monitor.manager.SubscriptionManager.submit_many`.
        """
        return self.manager.submit_many(subscriptions, sub_ids=sub_ids, **options)

    # -- alerter hosting -----------------------------------------------------------------

    def add_alerter_hook(self, hook: AlerterHook) -> None:
        """Register a callback invoked whenever an alerter is created here.

        Workload simulators use this to attach newly created alerters to
        their event sources (e.g. the SOAP traffic generator).
        """
        self._alerter_hooks.append(hook)
        for alerter in self._alerters.values():
            hook(alerter)

    def register_feed(self, url: str, source: Callable) -> None:
        """Declare the snapshot source of an RSS feed / Web page served here."""
        self._feed_sources[url] = source

    def host_alerter(self, function: str, alerter: Alerter) -> Alerter:
        """Host a pre-built alerter under a P2PML function name."""
        self._alerters[function] = alerter
        for hook in self._alerter_hooks:
            hook(alerter)
        return alerter

    def alerter(self, function: str) -> Alerter | None:
        return self._alerters.get(function)

    @property
    def hosted_alerters(self) -> list[str]:
        return sorted(self._alerters)

    def get_or_create_alerter(self, function: str) -> Alerter:
        """Return the alerter implementing ``function``, creating it if needed.

        Creation is delegated to the declarative alerter registry
        (:func:`repro.alerters.register_alerter`), so new alerter kinds plug
        in without touching this peer or the deployment layer.
        """
        existing = self._alerters.get(function)
        if existing is not None:
            return existing
        # create_alerter's error already names this peer and the registered kinds
        return self.host_alerter(function, create_alerter(self, function))

    @property
    def feed_sources(self) -> dict[str, Callable]:
        """Snapshot sources of the RSS feeds / Web pages served at this peer."""
        return dict(self._feed_sources)

    def single_feed_source(self, function: str):
        """The (url, source) pair of this peer's feed; alerter factories use it."""
        if not self._feed_sources:
            raise ValueError(
                f"peer {self.peer_id!r} has no registered feed for alerter {function!r}"
            )
        url = sorted(self._feed_sources)[0]
        return url, self._feed_sources[url]

    # -- channels --------------------------------------------------------------------------

    def ensure_channel(self, channel_id: str, stream: Stream) -> bool:
        """Publish ``stream`` as a channel unless already published.

        Returns True when this call actually published the channel, so the
        caller knows whether it owns the corresponding teardown.
        """
        if self.net.channels.publishes(channel_id):
            return False
        self.net.publish_channel(channel_id, stream)
        return True

    def __repr__(self) -> str:
        return (
            f"P2PMPeer({self.peer_id!r}, alerters={len(self._alerters)}, "
            f"operators={len(self.operators)})"
        )
