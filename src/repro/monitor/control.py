"""Reliable control plane: route index mutations over RPC to their DHT home.

With ``reliable_control=True`` a :class:`P2PMSystem` stops mutating the
KadoP-backed Stream Definition Database in place.  Instead each publication
or retraction travels as an RPC from the peer that owns the description to
the document's DHT home peer (``ring.lookup("doc:<doc_id>")``), through the
full retry/idempotency/circuit-breaker machinery of
:mod:`repro.net.rpc` -- so a lossy network can no longer silently swallow a
control operation: the op either lands or the caller gets a typed
:class:`~repro.net.errors.RpcError`.

The index object itself stays shared in-process (the simulation's stand-in
for KadoP's replicated storage); what the router adds is the *message
round-trip* and its failure modes.  Operations issued by a peer that is not
currently alive (teardown of a dead incarnation) fall back to a direct
local mutation -- bookkeeping for state the failure already invalidated.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.errors import RpcError
from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.p2pm_peer import P2PMSystem

#: RPC method names of the control plane.
RPC_KADOP_PUBLISH = "kadop.publish"
RPC_KADOP_RETRACT = "kadop.retract"
RPC_KADOP_QUERY = "kadop.query"
RPC_CHANNEL_SUBSCRIBE = "channel.subscribe"
RPC_CHANNEL_UNSUBSCRIBE = "channel.unsubscribe"
RPC_DEPLOY_PREPARE = "deploy.prepare"


def register_control_methods(peer) -> None:
    """Expose the control-plane RPC methods on one P2PM peer.

    ``peer`` is a :class:`~repro.monitor.p2pm_peer.P2PMPeer`; handlers run
    at the *receiving* peer and raise into typed
    :class:`~repro.net.errors.RpcRemoteError` at the caller.
    """
    system = peer.system
    registry = peer.net.channels
    rpc = peer.rpc

    def kadop_publish(params: Element, source: str) -> Element:
        doc_id = params.attrib["docId"]
        system.kadop.publish(params.children[0], doc_id)
        return Element("stored", {"docId": doc_id})

    def kadop_retract(params: Element, source: str) -> Element:
        removed = system.kadop.unpublish(params.attrib["docId"])
        return Element("result", {"removed": "1" if removed else "0"})

    def kadop_query(params: Element, source: str) -> Element:
        results = system.kadop.query(params.attrib["q"])
        return Element(
            "results",
            {"count": str(len(results))},
            [
                Element("doc", {"docId": doc_id}, [document.copy()])
                for doc_id, document in results
            ],
        )

    def channel_subscribe(params: Element, source: str) -> Element:
        channel_id = params.attrib["channelId"]
        registry.admit_subscriber(channel_id, params.attrib["subscriber"])
        return Element("subscribed", {"channelId": channel_id})

    def channel_unsubscribe(params: Element, source: str) -> Element:
        channel_id = params.attrib["channelId"]
        registry.drop_subscriber(channel_id, params.attrib["subscriber"])
        return Element("unsubscribed", {"channelId": channel_id})

    def deploy_prepare(params: Element, source: str) -> Element:
        # reaching the handler at all is the point: the manager proves the
        # placement peer is up and reachable before instantiating anything
        return Element("ready", {"peer": peer.peer_id, "subId": params.attrib["subId"]})

    rpc.register(RPC_KADOP_PUBLISH, kadop_publish)
    rpc.register(RPC_KADOP_RETRACT, kadop_retract)
    rpc.register(RPC_KADOP_QUERY, kadop_query)
    rpc.register(RPC_CHANNEL_SUBSCRIBE, channel_subscribe)
    rpc.register(RPC_CHANNEL_UNSUBSCRIBE, channel_unsubscribe)
    rpc.register(RPC_DEPLOY_PREPARE, deploy_prepare)


class ControlPlaneRouter:
    """Routes Stream Definition Database mutations to their DHT home peer.

    Plugged into :attr:`StreamDefinitionDatabase.router`; see the module
    docstring for semantics.
    """

    def __init__(self, system: "P2PMSystem") -> None:
        self.system = system

    # -- routing helpers ---------------------------------------------------- #

    def _home_peer(self, doc_id: str) -> str | None:
        ring = self.system.kadop.ring
        if len(ring) == 0:
            return None
        home = ring.lookup(f"doc:{doc_id}").node_id
        if self.system.has_peer(home) and self.system.is_alive(home):
            return home
        return None

    def _via_peer(self, peer_id: str):
        """The issuing P2PM peer, when it can actually transmit."""
        if self.system.has_peer(peer_id) and self.system.is_alive(peer_id):
            return self.system.peer(peer_id)
        return None

    # -- StreamDefinitionDatabase router protocol --------------------------- #

    def publish_document(self, description: Element, doc_id: str) -> None:
        """Publish via RPC from the owning peer to the document's home.

        An :class:`RpcError` propagates to the caller (a failed publication
        must fail the deployment, not silently skip the advertisement); the
        direct fallback only covers documents whose owner is not a live
        network peer (seed data, tests publishing out-of-band).
        """
        if description.tag == "InChannel":
            owner = description.attrib["ReplicaPeerId"]
        else:
            owner = description.attrib["PeerId"]
        via = self._via_peer(owner)
        home = self._home_peer(doc_id)
        if via is None or home is None:
            self.system.kadop.publish(description, doc_id)
            return
        via.rpc.call_sync(
            home,
            RPC_KADOP_PUBLISH,
            Element("publish", {"docId": doc_id}, [description]),
        )

    def retract_document(self, doc_id: str) -> bool:
        """Retract via RPC; falls back to a direct unpublish on RPC failure.

        Retraction is teardown bookkeeping: when the RPC cannot complete
        (circuit open towards a dead home, retries exhausted) the entry is
        removed locally so reuse stops matching a stream that is gone --
        the anti-entropy a real KadoP node would perform on its own copy.
        """
        owner = doc_id.rsplit("@", 1)[1] if "@" in doc_id else ""
        via = self._via_peer(owner)
        home = self._home_peer(doc_id)
        if via is None or home is None:
            return self.system.kadop.unpublish(doc_id)
        try:
            result = via.rpc.call_sync(
                home, RPC_KADOP_RETRACT, Element("retract", {"docId": doc_id})
            )
        except RpcError:
            return self.system.kadop.unpublish(doc_id)
        return result is not None and result.attrib.get("removed") == "1"

    def routed_query(self, from_peer: str, query: str) -> list[tuple[str, Element]]:
        """Evaluate an XPath query at the issuing peer's DHT successor.

        The routed counterpart of ``kadop.query``: the query travels as an
        RPC (and so can time out or be rejected) instead of being evaluated
        in place.
        """
        via = self._via_peer(from_peer)
        ring = self.system.kadop.ring
        if via is None or len(ring) == 0:
            return self.system.kadop.query(query)
        home = ring.lookup(f"query:{from_peer}").node_id
        if not (self.system.has_peer(home) and self.system.is_alive(home)):
            return self.system.kadop.query(query)
        result = via.rpc.call_sync(
            home, RPC_KADOP_QUERY, Element("query", {"q": query})
        )
        if result is None:
            return []
        return [
            (doc.attrib["docId"], doc.children[0])
            for doc in result.children
            if doc.children
        ]
