"""Operator placement: assigning concrete peers to ``@any`` operators.

Heuristics (matching the plan shown in Figure 4 of the paper):

* alerters run at the monitored peer they observe;
* reused (existing) streams stay at their providing peer;
* filters, restructures, duplicate-removal and group run where their input
  is produced ("place operators such as filters close to the data");
* unions run at one of their inputs' peers (the least-loaded one);
* joins run at one of the two input peers, preferring the side whose peer is
  less loaded (the paper places the meteo join at meteo.com, the in-call side);
* publishers run at the Subscription Manager's peer.

``load`` tracks how many operators each peer has been assigned so far, so
that successive subscriptions spread their work ("trying to balance the
load").
"""

from __future__ import annotations

from repro.algebra.plan import (
    ALERTER,
    EXISTING,
    JOIN,
    PUBLISH,
    UNION,
    PlanNode,
)


def place_plan(
    plan: PlanNode,
    manager_peer: str,
    load: dict[str, int] | None = None,
    avoid: frozenset[str] | set[str] | None = None,
    colocate: str = "source",
) -> PlanNode:
    """Assign a concrete peer to every node of ``plan`` (modified in place).

    ``avoid`` names peers that must not receive *movable* operators (failed
    peers during recovery redeployment).  Fixed placements -- alerters at
    their monitored peer, existing streams at their provider -- are not
    affected; recovery prunes or defers those before placing.

    ``colocate`` picks the placement policy for movable operators:

    * ``"source"`` (the paper's Figure 4 default): operators run close to
      the data, joins/unions at their least-loaded input peer;
    * ``"manager"``: every movable operator runs at the Subscription
      Manager's peer.  The sharded runtime defaults to this so each
      pipeline executes whole inside the worker that owns its manager,
      leaving only source->pipeline hops to cross shard boundaries.
    """
    if colocate not in ("source", "manager"):
        raise ValueError(f"colocate must be 'source' or 'manager', got {colocate!r}")
    load = load if load is not None else {}
    _place(plan, manager_peer, load, frozenset(avoid or ()), colocate)
    return plan


def _place(
    node: PlanNode,
    manager_peer: str,
    load: dict[str, int],
    avoid: frozenset[str],
    colocate: str = "source",
) -> str:
    child_placements = [
        _place(child, manager_peer, load, avoid, colocate) for child in node.children
    ]

    if node.kind == ALERTER:
        peer = node.params.get("peer")
        if peer in (None, "local"):
            peer = node.placement or manager_peer
        node.placement = peer
    elif node.kind == EXISTING:
        node.placement = node.params.get("provider_peer") or node.params.get("peer") or manager_peer
    elif node.kind == PUBLISH:
        node.placement = manager_peer
    elif colocate == "manager":
        node.placement = node.placement or manager_peer
    elif node.kind == JOIN and len(child_placements) == 2:
        node.placement = node.placement or _less_loaded(
            [child_placements[1], child_placements[0]], load, avoid
        )
    elif node.kind == UNION and child_placements:
        node.placement = node.placement or _less_loaded(
            list(reversed(child_placements)), load, avoid
        )
    else:
        node.placement = node.placement or _first_allowed(
            child_placements, manager_peer, avoid
        )

    load[node.placement] = load.get(node.placement, 0) + 1
    return node.placement


def _first_allowed(
    child_placements: list[str], manager_peer: str, avoid: frozenset[str]
) -> str:
    allowed = [peer for peer in child_placements if peer not in avoid]
    if allowed:
        return allowed[0]
    if child_placements:
        return child_placements[0]
    return manager_peer


def _less_loaded(candidates: list[str], load: dict[str, int], avoid: frozenset[str]) -> str:
    """First candidate with the lowest current load (candidates are in
    preference order, so ties keep the preferred peer).  Candidates in
    ``avoid`` are only used when no alternative exists."""
    allowed = [peer for peer in candidates if peer not in avoid]
    pool = allowed if allowed else candidates
    return min(pool, key=lambda peer: load.get(peer, 0))
