"""Lifecycle primitives: bounded result buffers, delivery valves, resource ledger.

The Subscription Manager owns the *whole* life of a monitoring task
(Section 3.1), not just its deployment.  This module provides the three
mechanisms the lifecycle verbs are built on:

* :class:`ResultBuffer` -- a bounded, subscriber-driven replacement for the
  unbounded ``collect()`` sink: at the paper's millions-of-users scale a
  result list that only ever grows is a memory leak.
* :class:`DeliveryValve` -- a gate between a task's output stream and its
  delivery targets (publisher, result buffer, callbacks).  ``pause()``
  stops delivery without tearing anything down; ``resume()`` restarts it,
  flushing whatever the valve retained while paused.
* :class:`ResourceLedger` -- reference counting over deployed resources
  (operator output streams, alerter advertisements, channel proxies).  A
  stream feeding two subscriptions must survive the cancellation of one of
  them; only when the last holder releases a resource do its recorded undo
  actions run (detach operators, close streams, retract Stream Definition
  Database advertisements).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from repro.streams.item import is_eos
from repro.streams.stream import Stream
from repro.xmlmodel.tree import Element

#: Default bound of the buffer a paused valve retains items in.
DEFAULT_PAUSE_BUFFER = 1024

UndoAction = Callable[[], None]


def run_all(actions: list[UndoAction]) -> None:
    """Run every teardown action even if some fail, then re-raise the first error.

    A cancel must never leave stale state (e.g. an unretracted Stream
    Definition Database advertisement) because an earlier undo action hit a
    transient error such as a departed subscriber peer.
    """
    first_error: BaseException | None = None
    for action in actions:
        try:
            action()
        except Exception as exc:  # noqa: BLE001 - teardown must make progress
            if first_error is None:
                first_error = exc
    if first_error is not None:
        raise first_error


class ResultBuffer:
    """A bounded buffer of result items fed by a stream subscription.

    When full, the oldest item is evicted (monitoring cares about fresh
    results); :attr:`dropped` counts evictions so callers can tell the
    window was exceeded.
    """

    def __init__(self, max_results: int) -> None:
        if max_results <= 0:
            raise ValueError("max_results must be positive")
        self.max_results = max_results
        self.dropped = 0
        self.closed = False
        self._items: deque[Element] = deque(maxlen=max_results)

    def push(self, item: object) -> None:
        """Stream-subscriber entry point (accepts EOS)."""
        if is_eos(item):
            self.closed = True
            return
        assert isinstance(item, Element)
        if len(self._items) == self.max_results:
            self.dropped += 1
        self._items.append(item)

    def snapshot(self) -> list[Element]:
        """The currently buffered results, oldest first."""
        return list(self._items)

    def clear(self) -> None:
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Element]:
        return iter(self.snapshot())

    def __repr__(self) -> str:
        return (
            f"ResultBuffer(buffered={len(self._items)}, max={self.max_results}, "
            f"dropped={self.dropped})"
        )


class DeliveryValve:
    """Gate between a task's output stream and its delivery targets.

    The valve subscribes to ``source`` and forwards into :attr:`out`, the
    stream the publisher, result buffer and user callbacks are attached to.
    While paused, up to ``max_pause_buffer`` items are retained (oldest
    evicted beyond that) and flushed on resume, so a paused subscription
    loses nothing within its retention window and needs no redeployment.
    """

    def __init__(
        self,
        source: Stream,
        out: Stream | None = None,
        max_pause_buffer: int = DEFAULT_PAUSE_BUFFER,
    ) -> None:
        self.source = source
        self.out = out if out is not None else Stream(f"{source.stream_id}.delivery", source.peer_id)
        self.paused = False
        self.items_delivered = 0
        self.dropped_while_paused = 0
        self._pending: deque[Element] = deque(maxlen=max_pause_buffer)
        self._max_pause_buffer = max_pause_buffer
        self._eos_pending = False
        self._unsubscribe = source.subscribe(self._receive)

    def _receive(self, item: object) -> None:
        if is_eos(item):
            if self.paused:
                self._eos_pending = True
            else:
                self.out.close()
            return
        assert isinstance(item, Element)
        if self.paused:
            if len(self._pending) == self._max_pause_buffer:
                self.dropped_while_paused += 1
            self._pending.append(item)
            return
        self.items_delivered += 1
        self.out.emit(item)

    @property
    def pending_count(self) -> int:
        """Items retained while paused, not yet flushed."""
        return len(self._pending)

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        """Restart delivery, flushing what was retained while paused."""
        if not self.paused:
            return
        self.paused = False
        while self._pending:
            self.items_delivered += 1
            self.out.emit(self._pending.popleft())
        if self._eos_pending:
            self._eos_pending = False
            self.out.close()

    def detach(self) -> None:
        """Unsubscribe from the source and terminate the delivery stream."""
        self._unsubscribe()
        self._pending.clear()
        if not self.out.closed:
            self.out.close()


class _Entry:
    __slots__ = ("holders", "undo")

    def __init__(self) -> None:
        self.holders: set[str] = set()
        self.undo: list[UndoAction] = []


class ResourceLedger:
    """Reference-counted registry of deployed resources and their undo actions.

    Keys are opaque hashable identities (canonical ``(peer, stream)`` pairs
    for deployed streams, longer tuples for channel proxies).  Holders are
    strings naming the consuming entity (a downstream stream entry or a
    subscription terminal), so releases are idempotent per consumer.  When
    the last holder releases an entry, its undo actions run in registration
    order -- releasing child resources from inside an undo action cascades
    naturally.
    """

    def __init__(self) -> None:
        self._entries: dict[object, _Entry] = {}
        self.teardowns = 0

    # -- registration ----------------------------------------------------------

    def known(self, key: object) -> bool:
        return key in self._entries

    def register(self, key: object) -> bool:
        """Ensure an entry for ``key`` exists; True when newly created."""
        if key in self._entries:
            return False
        self._entries[key] = _Entry()
        return True

    def add_undo(self, key: object, action: UndoAction) -> None:
        """Append a teardown action to run when ``key``'s last holder leaves."""
        self._entries[key].undo.append(action)

    # -- reference counting ----------------------------------------------------

    def retain(self, key: object, holder: str) -> None:
        """Record that ``holder`` depends on the resource ``key``."""
        self._entries[key].holders.add(holder)

    def release(self, key: object, holder: str) -> bool:
        """Drop ``holder``'s reference; returns True when this tore ``key`` down."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        entry.holders.discard(holder)
        if entry.holders:
            return False
        del self._entries[key]
        self.teardowns += 1
        run_all(entry.undo)
        return True

    def holders(self, key: object) -> set[str]:
        entry = self._entries.get(key)
        return set(entry.holders) if entry is not None else set()

    def keys(self) -> list[object]:
        """All currently registered resource keys (recovery scans these)."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"ResourceLedger(entries={len(self._entries)}, teardowns={self.teardowns})"
