"""Deployment: turning a placed plan into running operators, streams and channels.

Each plan node is instantiated at its assigned peer.  Whenever an operator
consumes a stream produced at a *different* peer, the producer's stream is
published as a channel and the consumer subscribes to it -- exactly the
``send``/``receive`` pairs produced by the algebra's external-invocation
rewrite rule (Section 3.3) and the channels X, Y, M of the Figure 4 plan.
Every deployed stream is described in the Stream Definition Database so that
later subscriptions can reuse it (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.algebra.operators import (
    DuplicateRemovalOperator,
    FilterProcessor,
    GroupOperator,
    JoinOperator,
    Operator,
    RestructureOperator,
    UnionOperator,
)
from repro.algebra.plan import (
    ALERTER,
    DISTINCT,
    EXISTING,
    FILTER,
    GROUP,
    JOIN,
    PUBLISH,
    RESTRUCTURE,
    UNION,
    PlanNode,
)
from repro.algebra.template import ValueRef
from repro.publishers import (
    ChannelPublisher,
    EmailPublisher,
    FilePublisher,
    Publisher,
    RSSPublisher,
    WebPagePublisher,
)
from repro.streams.stream import Stream, collect
from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.p2pm_peer import P2PMPeer, P2PMSystem


@dataclass
class _StreamHandle:
    """Where a deployed (sub)plan's output lives."""

    peer_id: str
    stream: Stream | None
    stream_id: str
    #: canonical identity used in stream descriptions (original, never replica)
    original: tuple[str, str] = ("", "")

    def __post_init__(self) -> None:
        if self.original == ("", ""):
            self.original = (self.peer_id, self.stream_id)


@dataclass
class DeployedTask:
    """A running monitoring task."""

    sub_id: str
    plan: PlanNode
    manager_peer: str
    output_stream: Stream | None = None
    results: list[Element] = field(default_factory=list)
    publisher: Publisher | None = None
    operators_by_peer: dict[str, list[Operator]] = field(default_factory=dict)
    channels_created: list[str] = field(default_factory=list)
    reuse_report: object | None = None

    @property
    def operator_count(self) -> int:
        return sum(len(ops) for ops in self.operators_by_peer.values())

    def peers_involved(self) -> list[str]:
        return sorted(self.operators_by_peer)


class DynamicAlerterSource:
    """A source whose monitored peer set follows a membership stream.

    Implements ``for $c in inCOM($j)``: every ``p-join`` event connects the
    corresponding peer's alerter (creating it if needed), every ``p-leave``
    disconnects it ("inCOM removes peers from the collection of monitored
    peers").
    """

    def __init__(self, system: "P2PMSystem", alerter_function: str, output: Stream) -> None:
        self.system = system
        self.alerter_function = alerter_function
        self.output = output
        self._unsubscribe: dict[str, object] = {}

    @property
    def monitored_peers(self) -> list[str]:
        return sorted(self._unsubscribe)

    def on_membership_alert(self, item: object) -> None:
        if not isinstance(item, Element):
            return
        kind = item.attrib.get("kind")
        peer_id = item.attrib.get("peer")
        if not peer_id:
            return
        if kind == "join" and peer_id not in self._unsubscribe:
            if not self.system.has_peer(peer_id):
                return
            alerter = self.system.peer(peer_id).get_or_create_alerter(self.alerter_function)
            self._unsubscribe[peer_id] = alerter.output.subscribe(self._forward)
        elif kind == "leave" and peer_id in self._unsubscribe:
            self._unsubscribe.pop(peer_id)()

    def _forward(self, item: object) -> None:
        if isinstance(item, Element):
            self.output.emit(item)


class Deployer:
    """Instantiates placed plans on the peers of a :class:`P2PMSystem`."""

    def __init__(self, system: "P2PMSystem", publish_replicas: bool = True) -> None:
        self.system = system
        self.publish_replicas = publish_replicas

    # -- public API -------------------------------------------------------------------

    def deploy(self, plan: PlanNode, sub_id: str, manager_peer: str) -> DeployedTask:
        unplaced = plan.unplaced_nodes()
        if unplaced:
            raise ValueError(
                f"cannot deploy: {len(unplaced)} plan node(s) have no placement"
            )
        task = DeployedTask(sub_id=sub_id, plan=plan, manager_peer=manager_peer)
        self._counter = 0
        if plan.kind == PUBLISH:
            handle = self._deploy_node(plan.children[0], task)
            self._deploy_publisher(plan, handle, task)
        else:
            handle = self._deploy_node(plan, task)
            input_stream = self._local_input(manager_peer, handle, task)
            task.output_stream = input_stream
            task.results = collect(input_stream)
        return task

    # -- node deployment -----------------------------------------------------------------

    def _next_stream_id(self, sub_id: str) -> str:
        self._counter += 1
        return f"{sub_id}.s{self._counter}"

    def _deploy_node(self, node: PlanNode, task: DeployedTask) -> _StreamHandle:
        if node.kind == ALERTER:
            return self._deploy_alerter(node, task)
        if node.kind == EXISTING:
            return _StreamHandle(
                peer_id=node.params.get("provider_peer", node.params["peer"]),
                stream=None,
                stream_id=node.params.get("provider_stream_id", node.params["stream_id"]),
                original=(node.params["peer"], node.params["stream_id"]),
            )
        if node.kind == PUBLISH:
            raise ValueError("publish nodes can only appear at the root of a plan")
        return self._deploy_operator(node, task)

    def _deploy_alerter(self, node: PlanNode, task: DeployedTask) -> _StreamHandle:
        peer = self.system.peer(node.placement)
        function = node.params.get("alerter", "alerter")
        if node.params.get("membership_var"):
            return self._deploy_dynamic_alerter(node, task, peer, function)
        alerter = peer.get_or_create_alerter(function)
        stream_id = alerter.output.stream_id
        peer.ensure_channel(stream_id, alerter.output)
        self.system.stream_db.publish_node(node, peer.peer_id, stream_id, [])
        self._record(task, peer.peer_id, None)
        return _StreamHandle(peer.peer_id, alerter.output, stream_id)

    def _deploy_dynamic_alerter(
        self, node: PlanNode, task: DeployedTask, peer: "P2PMPeer", function: str
    ) -> _StreamHandle:
        # deploy the membership stream (the node's child), then wire the
        # dynamic source to it
        membership_handle = self._deploy_node(node.children[0], task)
        membership_stream = self._local_input(peer.peer_id, membership_handle, task)
        stream_id = self._next_stream_id(task.sub_id)
        output = peer.net.create_stream(stream_id)
        dynamic = DynamicAlerterSource(self.system, function, output)
        membership_stream.subscribe(dynamic.on_membership_alert)
        peer.dynamic_sources.append(dynamic)
        peer.ensure_channel(stream_id, output)
        self.system.stream_db.publish_node(
            node, peer.peer_id, stream_id, [membership_handle.original]
        )
        self._record(task, peer.peer_id, None)
        return _StreamHandle(peer.peer_id, output, stream_id)

    def _deploy_operator(self, node: PlanNode, task: DeployedTask) -> _StreamHandle:
        peer = self.system.peer(node.placement)
        child_handles = [self._deploy_node(child, task) for child in node.children]
        input_streams = [self._local_input(peer.peer_id, handle, task) for handle in child_handles]
        stream_id = self._next_stream_id(task.sub_id)
        output = peer.net.create_stream(stream_id)
        operator = self._make_operator(node, peer, output)
        for stream in input_streams:
            operator.connect(stream)
        peer.operators.append(operator)
        peer.ensure_channel(stream_id, output)
        self.system.stream_db.publish_node(
            node, peer.peer_id, stream_id, [handle.original for handle in child_handles]
        )
        self._record(task, peer.peer_id, operator)
        return _StreamHandle(peer.peer_id, output, stream_id)

    def _make_operator(self, node: PlanNode, peer: "P2PMPeer", output: Stream) -> Operator:
        if node.kind == FILTER:
            return FilterProcessor(
                node.params["subscription"], output, service_registry=peer.service_registry
            )
        if node.kind == UNION:
            return UnionOperator(output)
        if node.kind == JOIN:
            return JoinOperator(
                node.params["left_var"],
                node.params["right_var"],
                node.params["predicate"],
                output,
                window=node.params.get("window"),
            )
        if node.kind == RESTRUCTURE:
            return RestructureOperator(node.params["template"], node.params.get("var"), output)
        if node.kind == DISTINCT:
            return DuplicateRemovalOperator(output=output)
        if node.kind == GROUP:
            key = node.params.get("key")
            if isinstance(key, str):
                key = ValueRef.attribute(node.params.get("var", "item"), key)
            return GroupOperator(key, every=node.params.get("every"), output=output,
                                 default_var=node.params.get("var"))
        raise ValueError(f"cannot instantiate operator for plan node kind {node.kind!r}")

    # -- cross-peer wiring ------------------------------------------------------------------

    def _local_input(
        self, consumer_peer_id: str, handle: _StreamHandle, task: DeployedTask
    ) -> Stream:
        """Return a stream local to ``consumer_peer_id`` carrying ``handle``'s items."""
        if handle.peer_id == consumer_peer_id and handle.stream is not None:
            return handle.stream
        producer = self.system.peer(handle.peer_id)
        if handle.stream is not None:
            producer.ensure_channel(handle.stream_id, handle.stream)
        consumer = self.system.peer(consumer_peer_id)
        proxy = consumer.net.subscribe_channel(handle.peer_id, handle.stream_id)
        task.channels_created.append(f"#{handle.stream_id}@{handle.peer_id}")
        if self.publish_replicas and handle.original[0] != consumer_peer_id:
            # the consumer re-publishes the proxy as a channel, so it genuinely
            # can provide the stream to others, and declares the replica
            consumer.ensure_channel(proxy.stream_id, proxy)
            self.system.stream_db.publish_replica(
                handle.original[0], handle.original[1], consumer_peer_id, proxy.stream_id
            )
        return proxy

    # -- publishers --------------------------------------------------------------------------

    def _deploy_publisher(self, node: PlanNode, handle: _StreamHandle, task: DeployedTask) -> None:
        peer = self.system.peer(node.placement)
        input_stream = self._local_input(peer.peer_id, handle, task)
        task.output_stream = input_stream
        task.results = collect(input_stream)
        mode = node.params.get("mode", "local")
        publisher: Publisher | None = None
        if mode == "channel":
            # channel names are per-peer unique; a second subscription asking
            # for an already-used name gets a suffixed channel
            target = node.params["target"]
            suffix = 2
            while peer.net.channels.publishes(target):
                target = f"{node.params['target']}-{suffix}"
                suffix += 1
            publisher = ChannelPublisher(peer.net, target)
            subscriber = node.params.get("subscriber")
            if subscriber:
                publisher.add_subscriber(subscriber[0])
            task.channels_created.append(f"#{target}@{peer.peer_id}")
        elif mode == "email":
            publisher = EmailPublisher(node.params["target"])
        elif mode == "file":
            publisher = FilePublisher(node.params.get("path"))
        elif mode == "rss":
            publisher = RSSPublisher(node.params["target"])
        elif mode == "webpage":
            publisher = WebPagePublisher(node.params["target"])
        elif mode != "local":
            raise ValueError(f"unknown publication mode {mode!r}")
        if publisher is not None:
            publisher.connect(input_stream)
            peer.publishers.append(publisher)
            self._record(task, peer.peer_id, None)
        task.publisher = publisher

    # -- bookkeeping -----------------------------------------------------------------------------

    @staticmethod
    def _record(task: DeployedTask, peer_id: str, operator: Operator | None) -> None:
        bucket = task.operators_by_peer.setdefault(peer_id, [])
        if operator is not None:
            bucket.append(operator)
