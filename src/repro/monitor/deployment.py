"""Deployment: turning a placed plan into running operators, streams and channels.

Each plan node is instantiated at its assigned peer.  Whenever an operator
consumes a stream produced at a *different* peer, the producer's stream is
published as a channel and the consumer subscribes to it -- exactly the
``send``/``receive`` pairs produced by the algebra's external-invocation
rewrite rule (Section 3.3) and the channels X, Y, M of the Figure 4 plan.
Every deployed stream is described in the Stream Definition Database so that
later subscriptions can reuse it (Section 5).

Deployment is *reversible*: every resource a plan instantiates (operator,
stream, channel, channel subscription, Stream Definition Database
advertisement) registers undo actions in the system's
:class:`~repro.monitor.lifecycle.ResourceLedger`, reference-counted by its
consumers.  Cancelling a subscription releases its references; resources
whose last holder leaves are torn down and their advertisements retracted,
while streams still feeding other subscriptions (Section 5 reuse) survive
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.algebra.operators import (
    DuplicateRemovalOperator,
    FilterProcessor,
    GroupOperator,
    JoinOperator,
    Operator,
    RestructureOperator,
    UnionOperator,
)
from repro.algebra.plan import (
    ALERTER,
    DISTINCT,
    EXISTING,
    FILTER,
    GROUP,
    JOIN,
    PUBLISH,
    RESTRUCTURE,
    UNION,
    PlanNode,
    plan_signature,
)
from repro.algebra.template import ValueRef
from repro.compile import CompiledPipeline
from repro.monitor.control import (
    RPC_CHANNEL_SUBSCRIBE,
    RPC_CHANNEL_UNSUBSCRIBE,
    RPC_DEPLOY_PREPARE,
)
from repro.monitor.lifecycle import DeliveryValve, ResultBuffer, run_all
from repro.net.errors import CircuitOpen
from repro.publishers import Publisher, PublisherContext, create_publisher
from repro.streams.stream import Stream
from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.p2pm_peer import P2PMPeer, P2PMSystem

UndoAction = Callable[[], None]


def _discard(bucket: list, item: object) -> None:
    """Remove ``item`` from ``bucket`` if still present (idempotent teardown)."""
    if item in bucket:
        bucket.remove(item)


@dataclass
class _StreamHandle:
    """Where a deployed (sub)plan's output lives."""

    peer_id: str
    stream: Stream | None
    stream_id: str
    #: canonical identity used in stream descriptions (original, never replica)
    original: tuple[str, str] = ("", "")

    def __post_init__(self) -> None:
        if self.original == ("", ""):
            self.original = (self.peer_id, self.stream_id)


@dataclass
class DeployedTask:
    """A running monitoring task (the deployment-side state of a subscription).

    User code should not reach into this object: the public surface is the
    :class:`~repro.monitor.handle.SubscriptionHandle` returned by
    ``P2PMPeer.subscribe()`` / ``SubscriptionManager.submit()``.
    """

    sub_id: str
    plan: PlanNode
    manager_peer: str
    #: raw plan output at the manager peer (pre-valve)
    output_stream: Stream | None = None
    #: post-valve stream the publisher / result buffer / callbacks consume
    delivery: Stream | None = None
    valve: DeliveryValve | None = None
    results_buffer: ResultBuffer | None = None
    publisher: Publisher | None = None
    operators_by_peer: dict[str, list[Operator]] = field(default_factory=dict)
    channels_created: list[str] = field(default_factory=list)
    #: structural plan signature -> where that node's output channel lives;
    #: ``None`` marks a signature produced by several nodes (ambiguous, so
    #: the epoch handoff skips it).  Lets a recovery redeployment match each
    #: replacement operator to its predecessor's channel even though stream
    #: ids are epoch-namespaced.
    produced: dict[str, tuple[str, str] | None] = field(default_factory=dict)
    reuse_report: object | None = None
    #: terminal teardown actions (valve, publisher, reference releases), run
    #: in order by :meth:`teardown`; shared upstream resources are handled by
    #: the resource ledger's refcounts.
    undo: list[UndoAction] = field(default_factory=list)
    torn_down: bool = False

    @property
    def operator_count(self) -> int:
        return sum(len(ops) for ops in self.operators_by_peer.values())

    def peers_involved(self) -> list[str]:
        return sorted(self.operators_by_peer)

    def teardown(self) -> None:
        """Detach delivery and release every resource reference this task holds.

        All undo actions run even if one fails (the first error is re-raised
        afterwards), so a transient failure cannot strand stale state such as
        an unretracted advertisement.
        """
        if self.torn_down:
            return
        self.torn_down = True
        actions = list(self.undo)
        self.undo.clear()
        run_all(actions)


class DynamicAlerterSource:
    """A source whose monitored peer set follows a membership stream.

    Implements ``for $c in inCOM($j)``: every ``p-join`` event connects the
    corresponding peer's alerter (creating it if needed), every ``p-leave``
    disconnects it ("inCOM removes peers from the collection of monitored
    peers").
    """

    def __init__(self, system: "P2PMSystem", alerter_function: str, output: Stream) -> None:
        self.system = system
        self.alerter_function = alerter_function
        self.output = output
        self._unsubscribe: dict[str, object] = {}

    @property
    def monitored_peers(self) -> list[str]:
        return sorted(self._unsubscribe)

    def on_membership_alert(self, item: object) -> None:
        if not isinstance(item, Element):
            return
        kind = item.attrib.get("kind")
        peer_id = item.attrib.get("peer")
        if not peer_id:
            return
        if kind == "join" and peer_id not in self._unsubscribe:
            if not self.system.has_peer(peer_id):
                return
            alerter = self.system.peer(peer_id).get_or_create_alerter(self.alerter_function)
            self._unsubscribe[peer_id] = alerter.output.subscribe(self._forward)
        elif kind == "leave" and peer_id in self._unsubscribe:
            self._unsubscribe.pop(peer_id)()

    def shutdown(self) -> None:
        """Disconnect from every monitored peer's alerter (teardown)."""
        while self._unsubscribe:
            _, unsubscribe = self._unsubscribe.popitem()
            unsubscribe()

    def _forward(self, item: object) -> None:
        if isinstance(item, Element) and not self.output.closed:
            self.output.emit(item)


class Deployer:
    """Instantiates placed plans on the peers of a :class:`P2PMSystem`."""

    def __init__(self, system: "P2PMSystem", publish_replicas: bool = True) -> None:
        self.system = system
        self.publish_replicas = publish_replicas
        self._counter = 0
        self._epoch = 0
        self._predecessor: DeployedTask | None = None
        #: fusable segments of the plan being deployed, keyed by id(tail
        #: node); populated per deploy() when the system runs compiled
        self._segments: dict[int, list[PlanNode]] = {}
        #: pipelines instantiated during the current deploy(), keyed by
        #: id(tail node) -- how _deploy_operator finds the fused producer of
        #: a stateful consumer's input for probe-side fusion
        self._segment_pipelines: dict[int, CompiledPipeline] = {}

    # -- public API -------------------------------------------------------------------

    def deploy(
        self,
        plan: PlanNode,
        sub_id: str,
        manager_peer: str,
        max_results: int | None = None,
        epoch: int = 0,
        predecessor: DeployedTask | None = None,
    ) -> DeployedTask:
        """Instantiate ``plan``; ``epoch`` > 0 marks a recovery redeployment.

        Each epoch gets its own stream-id namespace so that control messages
        of a dead incarnation (a subscribe or EOS still in flight when a
        peer failed) can never be mistaken for traffic of its replacement.

        ``predecessor`` is the incarnation being replaced (still running:
        redeployment is make-before-break).  With reliable channels each
        replacement operator placed on the same peer as its predecessor
        adopts the orphaned outbox items the dead consumer never acked
        (:meth:`~repro.net.channel.ChannelRegistry.adopt_orphans`), so
        traffic emitted during the detection window survives the epoch
        swap.
        """
        unplaced = plan.unplaced_nodes()
        if unplaced:
            raise ValueError(
                f"cannot deploy: {len(unplaced)} plan node(s) have no placement"
            )
        if self.system.reliable_control:
            self._prepare_placements(plan, sub_id, manager_peer)
        task = DeployedTask(sub_id=sub_id, plan=plan, manager_peer=manager_peer)
        self._counter = 0
        self._epoch = epoch
        self._predecessor = predecessor
        compiler = self.system.compiler
        self._segments = compiler.plan_segments(plan) if compiler is not None else {}
        self._segment_pipelines = {}
        holder = f"sub:{sub_id}"
        if plan.kind == PUBLISH:
            handle = self._deploy_node(plan.children[0], task)
            self._deploy_publisher(plan, handle, task, max_results)
        else:
            handle = self._deploy_node(plan, task)
            sink: list[UndoAction] = []
            input_stream = self._local_input(manager_peer, handle, task, holder, sink)
            self._attach_delivery(task, input_stream, max_results)
            task.undo.extend(sink)
        # the subscription terminal holds the plan's root stream alive
        ledger = self.system.resources
        self._retain_stream(handle.original, holder)
        task.undo.append(lambda: ledger.release(handle.original, holder))
        return task

    def _prepare_placements(self, plan: PlanNode, sub_id: str, manager_peer: str) -> None:
        """Reliable-control prepare handshake: prove every placement is reachable.

        Before instantiating anything the manager round-trips a
        ``deploy.prepare`` RPC to every distinct remote placement peer of the
        plan.  An unreachable or dead peer surfaces as a typed
        :class:`~repro.net.errors.RpcError` *here* -- before any resource is
        created -- so a doomed deployment fails fast instead of leaving a
        partially-wired plan behind.
        """
        placements: set[str] = set()

        def walk(node: PlanNode) -> None:
            if node.placement and node.placement != manager_peer:
                placements.add(node.placement)
            for child in node.children:
                walk(child)

        walk(plan)
        if not placements:
            return
        manager = self.system.peer(manager_peer)
        for peer_id in sorted(placements):
            manager.rpc.call_sync(
                peer_id, RPC_DEPLOY_PREPARE, Element("prepare", {"subId": sub_id})
            )

    # -- node deployment -----------------------------------------------------------------

    def _next_stream_id(self, sub_id: str) -> str:
        self._counter += 1
        if self._epoch:
            return f"{sub_id}.e{self._epoch}.s{self._counter}"
        return f"{sub_id}.s{self._counter}"

    def _retain_stream(self, key: tuple[str, str], holder: str) -> None:
        """Hold a reference on a (possibly foreign) stream's ledger entry."""
        ledger = self.system.resources
        if not ledger.known(key):
            # stream advertised outside this deployer (tests, external
            # systems): track holders, nothing to undo
            ledger.register(key)
        ledger.retain(key, holder)

    def _deploy_node(self, node: PlanNode, task: DeployedTask) -> _StreamHandle:
        if self._segments:
            chain = self._segments.get(id(node))
            if chain is not None:
                return self._deploy_segment(node, chain, task)
        if node.kind == ALERTER:
            return self._deploy_alerter(node, task)
        if node.kind == EXISTING:
            return _StreamHandle(
                peer_id=node.params.get("provider_peer", node.params["peer"]),
                stream=None,
                stream_id=node.params.get("provider_stream_id", node.params["stream_id"]),
                original=(node.params["peer"], node.params["stream_id"]),
            )
        if node.kind == PUBLISH:
            raise ValueError("publish nodes can only appear at the root of a plan")
        return self._deploy_operator(node, task)

    def _deploy_alerter(self, node: PlanNode, task: DeployedTask) -> _StreamHandle:
        peer = self.system.peer(node.placement)
        function = node.params.get("alerter", "alerter")
        if node.params.get("membership_var"):
            return self._deploy_dynamic_alerter(node, task, peer, function)
        alerter = peer.get_or_create_alerter(function)
        stream_id = alerter.output.stream_id
        key = (peer.peer_id, stream_id)
        ledger = self.system.resources
        if ledger.register(key):
            # first subscription over this alerter: publish the channel and
            # the advertisement, and schedule their withdrawal for when the
            # last consumer releases the stream.  The alerter object itself
            # stays hosted (it keeps observing its external system) so a
            # later subscription finds it again.
            created_channel = peer.ensure_channel(stream_id, alerter.output)
            doc_id = self.system.stream_db.publish_node(node, peer.peer_id, stream_id, [])
            if created_channel:
                ledger.add_undo(key, lambda: peer.net.unpublish_channel(stream_id))
            ledger.add_undo(key, lambda: self.system.stream_db.retract(doc_id))
        self._record(task, peer.peer_id, None)
        return _StreamHandle(peer.peer_id, alerter.output, stream_id)

    def _deploy_dynamic_alerter(
        self, node: PlanNode, task: DeployedTask, peer: "P2PMPeer", function: str
    ) -> _StreamHandle:
        # deploy the membership stream (the node's child), then wire the
        # dynamic source to it
        membership_handle = self._deploy_node(node.children[0], task)
        stream_id = self._next_stream_id(task.sub_id)
        key = (peer.peer_id, stream_id)
        holder = f"stream:{stream_id}@{peer.peer_id}"
        ledger = self.system.resources
        ledger.register(key)
        sink: list[UndoAction] = []
        membership_stream = self._local_input(peer.peer_id, membership_handle, task, holder, sink)
        output = peer.net.create_stream(stream_id)
        dynamic = DynamicAlerterSource(self.system, function, output)
        unsubscribe_membership = membership_stream.subscribe(dynamic.on_membership_alert)
        peer.dynamic_sources.append(dynamic)
        created_channel = peer.ensure_channel(stream_id, output)
        self._link_predecessor(node, task, peer.peer_id, stream_id, output)
        doc_id = self.system.stream_db.publish_node(
            node, peer.peer_id, stream_id, [membership_handle.original]
        )
        self._record(task, peer.peer_id, None)
        ledger.add_undo(key, unsubscribe_membership)
        ledger.add_undo(key, dynamic.shutdown)
        ledger.add_undo(key, lambda: _discard(peer.dynamic_sources, dynamic))
        ledger.add_undo(key, output.close)
        if created_channel:
            ledger.add_undo(key, lambda: peer.net.unpublish_channel(stream_id))
        ledger.add_undo(key, lambda: peer.net.drop_stream(stream_id))
        ledger.add_undo(key, lambda: self.system.stream_db.retract(doc_id))
        for action in sink:
            ledger.add_undo(key, action)
        self._retain_stream(membership_handle.original, holder)
        ledger.add_undo(
            key, lambda: ledger.release(membership_handle.original, holder)
        )
        return _StreamHandle(peer.peer_id, output, stream_id)

    def _deploy_operator(self, node: PlanNode, task: DeployedTask) -> _StreamHandle:
        peer = self.system.peer(node.placement)
        child_handles = [self._deploy_node(child, task) for child in node.children]
        stream_id = self._next_stream_id(task.sub_id)
        key = (peer.peer_id, stream_id)
        holder = f"stream:{stream_id}@{peer.peer_id}"
        ledger = self.system.resources
        ledger.register(key)
        sink: list[UndoAction] = []
        input_streams = [
            self._local_input(peer.peer_id, handle, task, holder, sink)
            for handle in child_handles
        ]
        output = peer.net.create_stream(stream_id)
        operator = self._make_operator(node, peer, output)
        for stream in input_streams:
            operator.connect(stream)
        if node.kind in (JOIN, GROUP):
            self._fuse_stateful_consumer(node, operator, child_handles, input_streams)
        peer.operators.append(operator)
        created_channel = peer.ensure_channel(stream_id, output)
        self._link_predecessor(node, task, peer.peer_id, stream_id, output)
        doc_id = self.system.stream_db.publish_node(
            node, peer.peer_id, stream_id, [handle.original for handle in child_handles]
        )
        self._record(task, peer.peer_id, operator)
        # teardown, in order: stop consuming, then withdraw the output
        ledger.add_undo(key, operator.detach)
        ledger.add_undo(key, lambda: _discard(peer.operators, operator))
        ledger.add_undo(key, output.close)
        if created_channel:
            ledger.add_undo(key, lambda: peer.net.unpublish_channel(stream_id))
        ledger.add_undo(key, lambda: peer.net.drop_stream(stream_id))
        ledger.add_undo(key, lambda: self.system.stream_db.retract(doc_id))
        for action in sink:
            ledger.add_undo(key, action)
        for handle in child_handles:
            self._retain_stream(handle.original, holder)
            ledger.add_undo(
                key, lambda k=handle.original: ledger.release(k, holder)
            )
        return _StreamHandle(peer.peer_id, output, stream_id)

    def _fuse_stateful_consumer(
        self,
        node: PlanNode,
        operator: Operator,
        child_handles: list[_StreamHandle],
        input_streams: list[Stream],
    ) -> None:
        """Fuse compiled-pipeline outputs into a JOIN/GROUP's probe side.

        Must run *after* ``operator.connect``: the liveness baseline handed
        to :meth:`CompiledPipeline.fuse_consumer` then counts the operator's
        own subscription, so only later-attached externals (taps, reuse
        consumers) light the boundary up and re-route items through the
        stream.  Fusion applies only when the input *is* the pipeline's tail
        stream itself -- with reliable channels, or across peers, the input
        is a proxy and the interpreted channel machinery must stay in the
        path (Kontra-style per-edge fallback).
        """
        compiler = self.system.compiler
        if compiler is None:
            return
        for index, (child, handle) in enumerate(zip(node.children, child_handles)):
            pipeline = self._segment_pipelines.get(id(child))
            if pipeline is None or handle.stream is not input_streams[index]:
                continue
            probe, probe_batch = operator.compiled_probe(index)
            stream = input_streams[index]
            pipeline.fuse_consumer(
                operator, probe, probe_batch, ((stream, stream.subscriber_count),)
            )
            compiler.stats.record_consumer_fused(node.kind)

    def _deploy_segment(
        self, tail: PlanNode, chain: list[PlanNode], task: DeployedTask
    ) -> _StreamHandle:
        """Deploy a fusable chain (head first) as one :class:`CompiledPipeline`.

        The network-visible footprint is identical to the interpreted chain:
        every node still gets its stream id (same counter order), channel
        publication, Stream Definition Database advertisement, predecessor
        adoption link and ledger entry with the same undo order -- only the
        per-node interpreted operator is replaced by fused stage closures,
        and intermediate boundary streams are written through solely when an
        external consumer is attached.
        """
        peer = self.system.peer(tail.placement)
        compiler = self.system.compiler
        assert compiler is not None
        program = compiler.compile_segment(chain, self._epoch)
        pipeline = CompiledPipeline(
            program, sub_id=task.sub_id, peer_id=peer.peer_id, stats=compiler.stats
        )
        peer.operators.append(pipeline)
        self._segment_pipelines[id(tail)] = pipeline
        ledger = self.system.resources
        prev_handle = self._deploy_node(chain[0].children[0], task)
        for index, node in enumerate(chain):
            stream_id = self._next_stream_id(task.sub_id)
            key = (peer.peer_id, stream_id)
            holder = f"stream:{stream_id}@{peer.peer_id}"
            ledger.register(key)
            sink: list[UndoAction] = []
            input_stream = self._local_input(peer.peer_id, prev_handle, task, holder, sink)
            output = peer.net.create_stream(stream_id)
            unsubscribe = input_stream.subscribe(pipeline.make_entry(index))
            pipeline.attach_entry(index, unsubscribe)
            if index > 0:
                # the continuation for the previous boundary is wired now;
                # snapshot its liveness baselines (channel subscribers are
                # checked directly, they need no baseline)
                prev_boundary_stream = pipeline.boundaries[index - 1].stream
                if input_stream is prev_boundary_stream:
                    watches = ((input_stream, input_stream.subscriber_count),)
                else:  # reliable channels: continuation sits on a local proxy
                    watches = (
                        (prev_boundary_stream, prev_boundary_stream.subscriber_count),
                        (input_stream, input_stream.subscriber_count),
                    )
                pipeline.seal_boundary(index - 1, watches)
            created_channel = peer.ensure_channel(stream_id, output)
            pipeline.add_boundary(output, peer.net.channels.published(stream_id))
            self._link_predecessor(node, task, peer.peer_id, stream_id, output)
            doc_id = self.system.stream_db.publish_node(
                node, peer.peer_id, stream_id, [prev_handle.original]
            )
            self._record(task, peer.peer_id, pipeline if index == 0 else None)
            # teardown mirrors _deploy_operator: stop consuming this node's
            # input, then withdraw its output
            ledger.add_undo(key, lambda i=index: pipeline.detach_stage(i))
            ledger.add_undo(key, lambda: _discard(peer.operators, pipeline))
            ledger.add_undo(key, lambda out=output: out.close())
            if created_channel:
                ledger.add_undo(
                    key, lambda sid=stream_id: peer.net.unpublish_channel(sid)
                )
            ledger.add_undo(key, lambda sid=stream_id: peer.net.drop_stream(sid))
            ledger.add_undo(
                key, lambda d=doc_id: self.system.stream_db.retract(d)
            )
            for action in sink:
                ledger.add_undo(key, action)
            self._retain_stream(prev_handle.original, holder)
            ledger.add_undo(
                key,
                lambda k=prev_handle.original, h=holder: ledger.release(k, h),
            )
            prev_handle = _StreamHandle(peer.peer_id, output, stream_id)
        return prev_handle

    def _link_predecessor(
        self,
        node: PlanNode,
        task: DeployedTask,
        peer_id: str,
        stream_id: str,
        output: Stream,
    ) -> None:
        """Record where ``node``'s output lives; adopt its predecessor's orphans.

        The structural :func:`~repro.algebra.plan.plan_signature` is the
        epoch-stable identity of a plan node (stream ids are namespaced per
        epoch, placements may move).  When a recovery redeployment
        re-instantiates a node on the *same* peer as the incarnation being
        replaced, the retiring channel's dead-subscriber outboxes are handed
        over to the replacement's output stream before teardown can drop
        them.  Signatures produced by several nodes of one plan are marked
        ambiguous and skipped -- a wrong handoff would replay items into an
        unrelated branch.
        """
        sig = plan_signature(node)
        task.produced[sig] = None if sig in task.produced else (peer_id, stream_id)
        if not self.system.reliable_channels or self._predecessor is None:
            return
        prev = self._predecessor.produced.get(sig)
        if prev is not None and prev[0] == peer_id and prev[1] != stream_id:
            self.system.peer(peer_id).net.channels.adopt_orphans(prev[1], output)

    def _make_operator(self, node: PlanNode, peer: "P2PMPeer", output: Stream) -> Operator:
        if node.kind == FILTER:
            return FilterProcessor(
                node.params["subscription"], output, service_registry=peer.service_registry
            )
        if node.kind == UNION:
            return UnionOperator(output)
        if node.kind == JOIN:
            return JoinOperator(
                node.params["left_var"],
                node.params["right_var"],
                node.params["predicate"],
                output,
                window=node.params.get("window"),
            )
        if node.kind == RESTRUCTURE:
            return RestructureOperator(node.params["template"], node.params.get("var"), output)
        if node.kind == DISTINCT:
            return DuplicateRemovalOperator(output=output)
        if node.kind == GROUP:
            key = node.params.get("key")
            if isinstance(key, str):
                key = ValueRef.attribute(node.params.get("var", "item"), key)
            return GroupOperator(key, every=node.params.get("every"), output=output,
                                 default_var=node.params.get("var"))
        raise ValueError(f"cannot instantiate operator for plan node kind {node.kind!r}")

    # -- cross-peer wiring ------------------------------------------------------------------

    def _local_input(
        self,
        consumer_peer_id: str,
        handle: _StreamHandle,
        task: DeployedTask,
        holder: str,
        sink: list[UndoAction],
    ) -> Stream:
        """Return a stream local to ``consumer_peer_id`` carrying ``handle``'s items.

        Cross-peer consumption allocates a channel subscription (and possibly
        a replica advertisement); both are ledger entries shared between every
        local consumer of the same channel, so ``holder``'s release -- queued
        on ``sink`` -- only tears them down when the last consumer leaves.

        With reliable channels even *same-peer* consumption goes through a
        local proxy subscription instead of the direct-stream shortcut:
        takeover claims (:meth:`ChannelRegistry.claim_orphans`) replay into
        the claiming subscriber's proxy, so every consumer -- local or
        remote -- must present one.  With reliable control the subscribe is
        announced over RPC (retried, typed failure) rather than as a
        fire-and-forget message, and the unsubscribe undo follows suit.
        """
        if (
            handle.peer_id == consumer_peer_id
            and handle.stream is not None
            and not self.system.reliable_channels
        ):
            return handle.stream
        producer = self.system.peer(handle.peer_id)
        if handle.stream is not None:
            producer.ensure_channel(handle.stream_id, handle.stream)
        consumer = self.system.peer(consumer_peer_id)
        ledger = self.system.resources
        proxy_key = ("proxy", consumer_peer_id, handle.peer_id, handle.stream_id)
        first_local_consumer = ledger.register(proxy_key)
        channels = consumer.net.channels
        rpc_announced = (
            self.system.reliable_control and handle.peer_id != consumer_peer_id
        )
        newly_subscribed = rpc_announced and not channels.has_subscription(
            handle.peer_id, handle.stream_id
        )
        proxy = channels.subscribe_remote(
            handle.peer_id, handle.stream_id, announce=not rpc_announced
        )
        if newly_subscribed:
            consumer.rpc.call_sync(
                handle.peer_id,
                RPC_CHANNEL_SUBSCRIBE,
                Element(
                    "subscribe",
                    {"channelId": handle.stream_id, "subscriber": consumer_peer_id},
                ),
            )
        task.channels_created.append(f"#{handle.stream_id}@{handle.peer_id}")
        if first_local_consumer:
            if self.publish_replicas and handle.original[0] != consumer_peer_id:
                # the consumer re-publishes the proxy as a channel, so it genuinely
                # can provide the stream to others, and declares the replica
                replica_channel = consumer.ensure_channel(proxy.stream_id, proxy)
                replica_doc = self.system.stream_db.publish_replica(
                    handle.original[0], handle.original[1], consumer_peer_id, proxy.stream_id
                )
                replica_id = (consumer_peer_id, proxy.stream_id)
                self.system.replica_providers[replica_id] = proxy_key
                ledger.add_undo(
                    proxy_key, lambda: self.system.stream_db.retract(replica_doc)
                )
                ledger.add_undo(
                    proxy_key,
                    lambda: self.system.replica_providers.pop(replica_id, None),
                )
                if replica_channel:
                    ledger.add_undo(
                        proxy_key,
                        lambda: consumer.net.unpublish_channel(proxy.stream_id),
                    )
            if rpc_announced:

                def _unsubscribe_via_rpc() -> None:
                    channels.unsubscribe_remote(
                        handle.peer_id, handle.stream_id, announce=False
                    )
                    try:
                        # async: teardown must not block on a slow publisher
                        consumer.rpc.call(
                            handle.peer_id,
                            RPC_CHANNEL_UNSUBSCRIBE,
                            Element(
                                "unsubscribe",
                                {
                                    "channelId": handle.stream_id,
                                    "subscriber": consumer_peer_id,
                                },
                            ),
                        )
                    except CircuitOpen:
                        # publisher believed dead: its subscriber set died
                        # with it, nothing to withdraw from
                        pass

                ledger.add_undo(proxy_key, _unsubscribe_via_rpc)
            else:
                ledger.add_undo(
                    proxy_key,
                    lambda: consumer.net.channels.unsubscribe_remote(
                        handle.peer_id, handle.stream_id
                    ),
                )
            # a replica provider is itself carried by another channel
            # subscription: hold that upstream entry so the transport chain
            # outlives the subscription that first created it
            upstream_key = self.system.replica_providers.get(
                (handle.peer_id, handle.stream_id)
            )
            if upstream_key is not None and upstream_key != proxy_key:
                upstream_holder = f"proxy:{consumer_peer_id}:{handle.peer_id}:{handle.stream_id}"
                ledger.retain(upstream_key, upstream_holder)
                ledger.add_undo(
                    proxy_key,
                    lambda: ledger.release(upstream_key, upstream_holder),
                )
        ledger.retain(proxy_key, holder)
        sink.append(lambda: ledger.release(proxy_key, holder))
        return proxy

    # -- delivery & publishers ---------------------------------------------------------------

    def _attach_delivery(
        self, task: DeployedTask, input_stream: Stream, max_results: int | None
    ) -> None:
        """Insert the pause/resume valve and the (opt-in, bounded) result buffer."""
        task.output_stream = input_stream
        valve = DeliveryValve(input_stream)
        task.valve = valve
        task.delivery = valve.out
        if max_results is not None:
            buffer = ResultBuffer(max_results)
            valve.out.subscribe(buffer.push)
            task.results_buffer = buffer
        task.undo.append(valve.detach)

    def _deploy_publisher(
        self,
        node: PlanNode,
        handle: _StreamHandle,
        task: DeployedTask,
        max_results: int | None,
    ) -> None:
        peer = self.system.peer(node.placement)
        holder = f"sub:{task.sub_id}"
        sink: list[UndoAction] = []
        input_stream = self._local_input(peer.peer_id, handle, task, holder, sink)
        self._attach_delivery(task, input_stream, max_results)
        mode = node.params.get("mode", "local")
        if mode != "local":
            ctx = PublisherContext(
                peer=peer,
                params=node.params,
                system=self.system,
                sub_id=task.sub_id,
                operand=handle.original,
                node=node,
            )
            publisher = create_publisher(mode, ctx)
            publisher.connect(task.delivery)
            peer.publishers.append(publisher)
            task.channels_created.extend(ctx.channels_created)
            self._record(task, peer.peer_id, None)
            task.publisher = publisher
            task.undo.append(publisher.disconnect)
            task.undo.append(lambda: _discard(peer.publishers, publisher))
            task.undo.extend(ctx.undo)
        task.undo.extend(sink)

    # -- bookkeeping -----------------------------------------------------------------------------

    @staticmethod
    def _record(task: DeployedTask, peer_id: str, operator: Operator | None) -> None:
        bucket = task.operators_by_peer.setdefault(peer_id, [])
        if operator is not None:
            bucket.append(operator)
