"""The Subscription Manager (Section 3.1 / Figure 3).

"When a user requests a monitoring task in P2PML, she forwards the
subscription to a peer which becomes Subscription Manager for this
subscription. ... The Subscription Manager is in charge of translating the
subscription into a monitoring plan, optimizing this plan, and then
deploying the optimized plan."

The manager also owns the rest of the subscription's life: ``submit()``
returns a :class:`~repro.monitor.handle.SubscriptionHandle`, and
``cancel()`` / ``pause()`` / ``resume()`` drive the status transitions
recorded in the Subscription Database.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.monitor.deployment import Deployer
from repro.monitor.handle import SubscriptionHandle
from repro.monitor.optimizer import optimize_plan
from repro.monitor.placement import place_plan
from repro.monitor.recovery import prune_dead_sources
from repro.monitor.reuse import ReuseEngine
from repro.monitor.subscription import (
    CANCELLED,
    DEPLOYED,
    PAUSED,
    RECOVERING,
    Subscription,
    SubscriptionDatabase,
    SubscriptionStateError,
)
from repro.p2pml.ast import SubscriptionAST
from repro.p2pml.builder import SubscriptionBuilder
from repro.p2pml.compiler import compile_subscription
from repro.p2pml.parser import parse_subscription

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.p2pm_peer import P2PMPeer


class SubmitManyError(RuntimeError):
    """A batch submission failed partway through.

    Entries before :attr:`index` were fully deployed and **stay live**;
    their handles are on :attr:`handles` so the caller can keep or cancel
    them.  The failing entry itself left no record behind (a failed
    deployment never leaves a phantom), and the entries after it were not
    attempted.  The original error is chained as ``__cause__``.
    """

    def __init__(self, index: int, handles: list[SubscriptionHandle], cause: BaseException):
        super().__init__(
            f"batch submission failed at entry {index} "
            f"({len(handles)} earlier entries deployed and still live): {cause}"
        )
        self.index = index
        self.handles = handles


class SubscriptionManager:
    """Per-peer manager: compile, optimise, reuse, place, deploy and retire."""

    def __init__(self, peer: "P2PMPeer") -> None:
        self.peer = peer
        self.database = SubscriptionDatabase()

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        subscription: str | SubscriptionAST | SubscriptionBuilder,
        sub_id: str | None = None,
        reuse: bool = True,
        push_selections: bool = True,
        max_results: int | None = None,
    ) -> SubscriptionHandle:
        """Accept a subscription and deploy its monitoring task.

        ``subscription`` may be P2PML text, a pre-parsed AST, or a
        :class:`~repro.p2pml.builder.SubscriptionBuilder` -- all compile to
        the same plans.  ``reuse`` and ``push_selections`` exist so that
        benchmarks can measure the effect of disabling the corresponding
        optimisation.  ``max_results`` opts into a bounded result buffer
        readable through ``handle.results()``; without it results are
        consumed via ``handle.on_result()`` or the configured publisher.
        """
        return self._submit_one(
            subscription,
            sub_id,
            engine=self._reuse_engine() if reuse else None,
            deployer=self._deployer(),
            push_selections=push_selections,
            max_results=max_results,
        )

    def submit_many(
        self,
        subscriptions: Sequence[str | SubscriptionAST | SubscriptionBuilder],
        sub_ids: Sequence[str] | None = None,
        reuse: bool = True,
        push_selections: bool = True,
        max_results: int | None = None,
    ) -> list[SubscriptionHandle]:
        """Batch ingestion: deploy many subscriptions through one shared context.

        Equivalent to calling :meth:`submit` in a loop (same handles in the
        same order, same reuse reports, same deployed operators), but the
        whole batch shares one parse cache, one reuse engine (and with it
        the system-wide signature cache), and one deployer, so overlapping
        subscriptions pay the discovery/reuse machinery once instead of once
        each.  Later entries reuse streams deployed by earlier entries of
        the same batch, exactly as sequential submission would.

        A failing entry fails alone: earlier entries stay deployed, and the
        raised :class:`SubmitManyError` carries their handles (and the
        failing index) so the caller can keep or cancel them.
        """
        if sub_ids is not None and len(sub_ids) != len(subscriptions):
            raise ValueError(
                f"sub_ids has {len(sub_ids)} entries for "
                f"{len(subscriptions)} subscriptions"
            )
        engine = self._reuse_engine() if reuse else None
        deployer = self._deployer()
        ast_cache: dict[str, SubscriptionAST] = {}
        handles: list[SubscriptionHandle] = []
        for index, subscription in enumerate(subscriptions):
            try:
                handles.append(
                    self._submit_one(
                        subscription,
                        sub_ids[index] if sub_ids is not None else None,
                        engine=engine,
                        deployer=deployer,
                        push_selections=push_selections,
                        max_results=max_results,
                        ast_cache=ast_cache,
                    )
                )
            except Exception as exc:
                # the already-deployed prefix must not vanish with the
                # traceback: hand its handles to the caller with the error
                raise SubmitManyError(index, handles, exc) from exc
        return handles

    def _reuse_engine(self) -> ReuseEngine:
        system = self.peer.system
        return ReuseEngine(
            system.stream_db,
            network=system.network,
            consumer_peer=self.peer.peer_id,
            signature_cache=system.reuse_cache,
        )

    def _deployer(self) -> Deployer:
        system = self.peer.system
        return Deployer(system, publish_replicas=system.publish_replicas)

    def _submit_one(
        self,
        subscription: str | SubscriptionAST | SubscriptionBuilder,
        sub_id: str | None,
        engine: ReuseEngine | None,
        deployer: Deployer,
        push_selections: bool,
        max_results: int | None,
        ast_cache: dict[str, SubscriptionAST] | None = None,
    ) -> SubscriptionHandle:
        # the sharded runtime freezes deployment once its workers fork
        self.peer.system.runtime.check_mutable("subscribe")
        if isinstance(subscription, str):
            text: str | None = subscription
            ast = ast_cache.get(subscription) if ast_cache is not None else None
            if ast is None:
                ast = parse_subscription(subscription)
                if ast_cache is not None:
                    ast_cache[subscription] = ast
        elif isinstance(subscription, SubscriptionBuilder):
            text = None
            ast = subscription.build()
        else:
            text = None
            ast = subscription
        sub_id = sub_id or self.database.new_id(f"{self.peer.peer_id}.sub")

        plan = compile_subscription(ast, sub_id)
        plan = optimize_plan(plan, push_selections=push_selections)

        reuse_report = None
        if engine is not None:
            # the optimiser handed us a fresh tree: rewrite it in place
            # instead of copying it once more per subscription
            plan, reuse_report = engine.apply(plan, in_place=True)

        # a subscription submitted while peers are down must not place
        # movable operators on them (recovery redeploys the same way)
        place_plan(
            plan,
            manager_peer=self.peer.peer_id,
            load=self.peer.system.placement_load,
            # believed-down plus merely-suspected peers: placing onto a
            # suspect that is then confirmed would trigger an immediate
            # recovery, so suspicion is enough to steer placement away
            avoid=self.peer.system.avoid_peers(),
            colocate=self.peer.system.placement_mode,
        )

        record = Subscription(
            sub_id=sub_id,
            text=text,
            ast=ast,
            plan=plan,
            manager_peer=self.peer.peer_id,
        )
        self.database.add(record)

        try:
            task = deployer.deploy(
                plan, sub_id, manager_peer=self.peer.peer_id, max_results=max_results
            )
        except Exception:
            # a failed deployment must not poison the sub_id with a phantom
            # pending record: the caller may retry under the same id
            self.database.remove(sub_id)
            raise
        task.reuse_report = reuse_report
        record.task = task
        self.database.mark(sub_id, DEPLOYED)
        return SubscriptionHandle(self, record)

    def handle(self, sub_id: str) -> SubscriptionHandle:
        """A (new) handle on an already-registered subscription."""
        return SubscriptionHandle(self, self.database.get(sub_id))

    # -- recovery ---------------------------------------------------------------

    def redeploy(
        self, sub_id: str, down: frozenset[str]
    ) -> tuple[str, tuple[str, ...]]:
        """Redeploy the subscription around ``down`` peers, then retire the old task.

        Called by the :class:`~repro.monitor.recovery.RecoveryManager` while
        the subscription is ``RECOVERING``.  The plan is recompiled from the
        stored AST (reuse is deliberately skipped: advertisements may be
        mid-retraction during a failure), union branches whose source peer
        is down are pruned, and placement avoids every down peer.  Result
        buffers and ``on_result`` callbacks are handed over to the new
        task's delivery stream, so existing handles keep delivering.

        The replacement is deployed *before* the old incarnation is torn
        down (make-before-break): shared resources -- alerter channels in
        particular -- stay refcounted above zero across the swap, so their
        reliable-mode outboxes survive and the replacement's channel
        subscriptions can claim the items the dead consumer never acked
        (:meth:`~repro.net.channel.ChannelRegistry.claim_orphans`).  Tearing
        down first would unpublish those channels and silently drop the
        detection-window traffic with them.

        Returns ``(outcome, pending_sources)`` where outcome is
        ``"deployed"`` (full plan), ``"degraded"`` (some sources pruned) or
        ``"waiting"`` (nothing deployable until a pending source revives).
        """
        record = self.database.get(sub_id)
        old_task = record.task
        # the delivery audience may already be parked from a prior round that
        # ended in "waiting" (nothing was deployable at the time)
        parked = list(record.notes.pop("recovery_parked", []))
        parked_from = list(record.notes.pop("recovery_parked_from", []))
        buffer = record.notes.pop("recovery_buffer", None)
        if old_task is not None:
            if old_task.publisher is not None:
                # the replacement deployment builds its own publisher; the old
                # one must not ride along in the parked audience (results
                # would publish twice after recovery), and any name it owns
                # -- its published channel -- must be free again before the
                # replacement claims it (deployment is make-before-break)
                old_task.publisher.retire()
            if old_task.delivery is not None:
                # hand the delivery audience over before teardown closes the
                # old stream, so nobody observes a spurious EOS
                parked.extend(old_task.delivery.detach_subscribers())
                parked_from.append(old_task.delivery)
            if old_task.results_buffer is not None:
                buffer = old_task.results_buffer
            record.task = None

        def retire_old_task() -> None:
            if old_task is not None:
                try:
                    old_task.teardown()
                except Exception:  # noqa: BLE001 - teardown around a dead peer is best-effort
                    pass

        try:
            plan = compile_subscription(record.ast, sub_id)
            plan = optimize_plan(plan)
            pruned, pending = prune_dead_sources(plan, down)
            if pruned is None:
                record.notes["recovery_parked"] = parked
                record.notes["recovery_parked_from"] = parked_from
                record.notes["recovery_buffer"] = buffer
                retire_old_task()
                return "waiting", tuple(sorted(pending))
            place_plan(
                pruned,
                manager_peer=self.peer.peer_id,
                load=self.peer.system.placement_load,
                avoid=down,
            )
            deployer = self._deployer()
            # each redeployment gets a fresh stream-id epoch, so stale control
            # messages of the dead incarnation cannot reach its replacement
            epoch = int(record.notes.get("recovery_epoch", 0)) + 1
            record.notes["recovery_epoch"] = epoch
            task = deployer.deploy(
                pruned,
                sub_id,
                manager_peer=self.peer.peer_id,
                epoch=epoch,
                predecessor=old_task,
            )
        except Exception:
            # park the delivery audience for the next recovery attempt, or the
            # handle's callbacks and buffer would be lost with the failed task
            record.notes["recovery_parked"] = parked
            record.notes["recovery_parked_from"] = parked_from
            record.notes["recovery_buffer"] = buffer
            retire_old_task()
            raise
        retire_old_task()
        record.plan = pruned
        record.task = task
        if buffer is not None:
            task.results_buffer = buffer
        if parked and task.delivery is not None:
            task.delivery.attach_subscribers(parked)
        if task.delivery is not None:
            # unsubscribers issued against earlier delivery streams follow
            # the chain to wherever their callback lives now
            for origin in parked_from:
                task.delivery.attach_subscribers((), moved_from=origin)
        return ("degraded" if pending else "deployed"), tuple(sorted(pending))

    # -- lifecycle verbs --------------------------------------------------------

    def cancel(self, sub_id: str) -> bool:
        """Retire a subscription: detach, release references, mark cancelled.

        Resources shared with other subscriptions (reused streams, shared
        alerters) survive; everything this subscription exclusively owns is
        torn down and its Stream Definition Database advertisements are
        retracted.  Returns False when the subscription was already
        cancelled.
        """
        self.peer.system.runtime.check_mutable("cancel")
        record = self.database.get(sub_id)
        if record.status == CANCELLED:
            return False
        self.database.mark(sub_id, CANCELLED)
        if record.task is not None:
            record.task.teardown()
        return True

    def pause(self, sub_id: str) -> None:
        """Suspend result delivery; the deployed plan keeps running."""
        self.peer.system.runtime.check_mutable("pause")
        record = self.database.get(sub_id)
        if record.status == PAUSED:
            return
        self.database.mark(sub_id, PAUSED)
        if record.task is not None and record.task.valve is not None:
            record.task.valve.pause()

    def resume(self, sub_id: str) -> None:
        """Restart delivery after :meth:`pause`, without redeployment."""
        self.peer.system.runtime.check_mutable("resume")
        record = self.database.get(sub_id)
        if record.status == DEPLOYED:
            return
        if record.status == RECOVERING:
            raise SubscriptionStateError(
                f"subscription {sub_id!r} is recovering from a peer failure; "
                "delivery resumes automatically once it is redeployed"
            )
        self.database.mark(sub_id, DEPLOYED)
        if record.task is not None and record.task.valve is not None:
            record.task.valve.resume()

    # -- introspection ----------------------------------------------------------

    def active_subscriptions(self) -> list[str]:
        """Ids of subscriptions currently deployed, paused or recovering."""
        return sorted(
            record.sub_id
            for record in (
                self.database.with_status(DEPLOYED)
                + self.database.with_status(PAUSED)
                + self.database.with_status(RECOVERING)
            )
        )


__all__ = ["SubmitManyError", "SubscriptionManager", "SubscriptionStateError"]
