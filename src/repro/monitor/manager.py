"""The Subscription Manager (Section 3.1 / Figure 3).

"When a user requests a monitoring task in P2PML, she forwards the
subscription to a peer which becomes Subscription Manager for this
subscription. ... The Subscription Manager is in charge of translating the
subscription into a monitoring plan, optimizing this plan, and then
deploying the optimized plan."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.monitor.deployment import DeployedTask, Deployer
from repro.monitor.optimizer import optimize_plan
from repro.monitor.placement import place_plan
from repro.monitor.reuse import ReuseEngine
from repro.monitor.subscription import DEPLOYED, Subscription, SubscriptionDatabase
from repro.p2pml.ast import SubscriptionAST
from repro.p2pml.compiler import compile_subscription
from repro.p2pml.parser import parse_subscription

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.p2pm_peer import P2PMPeer


class SubscriptionManager:
    """Per-peer manager: compile, optimise, reuse, place and deploy subscriptions."""

    def __init__(self, peer: "P2PMPeer") -> None:
        self.peer = peer
        self.database = SubscriptionDatabase()

    def submit(
        self,
        subscription: str | SubscriptionAST,
        sub_id: str | None = None,
        reuse: bool = True,
        push_selections: bool = True,
    ) -> DeployedTask:
        """Accept a subscription (text or AST) and deploy its monitoring task.

        ``reuse`` and ``push_selections`` exist so that benchmarks can measure
        the effect of disabling the corresponding optimisation.
        """
        if isinstance(subscription, str):
            text: str | None = subscription
            ast = parse_subscription(subscription)
        else:
            text = None
            ast = subscription
        sub_id = sub_id or self.database.new_id(f"{self.peer.peer_id}.sub")

        plan = compile_subscription(ast, sub_id)
        plan = optimize_plan(plan, push_selections=push_selections)

        reuse_report = None
        if reuse:
            engine = ReuseEngine(
                self.peer.system.stream_db,
                network=self.peer.system.network,
                consumer_peer=self.peer.peer_id,
            )
            plan, reuse_report = engine.apply(plan)

        place_plan(plan, manager_peer=self.peer.peer_id, load=self.peer.system.placement_load)

        deployer = Deployer(self.peer.system, publish_replicas=self.peer.system.publish_replicas)
        task = deployer.deploy(plan, sub_id, manager_peer=self.peer.peer_id)
        task.reuse_report = reuse_report

        record = Subscription(
            sub_id=sub_id,
            text=text,
            ast=ast,
            plan=plan,
            status=DEPLOYED,
            manager_peer=self.peer.peer_id,
        )
        self.database.add(record)
        return task
