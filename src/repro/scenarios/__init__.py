"""Declarative chaos scenarios: topology + workload + fault schedule + invariants.

A :class:`~repro.scenarios.chaos.ChaosScenario` packages everything a
reproducible chaos run needs -- the peer topology, the chaos-feed workload,
a tick-indexed fault schedule (peer failures and revivals, named network
partitions, fault-model swaps, seeded random churn) and the invariants the
run must satisfy ("every alert delivered exactly once after the partition
heals", "no duplicates ever", "the subscription recovers").  Runs are fully
deterministic: the same seed yields a byte-identical network event trace,
pinned by :meth:`ScenarioResult.fingerprint`.

The named scenarios of :mod:`repro.scenarios.catalog` are runnable
one-liners::

    PYTHONPATH=src python scenarios/run_scenario.py partition-heal --seed 7

and the nightly ``chaos-soak`` CI workflow sweeps the (scenario x seed)
matrix with a determinism check.
"""

from repro.scenarios.chaos import (
    ChaosScenario,
    ChurnSpec,
    ScenarioAction,
    ScenarioResult,
)
from repro.scenarios.invariants import INVARIANTS, InvariantResult
from repro.scenarios.catalog import SCENARIOS, make_scenario, scenario_names

__all__ = [
    "ChaosScenario",
    "ChurnSpec",
    "ScenarioAction",
    "ScenarioResult",
    "INVARIANTS",
    "InvariantResult",
    "SCENARIOS",
    "make_scenario",
    "scenario_names",
]
