"""Invariant checks evaluated over a finished chaos-scenario run.

Each invariant is a named predicate over the :class:`ScenarioResult`; a
scenario declares which invariants apply to it (exactly-once only makes
sense when the fault model loses nothing, for example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.chaos import ScenarioResult


@dataclass(frozen=True)
class InvariantResult:
    """Outcome of one invariant check."""

    name: str
    ok: bool
    detail: str


InvariantCheck = Callable[["ScenarioResult"], tuple[bool, str]]


def _no_duplicates(result: "ScenarioResult") -> tuple[bool, str]:
    """No alert identity is ever delivered twice (exactly-once dedup works)."""
    duplicates = len(result.received) - len(set(result.received))
    return duplicates == 0, f"{duplicates} duplicate deliveries"


def _exactly_once(result: "ScenarioResult") -> tuple[bool, str]:
    """Every emitted alert is delivered exactly once (loss-free scenarios).

    Partitions hold messages rather than dropping them, so a scenario whose
    faults are only partitions (plus clean failures between drained ticks)
    must deliver the emitted set exactly.
    """
    emitted = set(result.emitted)
    received = set(result.received)
    missing = emitted - received
    unexpected = received - emitted
    duplicates = len(result.received) - len(received)
    ok = not missing and not unexpected and duplicates == 0
    return ok, (
        f"{len(missing)} missing, {len(unexpected)} unexpected, "
        f"{duplicates} duplicates of {len(emitted)} emitted"
    )


def _recovers(result: "ScenarioResult") -> tuple[bool, str]:
    """The subscription went through RECOVERING and is deployed again at the end."""
    entered = any(event.outcome == "recovering" for event in result.recovery_events)
    redeployed = result.final_status == "deployed"
    return (
        entered and redeployed,
        f"entered-recovering={entered} final-status={result.final_status}",
    )


def _drain_delivered(result: "ScenarioResult") -> tuple[bool, str]:
    """Alerts emitted after every fault healed (the drain phase) all arrive."""
    expected = {pair for pair in result.emitted if pair[1] >= result.drain_start}
    missing = expected - set(result.received)
    return not missing, f"{len(missing)} of {len(expected)} drain-phase alerts missing"


#: Registry of invariant checks, by the name scenarios refer to them with.
INVARIANTS: dict[str, InvariantCheck] = {
    "no-duplicates": _no_duplicates,
    "exactly-once": _exactly_once,
    "recovers": _recovers,
    "drain-delivered": _drain_delivered,
}


def check(name: str, result: "ScenarioResult") -> InvariantResult:
    """Evaluate one named invariant against a scenario result."""
    try:
        checker = INVARIANTS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown invariant {name!r} (known: {', '.join(sorted(INVARIANTS))})"
        ) from exc
    ok, detail = checker(result)
    return InvariantResult(name, ok, detail)
