"""Invariant checks evaluated over a finished chaos-scenario run.

Each invariant is a named predicate over the :class:`ScenarioResult`; a
scenario declares which invariants apply to it (exactly-once only makes
sense when the fault model loses nothing, for example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.chaos import ScenarioResult


@dataclass(frozen=True)
class InvariantResult:
    """Outcome of one invariant check."""

    name: str
    ok: bool
    detail: str


InvariantCheck = Callable[["ScenarioResult"], tuple[bool, str]]


def _no_duplicates(result: "ScenarioResult") -> tuple[bool, str]:
    """No alert identity is ever delivered twice (exactly-once dedup works)."""
    duplicates = len(result.received) - len(set(result.received))
    return duplicates == 0, f"{duplicates} duplicate deliveries"


def _exactly_once(result: "ScenarioResult") -> tuple[bool, str]:
    """Every emitted alert is delivered exactly once (loss-free scenarios).

    Partitions hold messages rather than dropping them, so a scenario whose
    faults are only partitions (plus clean failures between drained ticks)
    must deliver the emitted set exactly.
    """
    emitted = set(result.emitted)
    received = set(result.received)
    missing = emitted - received
    unexpected = received - emitted
    duplicates = len(result.received) - len(received)
    ok = not missing and not unexpected and duplicates == 0
    return ok, (
        f"{len(missing)} missing, {len(unexpected)} unexpected, "
        f"{duplicates} duplicates of {len(emitted)} emitted"
    )


def _survivor_exactly_once(result: "ScenarioResult") -> tuple[bool, str]:
    """Alerts from peers that never failed are delivered exactly once.

    The worker-fault counterpart of ``exactly-once``: peers owned by a
    killed worker are failed over (their alerters die with the process, so
    their in-flight alerts may be lost), but every alert emitted by a peer
    that never appears in a ``fail`` disruption -- scheduled or synthetic --
    must still arrive exactly once, across the failover included.
    """
    failed = {peer for _, action, peer in result.disruptions if action == "fail"}
    emitted = {pair for pair in result.emitted if pair[0] not in failed}
    received = [pair for pair in result.received if pair[0] not in failed]
    missing = emitted - set(received)
    duplicates = len(received) - len(set(received))
    ok = not missing and duplicates == 0
    return ok, (
        f"{len(missing)} missing, {duplicates} duplicates of "
        f"{len(emitted)} survivor alerts (failed peers: {sorted(failed) or 'none'})"
    )


def _worker_failover(result: "ScenarioResult") -> tuple[bool, str]:
    """A lost worker was detected, failed over, and the subscription survived.

    Checks the failover accounting the sharded runtime feeds into
    ``NetworkStats.reliability_snapshot()``: at least one worker loss was
    handled, at least one peer was failed over, every injected fault is on
    record, and the subscription ends the run serving results (``deployed``,
    or ``degraded`` when the dead peers hosted irreplaceable sources).
    """
    counters = result.reliability_counters
    restarts = counters.get("worker_restarts", 0)
    failed_over = counters.get("peers_failed_over", 0)
    status_ok = result.final_status in ("deployed", "degraded")
    ok = (
        restarts >= 1
        and failed_over >= 1
        and bool(result.worker_faults)
        and status_ok
    )
    return ok, (
        f"worker_restarts={restarts} peers_failed_over={failed_over} "
        f"faults_injected={len(result.worker_faults)} "
        f"final-status={result.final_status}"
    )


def _recovers(result: "ScenarioResult") -> tuple[bool, str]:
    """The subscription went through RECOVERING and is deployed again at the end."""
    entered = any(event.outcome == "recovering" for event in result.recovery_events)
    redeployed = result.final_status == "deployed"
    return (
        entered and redeployed,
        f"entered-recovering={entered} final-status={result.final_status}",
    )


def _drain_delivered(result: "ScenarioResult") -> tuple[bool, str]:
    """Alerts emitted after every fault healed (the drain phase) all arrive."""
    expected = {pair for pair in result.emitted if pair[1] >= result.drain_start}
    missing = expected - set(result.received)
    return not missing, f"{len(missing)} of {len(expected)} drain-phase alerts missing"


def _fail_windows(
    result: "ScenarioResult",
) -> list[tuple[int, str, int]]:
    """Each ``fail`` disruption as ``(fail_tick, peer, down_until)``.

    ``down_until`` is the tick of the peer's next scheduled revive, or the
    drain start (where every peer is revived) when none is scheduled.
    """
    revives = [
        (tick, peer)
        for tick, action, peer in result.disruptions
        if action == "revive"
    ]
    windows = []
    for tick, action, peer in result.disruptions:
        if action != "fail":
            continue
        down_until = min(
            (t for t, p in revives if p == peer and t > tick),
            default=result.drain_start,
        )
        windows.append((tick, peer, down_until))
    return windows


def _detects_within(result: "ScenarioResult", bound: int) -> tuple[bool, str]:
    """Every silent kill is confirmed by the detector within ``bound`` ticks.

    A fail whose peer revives before the deadline needs no detection (the
    suspicion debounce is *supposed* to absorb it); any detection not
    attributable to a fail is a false positive.  Vacuously true in oracle
    mode, where there is no detector to measure.
    """
    if result.failure_mode != "detector":
        return True, "oracle mode: no detector to measure"
    unmatched = list(result.detections)
    violations: list[str] = []
    latencies: list[int] = []
    fails = _fail_windows(result)
    for fail_tick, peer, down_until in fails:
        match = next(
            (
                entry
                for entry in unmatched
                if entry[1] == peer and fail_tick < entry[0] <= fail_tick + bound
            ),
            None,
        )
        if match is not None:
            unmatched.remove(match)
            latencies.append(match[0] - fail_tick)
            continue
        if down_until <= fail_tick + bound:
            continue  # revived before the deadline: nothing to detect
        violations.append(f"{peer} failed at {fail_tick}, undetected by {fail_tick + bound}")
    for tick, peer in unmatched:
        if not any(p == peer and t < tick for t, p, _ in fails):
            violations.append(f"false-positive detection of {peer} at tick {tick}")
    detail = (
        f"{len(latencies)} detections, max latency "
        f"{max(latencies) if latencies else 0} ticks (bound {bound})"
    )
    if violations:
        detail += "; " + "; ".join(violations)
    return not violations, detail


def _recovers_within(result: "ScenarioResult", bound: int) -> tuple[bool, str]:
    """Every sustained failure triggers recovery within ``bound`` ticks.

    For each fail whose peer stays down past ``fail_tick + bound`` there
    must be a failure-triggered recovery event for that peer no later than
    the deadline (in detector mode this includes the detection latency; in
    oracle mode recovery is synchronous with the fail).
    """
    violations: list[str] = []
    latencies: list[int] = []
    for fail_tick, peer, down_until in _fail_windows(result):
        if down_until <= fail_tick + bound:
            continue  # revived before the deadline: recovery may never trigger
        hit = next(
            (
                tick
                for tick, trigger, p, _outcome in result.recovery_timeline
                if trigger == "failure" and p == peer
                and fail_tick <= tick <= fail_tick + bound
            ),
            None,
        )
        if hit is None:
            violations.append(
                f"{peer} failed at {fail_tick}: no recovery by {fail_tick + bound}"
            )
        else:
            latencies.append(hit - fail_tick)
    detail = (
        f"{len(latencies)} recoveries, max latency "
        f"{max(latencies) if latencies else 0} ticks (bound {bound})"
    )
    if violations:
        detail += "; " + "; ".join(violations)
    return not violations, detail


#: Registry of invariant checks, by the name scenarios refer to them with.
INVARIANTS: dict[str, InvariantCheck] = {
    "no-duplicates": _no_duplicates,
    "exactly-once": _exactly_once,
    "survivor-exactly-once": _survivor_exactly_once,
    "worker-failover": _worker_failover,
    "recovers": _recovers,
    "drain-delivered": _drain_delivered,
}

#: Parametric invariants: referred to as ``<name>:<bound>``, e.g.
#: ``detects-within:4``.
PARAMETRIC_INVARIANTS: dict[str, Callable[["ScenarioResult", int], tuple[bool, str]]] = {
    "detects-within": _detects_within,
    "recovers-within": _recovers_within,
}


def check(name: str, result: "ScenarioResult") -> InvariantResult:
    """Evaluate one named invariant against a scenario result."""
    if ":" in name:
        base, _, argument = name.partition(":")
        parametric = PARAMETRIC_INVARIANTS.get(base)
        if parametric is not None:
            ok, detail = parametric(result, int(argument))
            return InvariantResult(name, ok, detail)
    try:
        checker = INVARIANTS[name]
    except KeyError as exc:
        known = sorted(INVARIANTS) + [f"{n}:<D>" for n in sorted(PARAMETRIC_INVARIANTS)]
        raise ValueError(
            f"unknown invariant {name!r} (known: {', '.join(known)})"
        ) from exc
    ok, detail = checker(result)
    return InvariantResult(name, ok, detail)
