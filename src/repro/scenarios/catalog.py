"""Named chaos scenarios: the reproducible one-liners CI sweeps nightly.

Each entry is a factory taking a seed, so the soak matrix (scenarios x
seeds) is just two nested loops.  Add a scenario here and the nightly
``chaos-soak`` workflow picks it up automatically (it asks
``run_scenario.py --list``).
"""

from __future__ import annotations

from typing import Callable

from repro.net.faults import FaultModel
from repro.net.supervisor import SupervisorConfig
from repro.scenarios.chaos import ChaosScenario, ChurnSpec, ScenarioAction

ScenarioFactory = Callable[[int], ChaosScenario]


def _worker_shard_assigner(peer_id: str, shards: int) -> int | None:
    """Pin the monitor to shard 0 and spread sources over the other shards.

    Worker-fault scenarios need a topology where killing one worker takes
    down *some* sources but never the monitor (whose shard holds the
    subscription manager and the result delivery), for every seed alike.
    """
    if peer_id == "monitor":
        return 0
    if peer_id.startswith("s") and peer_id[1:].isdigit():
        return 1 + int(peer_id[1:]) % (shards - 1)
    return None


def _partition_heal(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="partition-heal",
        seed=seed,
        n_sources=3,
        ticks=24,
        schedule=(
            ScenarioAction(
                6,
                "partition",
                {"name": "split", "groups": [["@monitor"], ["@sources"]]},
            ),
            ScenarioAction(14, "heal", "split"),
        ),
        invariants=("exactly-once", "no-duplicates"),
        description=(
            "The monitor is cut off from every source for 8 ticks; held "
            "messages must all arrive exactly once after the heal."
        ),
    )


def _churn_failover(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="churn-failover",
        seed=seed,
        n_sources=3,
        ticks=26,
        schedule=(
            ScenarioAction(
                4,
                "partition",
                {"name": "split", "groups": [["@monitor"], ["@sources"]]},
            ),
            ScenarioAction(9, "heal", "split"),
            ScenarioAction(13, "fail", "@union-host"),
            ScenarioAction(20, "revive", "@union-host"),
        ),
        invariants=("exactly-once", "no-duplicates", "recovers"),
        description=(
            "A partition heals, then the peer hosting the plan's union "
            "operator fails: the subscription must reach RECOVERING, "
            "redeploy on the surviving sources, keep delivering, and regain "
            "full coverage when the peer revives -- with no duplicate and "
            "no lost alerts."
        ),
    )


def _flaky_network(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="flaky-network",
        seed=seed,
        n_sources=4,
        ticks=30,
        schedule=(
            ScenarioAction(
                2,
                "faults",
                FaultModel(
                    duplication_rate=0.3, jitter=0.05, bandwidth=50_000.0
                ),
            ),
        ),
        invariants=("exactly-once", "no-duplicates"),
        description=(
            "Heavy duplication, reordering jitter and finite bandwidth from "
            "tick 2 on: the channel layer's sequence-number dedup must keep "
            "delivery exactly-once."
        ),
    )


def _lossy_network(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="lossy-network",
        seed=seed,
        n_sources=4,
        ticks=30,
        schedule=(
            ScenarioAction(2, "faults", FaultModel(loss_rate=0.1, jitter=0.02)),
            ScenarioAction(26, "clear-faults"),
        ),
        invariants=("no-duplicates", "drain-delivered"),
        description=(
            "10% message loss: alerts may vanish (no retransmission below "
            "the channel layer) but never duplicate, and delivery is intact "
            "again once the loss stops."
        ),
    )


def _churn_soak(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="churn-soak",
        seed=seed,
        n_sources=5,
        ticks=40,
        drain_ticks=5,
        churn=ChurnSpec(fail_rate=0.25, revive_rate=0.4, max_down=2),
        invariants=("no-duplicates", "recovers", "drain-delivered"),
        description=(
            "Seeded random churn fails and revives sources for 40 ticks; "
            "the subscription must keep recovering and deliver everything "
            "emitted once the network settles."
        ),
    )


def _silent_kill(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="silent-kill",
        seed=seed,
        n_sources=4,
        ticks=26,
        schedule=(
            ScenarioAction(8, "fail", "@union-host"),
            ScenarioAction(18, "revive", "@union-host"),
        ),
        invariants=(
            "exactly-once",
            "no-duplicates",
            "recovers",
            "detects-within:4",
            "recovers-within:4",
        ),
        description=(
            "The union-hosting peer is killed *silently* (no lifecycle "
            "notification): the heartbeat detector must confirm the death "
            "within its latency bound, drive redeployment on survivors, and "
            "reintegrate the peer through the rejoin handshake when it "
            "silently returns -- no lost and no duplicate alerts."
        ),
    )


def _lossy_control_plane(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="lossy-control-plane",
        seed=seed,
        n_sources=4,
        ticks=24,
        reliable_control=True,
        apply_faults_before_subscribe=True,
        fault_model=FaultModel(loss_rate=0.1, jitter=0.02),
        schedule=(ScenarioAction(20, "clear-faults"),),
        invariants=("no-duplicates", "drain-delivered"),
        description=(
            "10% message loss from before the subscription is even "
            "submitted: deployment control (index publications, channel "
            "subscribes, placement prepare) rides the retrying RPC layer, "
            "so the subscription either deploys fully and keeps delivering "
            "or fails with a typed error -- never a silent partial "
            "deployment."
        ),
    )


def _worker_crash(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="worker-crash",
        seed=seed,
        n_sources=4,
        ticks=16,
        runtime="sharded",
        shards=3,
        failure_mode="oracle",
        shard_assigner=_worker_shard_assigner,
        schedule=(ScenarioAction(8, "worker-kill", "@owner-of:s0"),),
        invariants=(
            "no-duplicates",
            "survivor-exactly-once",
            "recovers-within:1",
            "worker-failover",
        ),
        description=(
            "The worker process owning source s0 is SIGKILLed mid-run (a "
            "real crash, no cleanup): the supervisor must classify the loss, "
            "fail over every peer the shard owned within one tick, and keep "
            "the survivors' alerts flowing exactly-once with no duplicate "
            "ever -- and the run must terminate (no hang) with the failover "
            "counters on record."
        ),
    )


def _worker_hang(seed: int) -> ChaosScenario:
    return ChaosScenario(
        name="worker-hang",
        seed=seed,
        n_sources=4,
        ticks=14,
        runtime="sharded",
        shards=3,
        failure_mode="oracle",
        shard_assigner=_worker_shard_assigner,
        supervisor_config=SupervisorConfig(turn_timeout=2.0, poll_interval=0.02),
        schedule=(ScenarioAction(7, "worker-hang", "@owner-of:s0"),),
        invariants=(
            "no-duplicates",
            "survivor-exactly-once",
            "recovers-within:1",
            "worker-failover",
        ),
        description=(
            "The worker owning source s0 wedges in an uninterruptible sleep: "
            "only the supervisor's turn deadline can notice.  The straggler "
            "must be killed and failed over like a crash -- the epoch "
            "protocol may stall for at most the configured turn timeout, "
            "never forever."
        ),
    )


SCENARIOS: dict[str, ScenarioFactory] = {
    "partition-heal": _partition_heal,
    "churn-failover": _churn_failover,
    "flaky-network": _flaky_network,
    "lossy-network": _lossy_network,
    "churn-soak": _churn_soak,
    "silent-kill": _silent_kill,
    "lossy-control-plane": _lossy_control_plane,
    "worker-crash": _worker_crash,
    "worker-hang": _worker_hang,
}


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


#: Scenarios the sharded runtime can execute: no peer churn (fail/revive
#: raise once the shard workers fork) and no reliable control plane.
SHARDABLE_SCENARIOS = ("partition-heal", "flaky-network", "lossy-network")


def make_scenario(
    name: str,
    seed: int = 0,
    failure_mode: str | None = None,
    execution_mode: str | None = None,
    runtime: str | None = None,
    shards: int = 0,
) -> ChaosScenario:
    """Instantiate a named scenario for the given seed.

    ``failure_mode`` overrides the scenario's default (``detector``):
    golden-trace tests pin ``oracle`` to keep the legacy byte-identical
    traces, and A/B comparisons run the same scenario in both modes.
    ``execution_mode`` selects interpreted (default) or compiled plan
    execution; the compiled differential suite runs every scenario in both
    and asserts identical fingerprints.  ``runtime="sharded"`` partitions
    the peers across ``shards`` worker processes -- only scenarios in
    :data:`SHARDABLE_SCENARIOS` qualify (no peer churn), and the failure
    mode is forced to ``oracle`` (the sharded v1 restriction).
    """
    try:
        factory = SCENARIOS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown scenario {name!r} (known: {', '.join(scenario_names())})"
        ) from exc
    scenario = factory(seed)
    if failure_mode is not None and scenario.runtime != "sharded":
        scenario.failure_mode = failure_mode
    if execution_mode is not None:
        scenario.execution_mode = execution_mode
    if scenario.runtime == "sharded":
        # inherently sharded (worker-fault) scenarios: the fault *is* a
        # worker process, so there is no single-process variant to fall
        # back to -- only the shard count can be overridden
        if runtime == "single":
            raise ValueError(
                f"scenario {name!r} injects worker faults and only runs "
                "sharded"
            )
        if shards:
            scenario.shards = shards
    elif runtime is not None and runtime != "single":
        if name not in SHARDABLE_SCENARIOS:
            raise ValueError(
                f"scenario {name!r} cannot run sharded (peer churn or a "
                f"reliable control plane); shardable: {', '.join(SHARDABLE_SCENARIOS)}"
            )
        scenario.runtime = runtime
        scenario.shards = shards or 2
        scenario.failure_mode = "oracle"
        scenario.reliable_control = False
    return scenario
