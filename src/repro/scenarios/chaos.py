"""The chaos-scenario engine: build, disrupt, drain, check.

A scenario deploys one chaos-feed subscription over ``n_sources`` source
peers plus a monitor peer, then advances in *ticks*.  Every tick:

1. the fault schedule's actions for this tick are applied (peer failures
   and revivals, partitions and heals, fault-model swaps, seeded churn);
2. the control plane settles (pending messages are delivered -- unless a
   partition holds them);
3. every alive source emits one uniquely numbered alert;
4. the network drains again.

After the last tick the scenario *heals*: every partition is lifted, every
failed peer revived, the fault model cleared, and a few drain ticks run so
"eventually delivered" invariants are checkable.  The whole run is
deterministic -- same seed, same schedule => byte-identical event trace.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.algebra.plan import UNION
from repro.monitor.p2pm_peer import P2PMSystem
from repro.net.faults import FaultModel
from repro.scenarios.invariants import InvariantResult, check as check_invariant
from repro.workloads.chaos_feed import CHAOS_FUNCTION, ChaosFeedWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.handle import SubscriptionHandle
    from repro.monitor.recovery import RecoveryEvent


@dataclass(frozen=True)
class ScenarioAction:
    """One scheduled disruption.

    ``action`` is one of ``fail``, ``revive``, ``partition``, ``heal``,
    ``faults``, ``clear-faults`` or (sharded runs only) ``worker-kill``,
    ``worker-hang``, ``worker-corrupt``.  Peer targets may use the symbolic
    names ``@monitor``, ``@union-host`` (the peer hosting the plan's union
    operator at that moment) or a concrete peer id; partition targets are
    ``{"name": ..., "groups": [[...], [...]]}`` where groups may contain
    ``@monitor`` / ``@sources`` / peer ids.  Worker-fault targets are a
    shard index or ``"@owner-of:<peer>"`` (the shard owning that peer); the
    fault is armed and fires at the start of the tick's settle run, before
    this tick's alerts are emitted.
    """

    tick: int
    action: str
    target: object = None


@dataclass(frozen=True)
class ChurnSpec:
    """Seeded random churn over the source peers.

    Each tick draws (from the scenario's churn RNG, independent of topology
    and fault RNGs) whether to revive a down source and whether to fail an
    alive one; at most ``max_down`` sources are down simultaneously and at
    least one source always survives.
    """

    fail_rate: float = 0.15
    revive_rate: float = 0.4
    max_down: int = 1


@dataclass
class ScenarioResult:
    """Everything a finished run exposes to invariants, tests and the CLI."""

    name: str
    seed: int
    ticks: int
    drain_start: int
    emitted: list[tuple[str, int]]
    received: list[tuple[str, int]]
    final_status: str
    recovery_events: list["RecoveryEvent"]
    disruptions: list[tuple[int, str, str]]
    event_log: tuple[str, ...]
    network_counters: dict[str, int]
    #: how the run noticed failures: ``detector`` (heartbeats) or ``oracle``
    failure_mode: str = "detector"
    #: (scenario tick, peer) failure-detector confirmations, in order
    detections: list[tuple[int, str]] = field(default_factory=list)
    #: (scenario tick, peer) detector rejoin handshakes, in order
    rejoins: list[tuple[int, str]] = field(default_factory=list)
    #: (scenario tick, trigger, peer, outcome) recovery events, in order
    recovery_timeline: list[tuple[int, str, str, str]] = field(default_factory=list)
    reliability_counters: dict[str, int] = field(default_factory=dict)
    #: (epoch, kind, shard) worker faults actually injected (sharded runs)
    worker_faults: list[tuple[int, str, int]] = field(default_factory=list)
    invariants: list[InvariantResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.invariants)

    @property
    def fingerprint(self) -> str:
        """SHA-256 over the event trace and the delivered sequence.

        Two runs of the same scenario with the same seed must produce the
        same fingerprint -- the golden-trace determinism guarantee.
        """
        payload = "\n".join(self.event_log)
        payload += "||" + repr(self.received) + "||" + self.final_status
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def summary(self) -> dict[str, object]:
        return {
            "scenario": self.name,
            "seed": self.seed,
            "ticks": self.ticks,
            "emitted": len(self.emitted),
            "received": len(self.received),
            "duplicates": len(self.received) - len(set(self.received)),
            "final_status": self.final_status,
            "recovery_events": [
                {
                    "trigger": event.trigger,
                    "peer": event.peer_id,
                    "outcome": event.outcome,
                    "pending": list(event.pending_sources),
                }
                for event in self.recovery_events
            ],
            "disruptions": [list(entry) for entry in self.disruptions],
            "failure_mode": self.failure_mode,
            "detections": [list(entry) for entry in self.detections],
            "rejoins": [list(entry) for entry in self.rejoins],
            "recovery_timeline": [list(entry) for entry in self.recovery_timeline],
            "network": dict(self.network_counters),
            "reliability": dict(self.reliability_counters),
            "worker_faults": [list(entry) for entry in self.worker_faults],
            "fingerprint": self.fingerprint,
            "invariants": [
                {"name": inv.name, "ok": inv.ok, "detail": inv.detail}
                for inv in self.invariants
            ],
            "ok": self.ok,
        }


@dataclass
class ChaosScenario:
    """A reproducible chaos run: topology + workload + schedule + invariants."""

    name: str
    seed: int = 0
    n_sources: int = 3
    ticks: int = 20
    drain_ticks: int = 4
    schedule: tuple[ScenarioAction, ...] = ()
    fault_model: FaultModel | None = None
    churn: ChurnSpec | None = None
    invariants: tuple[str, ...] = ("no-duplicates",)
    description: str = ""
    #: how the system notices failures.  ``detector`` (the default) makes
    #: every fail/revive *silent* -- the system only has its heartbeats;
    #: ``oracle`` restores the legacy synchronous lifecycle notifications
    failure_mode: str = "detector"
    #: route Stream Definition DB + deployment control over retrying RPC
    reliable_control: bool = False
    #: install the fault model before the subscription is submitted, so the
    #: control plane itself runs over the faulty network
    apply_faults_before_subscribe: bool = False
    #: "interpreted" (default) or "compiled" (fused pipeline closures); the
    #: differential suite pins both modes to identical fingerprints
    execution_mode: str = "interpreted"
    #: "single" (default) or "sharded" (peer set partitioned across worker
    #: processes).  Sharded runs require ``failure_mode="oracle"`` and a
    #: schedule without peer churn; equivalence is stated over the received
    #: multiset, not the event-log fingerprint (per-shard logs interleave).
    runtime: str = "single"
    shards: int = 0
    #: optional ``(peer_id, shards) -> shard | None`` placement override for
    #: sharded runs; worker-fault scenarios pin the topology so the same
    #: shard owns the same peers for every seed
    shard_assigner: object = None
    #: optional :class:`~repro.net.supervisor.SupervisorConfig`; worker-hang
    #: scenarios tighten ``turn_timeout`` so the run stays fast
    supervisor_config: object = None

    # -- execution ---------------------------------------------------------------

    def run(self) -> ScenarioResult:
        system = P2PMSystem(
            seed=self.seed,
            failure_mode=self.failure_mode,
            reliable_control=self.reliable_control,
            execution_mode=self.execution_mode,
            runtime=self.runtime,
            shards=self.shards,
            shard_assigner=self.shard_assigner,
            supervisor_config=self.supervisor_config,
        )
        sources = [f"s{i}" for i in range(self.n_sources)]
        for source in sources:
            system.add_peer(source)
        monitor = system.add_peer("monitor")
        system.network.record_events = True

        if self.apply_faults_before_subscribe and self.fault_model is not None:
            system.set_fault_model(self.fault_model)
        handle = monitor.subscribe(
            self._subscription_text(sources), sub_id=f"{self.name}-sub"
        )
        system.run()
        if self.fault_model is not None and not self.apply_faults_before_subscribe:
            system.set_fault_model(self.fault_model)

        received: list[tuple[str, int]] = []

        def collect(item) -> None:
            received.append((item.find("src").text, int(item.find("n").text)))

        handle.on_result(collect)
        # hand execution to the runtime backend (a no-op for "single"; forks
        # the shard workers for "sharded" -- callbacks are attached above so
        # the workers know this subscription's items must ship back)
        system.start_runtime()

        workload = ChaosFeedWorkload(sources)
        churn_rng = random.Random(f"{self.seed}:churn")
        disruptions: list[tuple[int, str, str]] = []
        detections: list[tuple[int, str]] = []
        rejoins: list[tuple[int, str]] = []
        recovery_timeline: list[tuple[int, str, str, str]] = []
        timeline_marks = [0, 0, 0, 0]

        def drain_timelines(tick: int) -> None:
            """Attribute new detector/recovery entries to scenario ``tick``."""
            detector = system.detector
            if detector is not None:
                for _, peer_id in detector.confirmations[timeline_marks[0]:]:
                    detections.append((tick, peer_id))
                timeline_marks[0] = len(detector.confirmations)
                for _, peer_id in detector.rejoins[timeline_marks[1]:]:
                    rejoins.append((tick, peer_id))
                timeline_marks[1] = len(detector.rejoins)
            for event in system.recovery.events[timeline_marks[2]:]:
                recovery_timeline.append(
                    (tick, event.trigger, event.peer_id, event.outcome)
                )
            timeline_marks[2] = len(system.recovery.events)
            # peers the sharded runtime failed over after losing their worker
            # become synthetic ``fail`` disruptions, so window-based
            # invariants (``recovers-within``) see worker crashes exactly
            # like scheduled peer failures
            failed_over = getattr(system.runtime, "failed_over_peers", None)
            if failed_over is not None:
                for peer_id in failed_over[timeline_marks[3]:]:
                    disruptions.append((tick, "fail", peer_id))
                timeline_marks[3] = len(failed_over)

        for tick in range(self.ticks):
            for action in self.schedule:
                if action.tick == tick:
                    self._apply(system, handle, sources, action, tick, disruptions)
            if self.churn is not None:
                self._churn_step(system, sources, churn_rng, tick, disruptions)
            system.tick()  # heartbeats + channel retransmissions (detector mode)
            system.run()  # settle the control plane before emitting
            workload.tick(system, tick)
            system.run()
            drain_timelines(tick)

        # drain: lift every fault, then keep emitting so "eventually
        # delivered" invariants have something to check
        drain_start = self.ticks
        system.set_fault_model(None)
        for partition_name in list(system.network.active_partitions):
            system.heal(partition_name)
        for peer_id in sorted(system.down_peers()):
            try:
                system.revive_peer(peer_id)
            except RuntimeError:
                # sharded runs freeze the peer lifecycle after start: peers
                # failed over because their worker died stay down (their
                # process is gone), so the heal phase checks survivors only
                continue
        system.run()
        for tick in range(self.ticks, self.ticks + self.drain_ticks):
            # detector-mode revivals reintegrate through the rejoin
            # handshake, which needs detector rounds to be heard
            system.tick()
            system.run()
            workload.tick(system, tick)
            system.run()
            drain_timelines(tick)
        system.run()
        system.shutdown()

        result = ScenarioResult(
            name=self.name,
            seed=self.seed,
            ticks=self.ticks,
            drain_start=drain_start,
            emitted=list(workload.emitted),
            received=received,
            final_status=handle.status,
            recovery_events=list(system.recovery.events),
            disruptions=disruptions,
            event_log=tuple(system.network.event_log),
            network_counters={
                "messages": system.network.stats.total_messages,
                "lost": system.network.messages_lost,
                "duplicated": system.network.messages_duplicated,
                "held": system.network.messages_held,
                "dropped_peer_down": system.network.messages_dropped_peer_down,
            },
            failure_mode=self.failure_mode,
            detections=detections,
            rejoins=rejoins,
            recovery_timeline=recovery_timeline,
            reliability_counters=system.network.stats.reliability_snapshot(),
            worker_faults=(
                list(system.runtime.fault_injector.injected)
                if getattr(system.runtime, "fault_injector", None) is not None
                else []
            ),
        )
        result.invariants = [
            check_invariant(name, result) for name in self.invariants
        ]
        return result

    # -- internals ---------------------------------------------------------------

    def _subscription_text(self, sources: list[str]) -> str:
        peers = " ".join(f"<p>{source}</p>" for source in sources)
        return (
            f"for $x in {CHAOS_FUNCTION}({peers}) "
            'where $x.kind = "chaos" '
            "return <seen><src>{$x.source}</src><n>{$x.n}</n></seen>"
        )

    def _apply(
        self,
        system: P2PMSystem,
        handle: "SubscriptionHandle",
        sources: list[str],
        action: ScenarioAction,
        tick: int,
        disruptions: list[tuple[int, str, str]],
    ) -> None:
        if action.action == "fail":
            peer_id = self._resolve_peer(action.target, handle, sources)
            if system.is_alive(peer_id):
                system.fail_peer(peer_id)
                disruptions.append((tick, "fail", peer_id))
        elif action.action == "revive":
            peer_id = self._resolve_peer(action.target, handle, sources)
            if not system.network.is_alive(peer_id):
                system.revive_peer(peer_id)
                disruptions.append((tick, "revive", peer_id))
        elif action.action == "partition":
            assert isinstance(action.target, dict)
            name = str(action.target["name"])
            groups = [
                self._resolve_group(group, sources)
                for group in action.target["groups"]
            ]
            system.partition(name, *groups)
            disruptions.append((tick, "partition", name))
        elif action.action == "heal":
            system.heal(str(action.target))
            disruptions.append((tick, "heal", str(action.target)))
        elif action.action == "faults":
            assert isinstance(action.target, FaultModel)
            system.set_fault_model(action.target)
            disruptions.append((tick, "faults", repr(action.target)))
        elif action.action == "clear-faults":
            system.set_fault_model(None)
            disruptions.append((tick, "clear-faults", ""))
        elif action.action in ("worker-kill", "worker-hang", "worker-corrupt"):
            kind = action.action.removeprefix("worker-")
            shard = self._resolve_shard(system, action.target)
            system.runtime.inject_worker_fault(kind, shard)
            disruptions.append((tick, action.action, f"shard:{shard}"))
        else:
            raise ValueError(f"unknown scenario action {action.action!r}")

    def _resolve_shard(self, system: P2PMSystem, target: object) -> int:
        """Resolve a worker-fault target to a shard index.

        Accepts a shard index directly, or ``"@owner-of:<peer>"`` naming the
        shard that owns a peer -- scenarios usually care about *whose*
        pipelines die, not about shard numbering.
        """
        runtime = system.runtime
        if not hasattr(runtime, "inject_worker_fault"):
            raise ValueError(
                "worker-fault actions need runtime='sharded' "
                f"(got {self.runtime!r})"
            )
        if isinstance(target, str) and target.startswith("@owner-of:"):
            return runtime.shard_for(target.removeprefix("@owner-of:"))
        return int(target)  # type: ignore[call-overload]

    def _resolve_peer(
        self, target: object, handle: "SubscriptionHandle", sources: list[str]
    ) -> str:
        if target == "@monitor":
            return "monitor"
        if target == "@union-host":
            plan = handle.plan
            if plan is not None:
                unions = plan.find_all(UNION)
                if unions and unions[0].placement:
                    return str(unions[0].placement)
            return sources[0]
        return str(target)

    def _resolve_group(self, group: list[str], sources: list[str]) -> list[str]:
        peers: list[str] = []
        for entry in group:
            if entry == "@monitor":
                peers.append("monitor")
            elif entry == "@sources":
                peers.extend(sources)
            else:
                peers.append(entry)
        return peers

    def _churn_step(
        self,
        system: P2PMSystem,
        sources: list[str],
        rng: random.Random,
        tick: int,
        disruptions: list[tuple[int, str, str]],
    ) -> None:
        assert self.churn is not None
        down = [source for source in sources if not system.network.is_alive(source)]
        if down and rng.random() < self.churn.revive_rate:
            peer_id = rng.choice(down)
            system.revive_peer(peer_id)
            disruptions.append((tick, "revive", peer_id))
        alive = [source for source in sources if system.network.is_alive(source)]
        down_count = len(sources) - len(alive)
        if (
            down_count < self.churn.max_down
            and len(alive) > 1
            and rng.random() < self.churn.fail_rate
        ):
            peer_id = rng.choice(alive)
            system.fail_peer(peer_id)
            disruptions.append((tick, "fail", peer_id))
