"""Monitoring plans: the operator DAG produced by compiling a subscription.

A plan is a tree of :class:`PlanNode` objects.  Leaves are alerters (stream
sources) or references to existing streams (after reuse); inner nodes are
stream processors; the root is normally a publisher.  Each node carries a
``placement`` -- the peer that will run it -- which is ``None`` (the paper's
``@any``) until the placement phase assigns a concrete peer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.xmlmodel.serialize import to_xml

# Node kinds
ALERTER = "alerter"
EXISTING = "existing"  # reuse of an already published stream
FILTER = "filter"
UNION = "union"
JOIN = "join"
RESTRUCTURE = "restructure"
DISTINCT = "distinct"
GROUP = "group"
PUBLISH = "publish"

KINDS = (ALERTER, EXISTING, FILTER, UNION, JOIN, RESTRUCTURE, DISTINCT, GROUP, PUBLISH)


@dataclass(slots=True)
class PlanNode:
    """One operator of a monitoring plan.

    Nodes are slotted: reuse probing touches every node of every submitted
    plan, so the per-node footprint and attribute-lookup cost matter.
    ``params`` is treated as immutable after construction (rewrites build new
    nodes or swap whole ``children`` lists instead), which is what makes the
    cached signature detail and operator spec below safe.
    """

    kind: str
    params: dict = field(default_factory=dict)
    children: list["PlanNode"] = field(default_factory=list)
    placement: str | None = None
    #: cached :func:`signature_detail` / operator-spec fingerprint; carried by
    #: :meth:`copy` (same params => same detail), never compared or shown
    _detail: str | None = field(default=None, repr=False, compare=False)
    _spec: str | None = field(default=None, repr=False, compare=False)
    #: compiled-stage handle attached by :mod:`repro.compile` when the node is
    #: fused into a pipeline segment; unlike ``_detail``/``_spec`` it is
    #: *deliberately dropped* by :meth:`copy` (see there) and re-derived on the
    #: next compilation, never compared or shown
    _stage: object | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown plan node kind {self.kind!r}")

    # -- navigation ----------------------------------------------------------

    def iter_nodes(self) -> Iterator["PlanNode"]:
        """Depth-first, post-order iteration (children before parents)."""
        for child in self.children:
            yield from child.iter_nodes()
        yield self

    def leaves(self) -> list["PlanNode"]:
        return [node for node in self.iter_nodes() if not node.children]

    def count(self, kind: str | None = None) -> int:
        return sum(1 for node in self.iter_nodes() if kind is None or node.kind == kind)

    def find_all(self, kind: str) -> list["PlanNode"]:
        return [node for node in self.iter_nodes() if node.kind == kind]

    # -- copying ----------------------------------------------------------------

    def copy(self) -> "PlanNode":
        # ``_detail``/``_spec`` are pure functions of ``params`` and so stay
        # valid across the copy.  ``_stage`` is NOT carried: reuse replay and
        # recovery mutate copied nodes (provider params on EXISTING nodes,
        # placements), and a carried stage could serve a stale fused closure
        # for semantics the mutation changed.  Dropping it costs one
        # recompilation (cached by ``CompiledPlanCache``) and is always safe.
        return PlanNode(
            self.kind,
            dict(self.params),
            [child.copy() for child in self.children],
            self.placement,
            self._detail,
            self._spec,
        )

    # -- placement ----------------------------------------------------------------

    @property
    def is_placed(self) -> bool:
        return self.placement is not None

    def unplaced_nodes(self) -> list["PlanNode"]:
        return [node for node in self.iter_nodes() if not node.is_placed]

    # -- display --------------------------------------------------------------------

    def describe(self, indent: int = 0) -> str:
        """Readable multi-line description, e.g. for logging and examples."""
        pad = "  " * indent
        where = f"@{self.placement}" if self.placement else "@any"
        details = self._param_summary()
        lines = [f"{pad}{self.kind}{where}{details}"]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _param_summary(self) -> str:
        interesting = {}
        for key in ("alerter", "peer", "var", "channel", "mode", "left_var", "right_var"):
            if key in self.params:
                interesting[key] = self.params[key]
        if "subscription" in self.params:
            subscription = self.params["subscription"]
            interesting["conditions"] = len(subscription.simple) + len(
                subscription.complex_queries
            )
        if not interesting:
            return ""
        inner = ", ".join(f"{key}={value}" for key, value in interesting.items())
        return f"({inner})"

    def __repr__(self) -> str:
        return f"PlanNode({self.kind!r}, placement={self.placement!r}, children={len(self.children)})"


def plan_signature(node: PlanNode) -> str:
    """Canonical signature of a (sub)plan, used for reuse and equivalence checks.

    Two sub-plans with equal signatures compute the same stream (same operator,
    same parameters, same operand signatures).  Signatures are built over the
    *original* source streams, never replicas, matching Section 5.
    """
    children = ",".join(plan_signature(child) for child in node.children)
    return f"{node.kind}[{signature_detail(node)}]({children})"


def signature_detail(node: PlanNode) -> str:
    """The node's own parameter fingerprint, memoised per node.

    Safe because ``params`` never mutates after construction; the cache is
    what keeps :func:`plan_signature` and the Stream Definition Database's
    ``operator_spec`` cheap when the reuse pass probes every node of every
    incoming subscription.
    """
    detail = node._detail
    if detail is None:
        detail = _signature_detail(node)
        node._detail = detail
    return detail


def _signature_detail(node: PlanNode) -> str:
    params = node.params
    if node.kind == ALERTER:
        return f"{params.get('alerter', '?')}@{params.get('peer', '?')}"
    if node.kind == EXISTING:
        return f"{params.get('stream_id', '?')}@{params.get('peer', '?')}"
    if node.kind == FILTER:
        subscription = params.get("subscription")
        if subscription is None:
            return ""
        simple = ";".join(sorted(str(condition) for condition in subscription.simple))
        complex_parts = ";".join(
            sorted(query.expression for query in subscription.complex_queries)
        )
        # computed (LET-derived) conditions select items too: leaving them out
        # would let reuse conflate filters that differ only in, say, a
        # threshold, silently serving one subscription the other's stream
        computed = ";".join(sorted(str(condition) for condition in subscription.computed))
        return f"{simple}|{complex_parts}|{computed}"
    if node.kind == JOIN:
        predicate = params.get("predicate", [])
        pairs = ";".join(sorted(f"{left}={right}" for left, right in predicate))
        # the history window bounds which pairs can meet: joins differing
        # only in it compute different streams and must not be conflated
        return f"{pairs}|w={params.get('window')}"
    if node.kind == RESTRUCTURE:
        template = params.get("template")
        if template is None:
            return ""
        # fingerprint the whole skeleton (holes included): templates sharing
        # a root tag but emitting different trees are different restructures
        serialized = to_xml(template.skeleton)
        return hashlib.sha1(serialized.encode("utf-8")).hexdigest()[:12]
    if node.kind == DISTINCT:
        return str(params.get("criterion", "structural"))
    if node.kind == GROUP:
        return f"{params.get('key', '')}|e={params.get('every')}"
    if node.kind == PUBLISH:
        mode = params.get("mode", "channel")
        if mode == "local":
            # a local publish target is the subscription id -- a label, not a
            # parameter of the computed stream; keying on it would make every
            # locally-consumed subscription's signature unique
            return "local"
        return f"{mode}:{params.get('target', '')}"
    return ""
