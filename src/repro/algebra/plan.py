"""Monitoring plans: the operator DAG produced by compiling a subscription.

A plan is a tree of :class:`PlanNode` objects.  Leaves are alerters (stream
sources) or references to existing streams (after reuse); inner nodes are
stream processors; the root is normally a publisher.  Each node carries a
``placement`` -- the peer that will run it -- which is ``None`` (the paper's
``@any``) until the placement phase assigns a concrete peer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

# Node kinds
ALERTER = "alerter"
EXISTING = "existing"  # reuse of an already published stream
FILTER = "filter"
UNION = "union"
JOIN = "join"
RESTRUCTURE = "restructure"
DISTINCT = "distinct"
GROUP = "group"
PUBLISH = "publish"

KINDS = (ALERTER, EXISTING, FILTER, UNION, JOIN, RESTRUCTURE, DISTINCT, GROUP, PUBLISH)


@dataclass
class PlanNode:
    """One operator of a monitoring plan."""

    kind: str
    params: dict = field(default_factory=dict)
    children: list["PlanNode"] = field(default_factory=list)
    placement: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown plan node kind {self.kind!r}")

    # -- navigation ----------------------------------------------------------

    def iter_nodes(self) -> Iterator["PlanNode"]:
        """Depth-first, post-order iteration (children before parents)."""
        for child in self.children:
            yield from child.iter_nodes()
        yield self

    def leaves(self) -> list["PlanNode"]:
        return [node for node in self.iter_nodes() if not node.children]

    def count(self, kind: str | None = None) -> int:
        return sum(1 for node in self.iter_nodes() if kind is None or node.kind == kind)

    def find_all(self, kind: str) -> list["PlanNode"]:
        return [node for node in self.iter_nodes() if node.kind == kind]

    # -- copying ----------------------------------------------------------------

    def copy(self) -> "PlanNode":
        return PlanNode(
            self.kind,
            dict(self.params),
            [child.copy() for child in self.children],
            self.placement,
        )

    # -- placement ----------------------------------------------------------------

    @property
    def is_placed(self) -> bool:
        return self.placement is not None

    def unplaced_nodes(self) -> list["PlanNode"]:
        return [node for node in self.iter_nodes() if not node.is_placed]

    # -- display --------------------------------------------------------------------

    def describe(self, indent: int = 0) -> str:
        """Readable multi-line description, e.g. for logging and examples."""
        pad = "  " * indent
        where = f"@{self.placement}" if self.placement else "@any"
        details = self._param_summary()
        lines = [f"{pad}{self.kind}{where}{details}"]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _param_summary(self) -> str:
        interesting = {}
        for key in ("alerter", "peer", "var", "channel", "mode", "left_var", "right_var"):
            if key in self.params:
                interesting[key] = self.params[key]
        if "subscription" in self.params:
            subscription = self.params["subscription"]
            interesting["conditions"] = len(subscription.simple) + len(
                subscription.complex_queries
            )
        if not interesting:
            return ""
        inner = ", ".join(f"{key}={value}" for key, value in interesting.items())
        return f"({inner})"

    def __repr__(self) -> str:
        return f"PlanNode({self.kind!r}, placement={self.placement!r}, children={len(self.children)})"


def plan_signature(node: PlanNode) -> str:
    """Canonical signature of a (sub)plan, used for reuse and equivalence checks.

    Two sub-plans with equal signatures compute the same stream (same operator,
    same parameters, same operand signatures).  Signatures are built over the
    *original* source streams, never replicas, matching Section 5.
    """
    children = ",".join(plan_signature(child) for child in node.children)
    detail = _signature_detail(node)
    return f"{node.kind}[{detail}]({children})"


def _signature_detail(node: PlanNode) -> str:
    params = node.params
    if node.kind == ALERTER:
        return f"{params.get('alerter', '?')}@{params.get('peer', '?')}"
    if node.kind == EXISTING:
        return f"{params.get('stream_id', '?')}@{params.get('peer', '?')}"
    if node.kind == FILTER:
        subscription = params.get("subscription")
        if subscription is None:
            return ""
        simple = ";".join(sorted(str(condition) for condition in subscription.simple))
        complex_parts = ";".join(
            sorted(query.expression for query in subscription.complex_queries)
        )
        return f"{simple}|{complex_parts}"
    if node.kind == JOIN:
        predicate = params.get("predicate", [])
        pairs = ";".join(sorted(f"{left}={right}" for left, right in predicate))
        return pairs
    if node.kind == RESTRUCTURE:
        template = params.get("template")
        return template.skeleton.tag if template is not None else ""
    if node.kind == DISTINCT:
        return str(params.get("criterion", "structural"))
    if node.kind == GROUP:
        return str(params.get("key", ""))
    if node.kind == PUBLISH:
        return f"{params.get('mode', 'channel')}:{params.get('target', '')}"
    return ""
