"""The ActiveXML stream algebra and its operators (Section 3).

* :mod:`repro.algebra.expr` / :mod:`repro.algebra.rewrite` -- the symbolic
  algebra (eval / send / receive service expressions) and the rewriting rules
  used to turn a centralised plan into per-peer concurrent actions.
* :mod:`repro.algebra.template` -- variable bindings, value references
  (``$c1.caller``, ``$c2/path``) and the RETURN-clause templates.
* :mod:`repro.algebra.operators` -- the runtime stream processors: Filter
  (σ), Restructure (Π), Union (∪), Join (⋈), Duplicate-removal and Group.
* :mod:`repro.algebra.plan` -- the operator DAG (monitoring plan) that the
  Subscription Manager optimises, distributes and deploys.
"""

from repro.algebra.template import (
    Binding,
    RestructureTemplate,
    ValueRef,
    get_binding,
    is_tuple_item,
    make_tuple_item,
)
from repro.algebra.operators import (
    DuplicateRemovalOperator,
    FilterProcessor,
    GroupOperator,
    JoinOperator,
    Operator,
    RestructureOperator,
    UnionOperator,
)
from repro.algebra.plan import PlanNode, plan_signature
from repro.algebra.expr import (
    Doc,
    Eval,
    Expr,
    Label,
    Receive,
    Send,
    Service,
    Var,
)
from repro.algebra.rewrite import (
    PeerAction,
    push_selections_down,
    rewrite_external_invocation,
    rewrite_local_invocation,
)

__all__ = [
    "Binding",
    "RestructureTemplate",
    "ValueRef",
    "get_binding",
    "is_tuple_item",
    "make_tuple_item",
    "DuplicateRemovalOperator",
    "FilterProcessor",
    "GroupOperator",
    "JoinOperator",
    "Operator",
    "RestructureOperator",
    "UnionOperator",
    "PlanNode",
    "plan_signature",
    "Doc",
    "Eval",
    "Expr",
    "Label",
    "Receive",
    "Send",
    "Service",
    "Var",
    "PeerAction",
    "push_selections_down",
    "rewrite_external_invocation",
    "rewrite_local_invocation",
]
