"""Rewriting rules over algebraic expressions and plans.

Two kinds of rewriting live here:

* the paper's *service invocation* rules (Section 3.3) over the symbolic
  algebra: local invocation starts the service in place, external invocation
  splits the expression into concurrent per-peer actions connected by a
  ``send``/``receive`` pair (this is exactly the plan-distribution step
  illustrated at the end of Section 3.4);
* *selection push-down* over operator plans: filters are moved through
  unions and towards the side of a join they refer to, "to the proximity of
  the sources to save on communications".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expr import Eval, Expr, Receive, Send, Service, Var
from repro.algebra.plan import FILTER, JOIN, UNION, PlanNode


# --------------------------------------------------------------------------- #
# Service invocation rules (symbolic algebra)
# --------------------------------------------------------------------------- #


@dataclass
class PeerAction:
    """One concurrent action: ``peer`` evaluates ``expr`` (joined by '&')."""

    peer: str
    expr: Expr

    def __str__(self) -> str:
        return f"@{self.peer}: {self.expr}"


def rewrite_local_invocation(expression: Eval) -> Expr:
    """Rule 1: ``eval@p(s@p(..., ti, ...)) -> °s@p(..., eval@p(ti), ...)``.

    The service starts executing locally and each argument is wrapped in a
    local ``eval``.
    """
    service = expression.expr
    if not isinstance(service, Service):
        raise ValueError("local invocation expects eval@p(s@p(...))")
    if service.peer != expression.peer:
        raise ValueError(
            f"service is at {service.peer!r}, not at the evaluating peer "
            f"{expression.peer!r}; use rewrite_external_invocation"
        )
    wrapped_args = [Eval(expression.peer, arg) for arg in service.args]
    return Service(service.name, service.peer, wrapped_args, state="executing")


def rewrite_external_invocation(node: Var, expression: Eval) -> list[PeerAction]:
    """Rule 2: external invocation.

    ``#x@p<eval@p(s@p'(...))>`` becomes two concurrent actions::

        @p : #x@p<°receive@p()>
        @p': eval@p'(send@p'(#x@p, s@p'(...)))

    ``node`` is the node variable ``#x@p`` under which the (stream of)
    result(s) is expected.
    """
    if not node.is_node:
        raise ValueError("the target of an external invocation must be a node variable")
    service = expression.expr
    if not isinstance(service, Service):
        raise ValueError("external invocation expects eval@p(s@p'(...))")
    if service.peer == expression.peer:
        raise ValueError("service and caller are co-located; use the local rule")
    caller_action = PeerAction(expression.peer, Receive(expression.peer))
    callee_action = PeerAction(
        service.peer,
        Eval(service.peer, Send(service.peer, node, service)),
    )
    return [caller_action, callee_action]


# --------------------------------------------------------------------------- #
# Selection push-down (operator plans)
# --------------------------------------------------------------------------- #


def push_selections_down(plan: PlanNode) -> PlanNode:
    """Push filter nodes as close to the sources as possible.

    Two rules are applied repeatedly until a fixpoint:

    * ``σ(∪(a, b)) -> ∪(σ(a), σ(b))``
    * ``σ(⋈(a, b)) -> ⋈(σ(a), b)`` (or the right side) when every condition of
      the filter refers only to that side's variable.

    The input plan is not modified; a rewritten copy is returned.
    """
    node = plan.copy()
    changed = True
    while changed:
        node, changed = _push_once(node)
    return node


def _push_once(node: PlanNode) -> tuple[PlanNode, bool]:
    new_children = []
    changed = False
    for child in node.children:
        rewritten, child_changed = _push_once(child)
        new_children.append(rewritten)
        changed = changed or child_changed
    node.children = new_children

    if node.kind != FILTER or not node.children:
        return node, changed
    child = node.children[0]

    if child.kind == UNION:
        # clone the filter onto each branch of the union
        child.children = [
            PlanNode(FILTER, dict(node.params), [branch], node.placement)
            for branch in child.children
        ]
        return child, True

    if child.kind == JOIN:
        variable = node.params.get("var")
        left_var = child.params.get("left_var")
        right_var = child.params.get("right_var")
        if variable is not None and variable == left_var:
            child.children[0] = PlanNode(
                FILTER, dict(node.params), [child.children[0]], node.placement
            )
            return child, True
        if variable is not None and variable == right_var:
            child.children[1] = PlanNode(
                FILTER, dict(node.params), [child.children[1]], node.placement
            )
            return child, True

    return node, changed
