"""Variable bindings, value references and RETURN-clause templates.

A subscription may involve several stream variables (``$c1``, ``$c2`` in the
meteo example).  Once streams are joined, each stream item is a *binding
tuple* pairing variable names with the XML trees they are bound to.  Value
references -- the dot notation ``$c1.caller`` (root attribute) or a path
``$c1/alert/...`` -- read values out of a binding, and templates build the
output trees of the RETURN clause by substituting ``{...}`` expressions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmlmodel.tree import Element
from repro.xmlmodel.xpath import XPath

#: Mapping from variable name to the XML tree bound to it.
Binding = dict[str, Element]

TUPLE_TAG = "tuple"
BINDING_TAG = "binding"


def make_tuple_item(binding: Binding) -> Element:
    """Encode a binding as an XML tree so it can travel on a stream."""
    children = [
        Element(BINDING_TAG, {"var": name}, [tree.copy()])
        for name, tree in sorted(binding.items())
    ]
    return Element(TUPLE_TAG, children=children)


def is_tuple_item(item: Element) -> bool:
    return item.tag == TUPLE_TAG


def get_binding(item: Element, default_var: str | None = None) -> Binding:
    """Decode an item into a binding.

    A non-tuple item is interpreted as binding ``default_var`` (or ``"item"``)
    to the whole tree, so operators work uniformly on raw alerter output and
    on joined tuples.
    """
    if not is_tuple_item(item):
        return {default_var or "item": item}
    binding: Binding = {}
    for child in item.children:
        if child.tag == BINDING_TAG and child.children:
            binding[child.attrib.get("var", "item")] = child.children[0]
    return binding


def merge_tuple_items(left: Element, right: Element, left_var: str, right_var: str) -> Element:
    """Combine two (possibly already joined) items into one binding tuple."""
    binding = get_binding(left, left_var)
    binding.update(get_binding(right, right_var))
    return make_tuple_item(binding)


@dataclass(frozen=True)
class ValueRef:
    """A reference to a value inside a binding.

    ``kind`` is one of:

    * ``"attribute"`` -- the dot notation ``$var.attr`` (root attribute);
    * ``"path"`` -- an XPath evaluated against the tree bound to ``var``;
    * ``"self"`` -- the whole tree bound to ``var``;
    * ``"literal"`` -- a constant value (no variable involved).
    """

    var: str
    kind: str
    detail: str = ""

    @classmethod
    def attribute(cls, var: str, attribute: str) -> "ValueRef":
        return cls(var, "attribute", attribute)

    @classmethod
    def path(cls, var: str, expression: str) -> "ValueRef":
        return cls(var, "path", expression)

    @classmethod
    def whole(cls, var: str) -> "ValueRef":
        return cls(var, "self")

    @classmethod
    def literal(cls, value: str) -> "ValueRef":
        return cls("", "literal", str(value))

    def value(self, binding: Binding) -> str | None:
        """The scalar value of this reference under ``binding`` (or ``None``)."""
        if self.kind == "literal":
            return self.detail
        tree = binding.get(self.var)
        if tree is None:
            return None
        if self.kind == "attribute":
            return tree.attrib.get(self.detail)
        if self.kind == "self":
            return tree.text
        result = XPath.compile(self.detail).select(tree, relative=True)
        if not result:
            return None
        first = result[0]
        return first.text if isinstance(first, Element) else str(first)

    def node(self, binding: Binding) -> Element | None:
        """The node value of this reference (for ``self`` and element paths)."""
        if self.kind == "literal":
            return Element("value", text=self.detail)
        tree = binding.get(self.var)
        if tree is None:
            return None
        if self.kind == "self":
            return tree
        if self.kind == "attribute":
            return None
        result = XPath.compile(self.detail).select(tree, relative=True)
        for item in result:
            if isinstance(item, Element):
                return item
        return None

    def __str__(self) -> str:
        if self.kind == "literal":
            return repr(self.detail)
        if self.kind == "attribute":
            return f"${self.var}.{self.detail}"
        if self.kind == "self":
            return f"${self.var}"
        return f"${self.var}/{self.detail}"


class RestructureTemplate:
    """Template of the RETURN clause: an XML skeleton with ``{...}`` holes.

    The skeleton is an :class:`Element` tree.  Attribute values and text
    payloads of the form ``{$var.attr}`` / ``{$var/path}`` / ``{$var}`` are
    replaced at runtime by the corresponding value from the binding.
    """

    def __init__(self, skeleton: Element) -> None:
        self.skeleton = skeleton

    def instantiate(self, binding: Binding) -> Element:
        """Build the output tree for one binding."""
        return self._build(self.skeleton, binding)

    def _build(self, node: Element, binding: Binding) -> Element:
        attrib = {
            name: self._substitute_scalar(value, binding)
            for name, value in node.attrib.items()
        }
        out = Element(node.tag, attrib)
        if node.text is not None:
            expression = _hole_expression(node.text)
            if expression is not None:
                ref = parse_value_ref(expression)
                embedded = ref.node(binding)
                if embedded is not None and ref.kind in ("self", "path"):
                    out.append(embedded.copy())
                else:
                    out.text = ref.value(binding) or ""
            else:
                out.text = node.text
        for child in node.children:
            out.append(self._build(child, binding))
        return out

    def _substitute_scalar(self, raw: str, binding: Binding) -> str:
        expression = _hole_expression(raw)
        if expression is None:
            return raw
        value = parse_value_ref(expression).value(binding)
        return value if value is not None else ""

    def variables(self) -> set[str]:
        """All variables mentioned by the template's holes."""
        found: set[str] = set()
        for node in self.skeleton.iter():
            for value in list(node.attrib.values()) + ([node.text] if node.text else []):
                expression = _hole_expression(value)
                if expression is not None:
                    ref = parse_value_ref(expression)
                    if ref.var:
                        found.add(ref.var)
        return found

    def __repr__(self) -> str:
        return f"RestructureTemplate({self.skeleton.tag!r})"


def _hole_expression(raw: str | None) -> str | None:
    """Return the expression inside ``{...}`` when the whole value is a hole."""
    if raw is None:
        return None
    stripped = raw.strip()
    if stripped.startswith("{") and stripped.endswith("}"):
        return stripped[1:-1].strip()
    return None


def parse_value_ref(expression: str) -> ValueRef:
    """Parse ``$var``, ``$var.attr`` or ``$var/path`` (else a literal)."""
    expression = expression.strip()
    if not expression.startswith("$"):
        return ValueRef.literal(expression.strip("'\""))
    body = expression[1:]
    if "." in body and "/" not in body.split(".", 1)[0]:
        var, attribute = body.split(".", 1)
        return ValueRef.attribute(var, attribute)
    if "/" in body:
        var, path = body.split("/", 1)
        return ValueRef.path(var, path)
    return ValueRef.whole(body)
