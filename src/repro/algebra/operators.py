"""Runtime stream processors: Filter, Restructure, Union, Join, Duplicate-removal, Group.

Operators are push-based: they subscribe to their input streams and emit to
an output :class:`~repro.streams.Stream`.  Stateless operators (Filter,
Restructure, Union) keep no history; stateful ones (Join, Duplicate-removal,
Group) maintain the state described in Section 3.1.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.algebra.template import (
    Binding,
    RestructureTemplate,
    ValueRef,
    get_binding,
    make_tuple_item,
)
from repro.filtering.conditions import FilterSubscription
from repro.filtering.filter import FilterOperator
from repro.streams.item import is_eos
from repro.streams.stream import Stream
from repro.xmlmodel.axml import ServiceRegistry
from repro.xmlmodel.tree import Element


class Operator:
    """Base class: one or more input streams, one output stream."""

    #: Human-readable operator name, used in stream descriptions (Section 5).
    name = "operator"
    #: Stateless operators can always be shared / reused without history concerns.
    stateless = True

    def __init__(self, output: Stream | None = None) -> None:
        self.output = output if output is not None else Stream(f"{self.name}-out")
        self.inputs: list[Stream] = []
        self._open_inputs = 0
        self._unsubscribes: list[Callable[[], None]] = []
        self.detached = False
        self.items_in = 0
        self.items_out = 0

    # -- wiring ---------------------------------------------------------------

    def connect(self, stream: Stream) -> "Operator":
        """Attach ``stream`` as the next input; returns self for chaining."""
        index = len(self.inputs)
        self.inputs.append(stream)
        self._open_inputs += 1

        def deliver(item: object, i: int = index) -> None:
            self._receive(i, item)

        # Advertise the batch entry point so Stream.emit_many can hand over
        # whole bursts in one call (see Stream.emit_many).
        deliver.batch = lambda items, i=index: self._receive_batch(i, items)  # type: ignore[attr-defined]
        self._unsubscribes.append(stream.subscribe(deliver))
        return self

    def detach(self) -> None:
        """Unsubscribe from every input without closing the output stream.

        Teardown (subscription cancellation) uses this: the operator stops
        consuming immediately, while closing/retracting its output stays a
        separate decision owned by the resource ledger.
        """
        self.detached = True
        while self._unsubscribes:
            self._unsubscribes.pop()()

    def _receive(self, index: int, item: object) -> None:
        if is_eos(item):
            self._open_inputs -= 1
            if self._open_inputs <= 0:
                self.on_close()
                self.output.close()
            return
        assert isinstance(item, Element)
        self.items_in += 1
        self.on_item(index, item)

    def _receive_batch(self, index: int, items: list[Element]) -> None:
        # emit_many never delivers EOS, so no end-of-stream handling here.
        # items_in accounting is owned by on_batch: the default loop
        # increments between on_item calls so cadence logic reading items_in
        # (e.g. GroupOperator's `every`) sees per-item-identical values.
        self.on_batch(index, items)

    def emit(self, item: Element) -> None:
        self.items_out += 1
        self.output.emit(item)

    def emit_batch(self, items: list[Element]) -> None:
        self.items_out += len(items)
        self.output.emit_many(items)

    # -- to override ------------------------------------------------------------

    def on_item(self, index: int, item: Element) -> None:  # pragma: no cover
        raise NotImplementedError

    def on_batch(self, index: int, items: list[Element]) -> None:
        """Process a burst; the default just loops :meth:`on_item`.

        Overrides must account ``items_in`` themselves (bulk increment is
        fine for operators that never read it mid-batch).
        """
        on_item = self.on_item
        for item in items:
            self.items_in += 1
            on_item(index, item)

    def on_close(self) -> None:
        """Called when every input reached EOS, before the output is closed."""

    # -- compiled consumer fusion ------------------------------------------------

    def compiled_probe(
        self, index: int
    ) -> tuple[Callable[[Element], None], Callable[[list[Element]], None]]:
        """``(probe, probe_batch)`` closures for a fused upstream pipeline.

        A :class:`~repro.compile.pipeline.CompiledPipeline` whose tail feeds
        this operator's input ``index`` pushes items straight into these
        closures, skipping the boundary stream hop.  Semantics are exactly
        :meth:`_receive` / :meth:`_receive_batch` minus the EOS branch --
        EOS always travels the stream, so close cascades are untouched.
        Stateful subclasses override this to bind their window/cadence state
        into the closure (no per-item attribute walks on the hot path).
        """

        def probe(item: Element, _i: int = index) -> None:
            self.items_in += 1
            self.on_item(_i, item)

        def probe_batch(items: list[Element], _i: int = index) -> None:
            self.on_batch(_i, items)

        return probe, probe_batch

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(in={self.items_in}, out={self.items_out}, "
            f"inputs={len(self.inputs)})"
        )


class FilterProcessor(Operator):
    """σ -- forwards the items that match a single subscription's conditions.

    Internally this reuses the two-stage :class:`FilterOperator` with exactly
    one registered subscription, so the performance characteristics (and the
    ActiveXML laziness) are identical to the shared filter of Section 4.
    """

    name = "Filter"
    stateless = True

    def __init__(
        self,
        subscription: FilterSubscription,
        output: Stream | None = None,
        service_registry: ServiceRegistry | None = None,
    ) -> None:
        super().__init__(output)
        self.subscription = subscription
        self._filter = FilterOperator([subscription], service_registry=service_registry)

    def on_item(self, index: int, item: Element) -> None:
        if self._filter.process(item).matched:
            self.emit(item)

    def on_batch(self, index: int, items: list[Element]) -> None:
        """Filter a burst in one go and forward survivors as one batch."""
        self.items_in += len(items)
        results = self._filter.process_batch(items)
        survivors = [result.item for result in results if result.matched]
        if survivors:
            self.emit_batch(survivors)


class RestructureOperator(Operator):
    """Π -- applies a template to each (tuple) item to build the output tree."""

    name = "Restructure"
    stateless = True

    def __init__(
        self,
        template: RestructureTemplate,
        default_var: str | None = None,
        output: Stream | None = None,
    ) -> None:
        super().__init__(output)
        self.template = template
        self.default_var = default_var

    def on_item(self, index: int, item: Element) -> None:
        binding = get_binding(item, self.default_var)
        self.emit(self.template.instantiate(binding))

    def on_batch(self, index: int, items: list[Element]) -> None:
        """Instantiate a burst in one go and forward the results as one batch.

        Keeps interpreted mode batch-for-batch identical to the compiled
        vectorized stage (which evaluates restructures per batch), so both
        modes hand downstream subscribers the same emit granularity.
        """
        self.items_in += len(items)
        template = self.template
        var = self.default_var
        self.emit_batch(
            [template.instantiate(get_binding(item, var)) for item in items]
        )


class UnionOperator(Operator):
    """∪ -- merges several input streams into one output stream."""

    name = "Union"
    stateless = True

    def on_item(self, index: int, item: Element) -> None:
        self.emit(item)

    def on_batch(self, index: int, items: list[Element]) -> None:
        self.items_in += len(items)
        self.emit_batch(items)


class JoinOperator(Operator):
    """⋈ -- joins two streams on an equality predicate over extracted values.

    "For each new tree t in one of the input streams, the history of the
    other stream is searched for a tree t' so that (t, t') matches the join
    predicate.  An index over that history is used to speed up the search."
    (Section 3.1)

    The output items are binding tuples pairing ``left_var`` and ``right_var``
    (bindings of already-joined inputs are merged in), so a downstream
    Restructure can refer to both sides.
    """

    name = "Join"
    stateless = False

    def __init__(
        self,
        left_var: str,
        right_var: str,
        predicate: Sequence[tuple[ValueRef, ValueRef]],
        output: Stream | None = None,
        window: int | None = None,
    ) -> None:
        super().__init__(output)
        if not predicate:
            raise ValueError("a join needs at least one equality in its predicate")
        self.left_var = left_var
        self.right_var = right_var
        self.predicate = list(predicate)
        self.window = window
        # history index: join key -> items seen on that side
        self._index: list[dict[tuple, list[Element]]] = [{}, {}]
        self._arrival: list[list[tuple]] = [[], []]  # keys in arrival order, per side
        self.index_probes = 0

    def _key(self, side: int, item: Element) -> tuple | None:
        var = self.left_var if side == 0 else self.right_var
        binding = get_binding(item, var)
        values = []
        for left_ref, right_ref in self.predicate:
            ref = left_ref if side == 0 else right_ref
            value = ref.value(binding)
            if value is None:
                return None
            values.append(value)
        return tuple(values)

    def on_item(self, index: int, item: Element) -> None:
        if index not in (0, 1):
            raise ValueError("JoinOperator has exactly two inputs")
        key = self._key(index, item)
        if key is None:
            return
        self._store(index, key, item)
        other = 1 - index
        self.index_probes += 1
        for match in self._index[other].get(key, ()):  # indexed history search
            left_item, right_item = (item, match) if index == 0 else (match, item)
            binding: Binding = get_binding(left_item, self.left_var)
            binding.update(get_binding(right_item, self.right_var))
            self.emit(make_tuple_item(binding))

    def compiled_probe(
        self, index: int
    ) -> tuple[Callable[[Element], None], Callable[[list[Element]], None]]:
        """Probe-side fusion: the :meth:`on_item` body with the history
        index, key extractor and emit bound into the closure.  The build
        side (and any cross-peer input) stays on the interpreted path."""
        if index not in (0, 1):
            raise ValueError("JoinOperator has exactly two inputs")
        is_left = index == 0
        key_of = self._key
        store = self._store
        other_index = self._index[1 - index]
        left_var = self.left_var
        right_var = self.right_var
        emit = self.emit

        def probe(item: Element) -> None:
            self.items_in += 1
            key = key_of(index, item)
            if key is None:
                return
            store(index, key, item)
            self.index_probes += 1
            for match in other_index.get(key, ()):
                left_item, right_item = (item, match) if is_left else (match, item)
                binding: Binding = get_binding(left_item, left_var)
                binding.update(get_binding(right_item, right_var))
                emit(make_tuple_item(binding))

        def probe_batch(items: list[Element]) -> None:
            for item in items:
                probe(item)

        return probe, probe_batch

    def _store(self, side: int, key: tuple, item: Element) -> None:
        self._index[side].setdefault(key, []).append(item)
        self._arrival[side].append(key)
        if self.window is not None and len(self._arrival[side]) > self.window:
            oldest_key = self._arrival[side].pop(0)
            bucket = self._index[side].get(oldest_key)
            if bucket:
                bucket.pop(0)
                if not bucket:
                    del self._index[side][oldest_key]

    def history_size(self, side: int) -> int:
        return sum(len(bucket) for bucket in self._index[side].values())


class DuplicateRemovalOperator(Operator):
    """Forwards each distinct item once, according to a duplicate criterion."""

    name = "DuplicateRemoval"
    stateless = False

    def __init__(
        self,
        criterion: Callable[[Element], object] | None = None,
        output: Stream | None = None,
    ) -> None:
        super().__init__(output)
        self._criterion = criterion if criterion is not None else _structural_criterion
        self._seen: set[object] = set()

    def on_item(self, index: int, item: Element) -> None:
        key = self._criterion(item)
        if key in self._seen:
            return
        self._seen.add(key)
        self.emit(item)

    @property
    def distinct_count(self) -> int:
        return len(self._seen)


def _structural_criterion(item: Element) -> object:
    return item.structural_key()


class GroupOperator(Operator):
    """Groups items by a key and periodically emits per-group statistics.

    Every ``every`` input items (default: on close only), the operator emits
    a ``<groups>`` element with one ``<group key=... count=...>`` child per
    key seen so far.  This is the aggregation substrate used by the Edos
    statistics scenarios.
    """

    name = "Group"
    stateless = False

    def __init__(
        self,
        key: ValueRef | Callable[[Element], str | None],
        every: int | None = None,
        output: Stream | None = None,
        default_var: str | None = None,
    ) -> None:
        super().__init__(output)
        self._key = key
        self._every = every
        self._default_var = default_var
        self.counts: dict[str, int] = {}

    def _key_of(self, item: Element) -> str | None:
        if callable(self._key):
            return self._key(item)
        return self._key.value(get_binding(item, self._default_var))

    def on_item(self, index: int, item: Element) -> None:
        key = self._key_of(item)
        if key is None:
            key = "(none)"
        self.counts[key] = self.counts.get(key, 0) + 1
        if self._every is not None and self.items_in % self._every == 0:
            self.emit(self.snapshot())

    def compiled_probe(
        self, index: int
    ) -> tuple[Callable[[Element], None], Callable[[list[Element]], None]]:
        """Cadence-side fusion: counts dict and ``every`` bound into the
        closure.  The batch probe loops per item because the emit cadence
        reads ``items_in`` mid-batch."""
        key_of = self._key_of
        counts = self.counts
        every = self._every

        def probe(item: Element) -> None:
            self.items_in += 1
            key = key_of(item)
            if key is None:
                key = "(none)"
            counts[key] = counts.get(key, 0) + 1
            if every is not None and self.items_in % every == 0:
                self.emit(self.snapshot())

        def probe_batch(items: list[Element]) -> None:
            for item in items:
                probe(item)

        return probe, probe_batch

    def on_close(self) -> None:
        if self.counts:
            self.emit(self.snapshot())

    def snapshot(self) -> Element:
        groups = Element("groups", {"total": sum(self.counts.values())})
        for key in sorted(self.counts):
            groups.append(Element("group", {"key": key, "count": self.counts[key]}))
        return groups
