"""The symbolic ActiveXML algebra of Section 3.2-3.3.

Algebraic expressions model distributed evaluation: documents ``d@p``,
services ``s@p(e1, ..., ek)`` (with generic placement ``@any``), labelled
trees ``l<e1, ..., ek>``, and the special services ``eval``, ``send`` and
``receive``.  :mod:`repro.algebra.rewrite` implements the rewriting rules
that turn ``eval`` of a remote service into concurrent per-peer actions.

The notation produced by ``str()`` mirrors the paper: an executing service
is prefixed with ``°`` and a finished one with ``•``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

#: Placement wildcard used before the placement phase assigns concrete peers.
ANY = "any"

IDLE = "idle"
EXECUTING = "executing"
FINISHED = "finished"

_STATE_MARK = {IDLE: "", EXECUTING: "°", FINISHED: "•"}


class Expr:
    """Base class for algebraic expressions."""

    def children(self) -> list["Expr"]:
        return []

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class Var(Expr):
    """A data variable ($x) or node variable (#x@p)."""

    name: str
    peer: str | None = None
    is_node: bool = False

    def __str__(self) -> str:
        prefix = "#" if self.is_node else "$"
        suffix = f"@{self.peer}" if self.peer else ""
        return f"{prefix}{self.name}{suffix}"


@dataclass
class Doc(Expr):
    """A document d@p."""

    name: str
    peer: str = ANY

    def __str__(self) -> str:
        return f"{self.name}@{self.peer}"


@dataclass
class Label(Expr):
    """A labelled tree l<e1, ..., ek>."""

    label: str
    args: list[Expr] = field(default_factory=list)

    def children(self) -> list[Expr]:
        return list(self.args)

    def __str__(self) -> str:
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.label}<{inner}>"


@dataclass
class Service(Expr):
    """A service call s@p(e1, ..., ek); ``peer`` may be the generic ``any``."""

    name: str
    peer: str = ANY
    args: list[Expr] = field(default_factory=list)
    state: str = IDLE

    def children(self) -> list[Expr]:
        return list(self.args)

    @property
    def is_generic(self) -> bool:
        return self.peer == ANY

    def executing(self) -> "Service":
        return Service(self.name, self.peer, list(self.args), EXECUTING)

    def at(self, peer: str) -> "Service":
        """Concretise a generic service on a given peer."""
        return Service(self.name, peer, list(self.args), self.state)

    def __str__(self) -> str:
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{_STATE_MARK[self.state]}{self.name}@{self.peer}({inner})"


@dataclass
class Eval(Expr):
    """eval@p(e): peer p evaluates expression e."""

    peer: str
    expr: Expr

    def children(self) -> list[Expr]:
        return [self.expr]

    def __str__(self) -> str:
        return f"eval@{self.peer}({self.expr})"


@dataclass
class Send(Expr):
    """send@p(#x@p', e): peer p sends the result of e to node #x at p'."""

    peer: str
    target: Var
    expr: Expr
    state: str = IDLE

    def children(self) -> list[Expr]:
        return [self.expr]

    def __str__(self) -> str:
        return f"{_STATE_MARK[self.state]}send@{self.peer}({self.target}, {self.expr})"


@dataclass
class Receive(Expr):
    """receive@p(): placeholder that accepts data sent by another peer."""

    peer: str
    state: str = EXECUTING

    def __str__(self) -> str:
        return f"{_STATE_MARK[self.state]}receive@{self.peer}()"


def generic_services(expr: Expr) -> list[Service]:
    """All services in ``expr`` still placed at the generic ``@any``."""
    return [node for node in expr.walk() if isinstance(node, Service) and node.is_generic]


def intern_signature(text: str) -> str:
    """Intern a textual signature so equal signatures share one object.

    Signature strings are used as dictionary keys throughout the reuse index
    and the plan compiler's materialized-expression table; interning them makes
    those lookups pointer-comparison fast on the hit path.
    """
    return sys.intern(text)


def expr_signature(expr: Expr) -> str:
    """Interned canonical signature of an algebraic expression."""
    return intern_signature(str(expr))
