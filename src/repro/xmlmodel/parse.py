"""A small, dependency-free XML parser producing :class:`Element` trees.

The parser supports the subset of XML used by P2PM streams: elements,
attributes (single or double quoted), character data, comments, processing
instructions, CDATA sections and the five predefined entities.  It does not
implement DTDs or namespaces -- stream items in the paper do not use them.
"""

from __future__ import annotations

from repro.xmlmodel.tree import Element


class XMLParseError(ValueError):
    """Raised when the input text is not well-formed for our subset."""

    def __init__(self, message: str, position: int, source: str) -> None:
        line = source.count("\n", 0, position) + 1
        column = position - (source.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


def _unescape(text: str, pos: int, source: str) -> str:
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XMLParseError("unterminated entity reference", pos + i, source)
        name = text[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XMLParseError(f"unknown entity &{name};", pos + i, source)
        i = end + 1
    return "".join(out)


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.length = len(source)

    # -- low level helpers ------------------------------------------------

    def error(self, message: str) -> XMLParseError:
        return XMLParseError(message, self.pos, self.source)

    def peek(self) -> str:
        return self.source[self.pos] if self.pos < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.source.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.source[self.pos] in " \t\r\n":
            self.pos += 1

    def skip_misc(self) -> None:
        """Skip whitespace, comments, PIs and the XML declaration."""
        while True:
            self.skip_whitespace()
            if self.startswith("<!--"):
                end = self.source.find("-->", self.pos + 4)
                if end == -1:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.startswith("<?"):
                end = self.source.find("?>", self.pos + 2)
                if end == -1:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.startswith("<!DOCTYPE"):
                end = self.source.find(">", self.pos)
                if end == -1:
                    raise self.error("unterminated DOCTYPE")
                self.pos = end + 1
            else:
                return

    def read_name(self) -> str:
        start = self.pos
        while self.pos < self.length:
            ch = self.source[self.pos]
            if ch.isalnum() or ch in "_-.:":
                self.pos += 1
            else:
                break
        if self.pos == start:
            raise self.error("expected a name")
        return self.source[start : self.pos]

    # -- grammar ----------------------------------------------------------

    def parse_document(self) -> Element:
        self.skip_misc()
        if not self.startswith("<"):
            raise self.error("expected root element")
        root = self.parse_element()
        self.skip_misc()
        if self.pos != self.length:
            raise self.error("trailing content after root element")
        return root

    def parse_element(self) -> Element:
        self.expect("<")
        tag = self.read_name()
        attrib = self.parse_attributes()
        self.skip_whitespace()
        if self.startswith("/>"):
            self.pos += 2
            return Element(tag, attrib)
        self.expect(">")
        children, text = self.parse_content(tag)
        return Element(tag, attrib, children, text)

    def parse_attributes(self) -> dict[str, str]:
        attrib: dict[str, str] = {}
        while True:
            self.skip_whitespace()
            ch = self.peek()
            if ch in ("", ">", "/"):
                return attrib
            name = self.read_name()
            self.skip_whitespace()
            self.expect("=")
            self.skip_whitespace()
            quote = self.peek()
            if quote not in ("'", '"'):
                raise self.error("attribute value must be quoted")
            self.pos += 1
            end = self.source.find(quote, self.pos)
            if end == -1:
                raise self.error("unterminated attribute value")
            raw = self.source[self.pos : end]
            attrib[name] = _unescape(raw, self.pos, self.source)
            self.pos = end + 1

    def parse_content(self, tag: str) -> tuple[list[Element], str | None]:
        children: list[Element] = []
        text_parts: list[str] = []
        while True:
            if self.pos >= self.length:
                raise self.error(f"unterminated element <{tag}>")
            if self.startswith("</"):
                self.pos += 2
                closing = self.read_name()
                if closing != tag:
                    raise self.error(
                        f"mismatched closing tag </{closing}> for <{tag}>"
                    )
                self.skip_whitespace()
                self.expect(">")
                text = "".join(text_parts).strip()
                return children, (text or None)
            if self.startswith("<!--"):
                end = self.source.find("-->", self.pos + 4)
                if end == -1:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.startswith("<![CDATA["):
                end = self.source.find("]]>", self.pos + 9)
                if end == -1:
                    raise self.error("unterminated CDATA section")
                text_parts.append(self.source[self.pos + 9 : end])
                self.pos = end + 3
            elif self.startswith("<?"):
                end = self.source.find("?>", self.pos + 2)
                if end == -1:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.startswith("<"):
                children.append(self.parse_element())
            else:
                start = self.pos
                next_tag = self.source.find("<", self.pos)
                if next_tag == -1:
                    raise self.error(f"unterminated element <{tag}>")
                raw = self.source[start:next_tag]
                text_parts.append(_unescape(raw, start, self.source))
                self.pos = next_tag


def parse_xml(source: str) -> Element:
    """Parse an XML document and return its root :class:`Element`.

    Raises :class:`XMLParseError` with line/column information when the
    document is not well-formed.
    """
    if not isinstance(source, str):
        raise TypeError("parse_xml expects a string")
    return _Parser(source).parse_document()
