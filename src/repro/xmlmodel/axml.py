"""ActiveXML documents: service-call (``sc``) elements and lazy materialisation.

An ActiveXML document is an XML document in which some elements denote calls
to Web services (Section 3.2 of the paper).  Evaluating such a call replaces
the ``sc`` element by the call's result.  P2PM exploits this to keep heavy
payloads *intensional*: the Filter only triggers the call when the cheap
simple conditions have already been satisfied (Section 4, "Web service
calls"), which is what :mod:`repro.filtering.filter` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.xmlmodel.tree import Element

#: Tag used for service-call elements, as in the paper's examples.
SC_TAG = "sc"

ServiceFunction = Callable[[Element], list[Element]]


class ServiceNotFoundError(KeyError):
    """Raised when materialisation needs a service that is not registered."""


@dataclass
class ServiceCall:
    """Decoded view of an ``sc`` element."""

    service: str
    address: str
    parameters: Element | None = None

    def key(self) -> str:
        return f"{self.service}@{self.address}"


@dataclass
class ServiceRegistry:
    """Registry of callable services used to materialise active documents.

    The registry also counts how many calls were actually performed, which is
    the quantity the lazy-filtering experiment (E6) measures.
    """

    _services: dict[str, ServiceFunction] = field(default_factory=dict)
    calls_performed: int = 0

    def register(self, service: str, address: str, function: ServiceFunction) -> None:
        """Register ``function`` to answer calls to ``service@address``."""
        self._services[f"{service}@{address}"] = function

    def resolve(self, call: ServiceCall) -> list[Element]:
        """Execute the service call and return the resulting elements."""
        try:
            function = self._services[call.key()]
        except KeyError as exc:
            raise ServiceNotFoundError(
                f"no service registered for {call.key()}"
            ) from exc
        self.calls_performed += 1
        node = call.parameters if call.parameters is not None else Element("parameters")
        result = function(node)
        return [item.copy() for item in result]

    def reset_counters(self) -> None:
        self.calls_performed = 0


def make_service_call(
    service: str, address: str, parameters: Element | None = None
) -> Element:
    """Build an ``sc`` element, e.g. ``<sc service="storage" address="site">``."""
    children = [parameters] if parameters is not None else []
    return Element(SC_TAG, {"service": service, "address": address}, children)


def is_service_call(node: Element) -> bool:
    """True when ``node`` is an ``sc`` element with the required attributes."""
    return node.tag == SC_TAG and "service" in node.attrib and "address" in node.attrib


def decode_service_call(node: Element) -> ServiceCall:
    """Extract the :class:`ServiceCall` described by an ``sc`` element."""
    if not is_service_call(node):
        raise ValueError(f"not a service call element: {node!r}")
    return ServiceCall(
        service=node.attrib["service"],
        address=node.attrib["address"],
        parameters=node.find("parameters"),
    )


def has_service_calls(tree: Element) -> bool:
    """True when the subtree contains at least one unevaluated ``sc`` element."""
    return any(is_service_call(node) for node in tree.iter())


def materialize(tree: Element, registry: ServiceRegistry) -> Element:
    """Return a copy of ``tree`` with every ``sc`` element replaced by its result.

    The original tree is left untouched; the copy is fully extensional
    (contains no remaining service calls, assuming services do not themselves
    return active content -- nested results are materialised recursively).
    """
    copy = tree.copy()
    _materialize_children(copy, registry)
    return copy


def _materialize_children(node: Element, registry: ServiceRegistry) -> None:
    new_children: list[Element] = []
    for child in node.children:
        if is_service_call(child):
            results = registry.resolve(decode_service_call(child))
            for result in results:
                _materialize_children(result, registry)
                new_children.append(result)
        else:
            _materialize_children(child, registry)
            new_children.append(child)
    node.children = new_children
