"""Serialisation of :class:`Element` trees back to XML text."""

from __future__ import annotations

from repro.xmlmodel.tree import Element

_ESCAPES_TEXT = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ESCAPES_ATTR = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def _escape(value: str, table: dict[str, str]) -> str:
    out = value
    for raw, escaped in table.items():
        if raw in out:
            out = out.replace(raw, escaped)
    return out


def to_xml(node: Element) -> str:
    """Compact, single-line serialisation."""
    parts: list[str] = []
    _write(node, parts, indent=None, level=0)
    return "".join(parts)


def pretty_xml(node: Element, indent: str = "  ") -> str:
    """Human-readable serialisation with newlines and indentation."""
    parts: list[str] = []
    _write(node, parts, indent=indent, level=0)
    return "".join(parts)


def _write(node: Element, parts: list[str], indent: str | None, level: int) -> None:
    pad = "" if indent is None else indent * level
    newline = "" if indent is None else "\n"
    attrs = "".join(
        f' {name}="{_escape(value, _ESCAPES_ATTR)}"'
        for name, value in node.attrib.items()
    )
    if not node.children and node.text is None:
        parts.append(f"{pad}<{node.tag}{attrs}/>{newline}")
        return
    parts.append(f"{pad}<{node.tag}{attrs}>")
    if node.text is not None:
        parts.append(_escape(node.text, _ESCAPES_TEXT))
    if node.children:
        parts.append(newline)
        for child in node.children:
            _write(child, parts, indent, level + 1)
        parts.append(pad)
    parts.append(f"</{node.tag}>{newline}")
