"""XML data model used throughout P2PM.

The monitored information travels through the system as streams of XML
trees (stream items).  This package provides:

* :mod:`repro.xmlmodel.tree` -- the :class:`Element` tree model.
* :mod:`repro.xmlmodel.parse` -- a small, dependency-free XML parser.
* :mod:`repro.xmlmodel.serialize` -- serialisation back to text.
* :mod:`repro.xmlmodel.xpath` -- the XPath subset used by subscriptions,
  the YFilter automaton and the Stream Definition Database.
* :mod:`repro.xmlmodel.axml` -- ActiveXML documents (``sc`` service-call
  elements) and their lazy materialisation.
* :mod:`repro.xmlmodel.diff` -- snapshot diffing used by the Web page and
  RSS alerters.
"""

from repro.xmlmodel.tree import Element, element, text_of
from repro.xmlmodel.parse import parse_xml, XMLParseError
from repro.xmlmodel.serialize import to_xml, pretty_xml
from repro.xmlmodel.xpath import XPath, XPathError, xpath_matches, xpath_select
from repro.xmlmodel.axml import (
    ServiceCall,
    ServiceRegistry,
    is_service_call,
    make_service_call,
    materialize,
)
from repro.xmlmodel.diff import TreeDelta, diff_trees

__all__ = [
    "Element",
    "element",
    "text_of",
    "parse_xml",
    "XMLParseError",
    "to_xml",
    "pretty_xml",
    "XPath",
    "XPathError",
    "xpath_matches",
    "xpath_select",
    "ServiceCall",
    "ServiceRegistry",
    "is_service_call",
    "make_service_call",
    "materialize",
    "TreeDelta",
    "diff_trees",
]
