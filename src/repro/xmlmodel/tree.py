"""Ordered, attribute-carrying XML tree model.

The model is intentionally small: an :class:`Element` has a tag, a dict of
string attributes, an optional text payload and an ordered list of child
elements.  Stream items in P2PM are instances of this class; the paper's
"attributes of the root" (used by the preFilter) are simply ``root.attrib``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping


class Element:
    """A node of an XML tree.

    Parameters
    ----------
    tag:
        Element name.  Must be a non-empty string.
    attrib:
        Mapping of attribute name to string value.  Values are coerced to
        ``str`` so callers may pass numbers.
    children:
        Ordered child elements.
    text:
        Optional character data directly under this element.
    """

    __slots__ = ("tag", "attrib", "children", "text")

    def __init__(
        self,
        tag: str,
        attrib: Mapping[str, object] | None = None,
        children: Iterable["Element"] | None = None,
        text: str | None = None,
    ) -> None:
        if not isinstance(tag, str) or not tag:
            raise ValueError(f"element tag must be a non-empty string, got {tag!r}")
        self.tag = tag
        self.attrib: dict[str, str] = {
            str(k): str(v) for k, v in (attrib or {}).items()
        }
        self.children: list[Element] = list(children or [])
        for child in self.children:
            if not isinstance(child, Element):
                raise TypeError(f"child must be an Element, got {type(child).__name__}")
        self.text = text

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def append(self, child: "Element") -> "Element":
        """Append ``child`` and return it (convenient for chaining)."""
        if not isinstance(child, Element):
            raise TypeError(f"child must be an Element, got {type(child).__name__}")
        self.children.append(child)
        return child

    def extend(self, children: Iterable["Element"]) -> None:
        for child in children:
            self.append(child)

    def set(self, name: str, value: object) -> None:
        """Set attribute ``name`` to ``str(value)``."""
        self.attrib[str(name)] = str(value)

    def get(self, name: str, default: str | None = None) -> str | None:
        """Return attribute ``name`` or ``default``."""
        return self.attrib.get(name, default)

    # ------------------------------------------------------------------ #
    # Navigation
    # ------------------------------------------------------------------ #

    def find(self, tag: str) -> "Element | None":
        """Return the first direct child with the given tag, or ``None``."""
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def findall(self, tag: str) -> list["Element"]:
        """Return all direct children with the given tag."""
        return [child for child in self.children if child.tag == tag]

    def iter(self, tag: str | None = None) -> Iterator["Element"]:
        """Depth-first pre-order iteration over self and all descendants."""
        if tag is None or self.tag == tag:
            yield self
        for child in self.children:
            yield from child.iter(tag)

    def descendants(self) -> Iterator["Element"]:
        """All strict descendants, depth-first pre-order."""
        for child in self.children:
            yield from child.iter()

    def child_text(self, tag: str, default: str | None = None) -> str | None:
        """Text of the first child named ``tag``, or ``default``."""
        child = self.find(tag)
        if child is None:
            return default
        return child.text if child.text is not None else default

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #

    def size(self) -> int:
        """Number of elements in the subtree rooted here."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        """Height of the subtree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def weight(self) -> int:
        """Approximate serialised size in bytes.

        Used by the network simulator to account for transferred data
        without re-serialising every message.
        """
        total = 2 * len(self.tag) + 5  # <tag></tag>
        for name, value in self.attrib.items():
            total += len(name) + len(value) + 4
        if self.text:
            total += len(self.text)
        for child in self.children:
            total += child.weight()
        return total

    # ------------------------------------------------------------------ #
    # Copying, equality, hashing-ish helpers
    # ------------------------------------------------------------------ #

    def copy(self) -> "Element":
        """Deep copy of the subtree."""
        return Element(
            self.tag,
            dict(self.attrib),
            [child.copy() for child in self.children],
            self.text,
        )

    def structural_key(self) -> tuple:
        """A hashable key identifying the subtree up to structural equality.

        Used by Duplicate-removal and by the stream-reuse machinery to
        compare trees cheaply.
        """
        return (
            self.tag,
            tuple(sorted(self.attrib.items())),
            self.text or "",
            tuple(child.structural_key() for child in self.children),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Element):
            return NotImplemented
        return (
            self.tag == other.tag
            and self.attrib == other.attrib
            and (self.text or "") == (other.text or "")
            and self.children == other.children
        )

    def __hash__(self) -> int:  # pragma: no cover - exercised via sets in tests
        return hash(self.structural_key())

    def __repr__(self) -> str:
        bits = [self.tag]
        if self.attrib:
            bits.append(" " + " ".join(f'{k}="{v}"' for k, v in self.attrib.items()))
        inner = ""
        if self.text:
            inner = self.text if len(self.text) <= 20 else self.text[:17] + "..."
        if self.children:
            inner += f"[{len(self.children)} children]"
        return f"<Element {''.join(bits)}>{inner}"

    def __len__(self) -> int:
        return len(self.children)

    def __iter__(self) -> Iterator["Element"]:
        return iter(self.children)

    def __getitem__(self, index: int) -> "Element":
        return self.children[index]


def element(tag: str, /, _text: str | None = None, **attrib: object) -> Element:
    """Terse constructor: ``element("alert", callId="7")``."""
    return Element(tag, attrib, text=_text)


def text_of(node: Element | None) -> str:
    """Concatenated text content of a subtree (empty string for ``None``)."""
    if node is None:
        return ""
    parts: list[str] = []
    for item in node.iter():
        if item.text:
            parts.append(item.text)
    return "".join(parts)
