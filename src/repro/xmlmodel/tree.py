"""Ordered, attribute-carrying XML tree model.

The model is intentionally small: an :class:`Element` has a tag, a dict of
string attributes, an optional text payload and an ordered list of child
elements.  Stream items in P2PM are instances of this class; the paper's
"attributes of the root" (used by the preFilter) are simply ``root.attrib``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping


class Element:
    """A node of an XML tree.

    Parameters
    ----------
    tag:
        Element name.  Must be a non-empty string.
    attrib:
        Mapping of attribute name to string value.  Values are coerced to
        ``str`` so callers may pass numbers.
    children:
        Ordered child elements.
    text:
        Optional character data directly under this element.
    """

    __slots__ = ("tag", "attrib", "children", "_text", "_parent", "_weight", "_size")

    def __init__(
        self,
        tag: str,
        attrib: Mapping[str, object] | None = None,
        children: Iterable["Element"] | None = None,
        text: str | None = None,
    ) -> None:
        if not isinstance(tag, str) or not tag:
            raise ValueError(f"element tag must be a non-empty string, got {tag!r}")
        self.tag = tag
        self.attrib: dict[str, str] = {
            str(k): str(v) for k, v in (attrib or {}).items()
        }
        self.children: list[Element] = list(children or [])
        self._parent: Element | None = None
        self._weight: int | None = None
        self._size: int | None = None
        for child in self.children:
            if not isinstance(child, Element):
                raise TypeError(f"child must be an Element, got {type(child).__name__}")
            child._parent = self
        self._text = text

    @classmethod
    def fast_new(
        cls,
        tag: str,
        attrib: dict[str, str],
        children: list["Element"],
        text: str | None = None,
    ) -> "Element":
        """Trusted constructor for hot paths (channel fan-out, batch wrappers).

        Skips validation and attribute coercion: ``attrib`` must already map
        ``str`` to ``str`` and be owned by the new element, ``children`` must
        be a list of Elements owned by the new element.
        """
        node = cls.__new__(cls)
        node.tag = tag
        node.attrib = attrib
        node.children = children
        node._parent = None
        node._weight = None
        node._size = None
        for child in children:
            child._parent = node
        node._text = text
        return node

    # -- measurement caching ------------------------------------------------- #
    #
    # ``weight()`` and ``size()`` memoise per node and are invalidated by every
    # mutation performed through the Element API (``append``/``extend``/
    # ``set``/assigning ``text``): the mutated node and its ancestor chain are
    # cleared, child caches stay valid.  An element is assumed to live in at
    # most one tree (use :meth:`copy` to attach a subtree elsewhere); code
    # that mutates ``attrib``/``children`` directly must call
    # :meth:`invalidate_caches` on the mutated node afterwards.

    @property
    def text(self) -> str | None:
        """Character data directly under this element."""
        return self._text

    @text.setter
    def text(self, value: str | None) -> None:
        self._text = value
        self.invalidate_caches()

    @property
    def parent(self) -> "Element | None":
        """The element this node is attached under (``None`` at a root)."""
        return self._parent

    def invalidate_caches(self) -> None:
        """Drop cached weight/size here and along the ancestor chain.

        The walk stops early at the first uncached ancestor: a cached node
        implies its whole subtree is cached, so an uncached node can have no
        cached ancestors.
        """
        node: Element | None = self
        while node is not None and (
            node._weight is not None or node._size is not None
        ):
            node._weight = None
            node._size = None
            node = node._parent

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def append(self, child: "Element") -> "Element":
        """Append ``child`` and return it (convenient for chaining)."""
        if not isinstance(child, Element):
            raise TypeError(f"child must be an Element, got {type(child).__name__}")
        self.children.append(child)
        child._parent = self
        self.invalidate_caches()
        return child

    def extend(self, children: Iterable["Element"]) -> None:
        for child in children:
            self.append(child)

    def set(self, name: str, value: object) -> None:
        """Set attribute ``name`` to ``str(value)``."""
        self.attrib[str(name)] = str(value)
        self.invalidate_caches()

    def get(self, name: str, default: str | None = None) -> str | None:
        """Return attribute ``name`` or ``default``."""
        return self.attrib.get(name, default)

    # ------------------------------------------------------------------ #
    # Navigation
    # ------------------------------------------------------------------ #

    def find(self, tag: str) -> "Element | None":
        """Return the first direct child with the given tag, or ``None``."""
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def findall(self, tag: str) -> list["Element"]:
        """Return all direct children with the given tag."""
        return [child for child in self.children if child.tag == tag]

    def iter(self, tag: str | None = None) -> Iterator["Element"]:
        """Depth-first pre-order iteration over self and all descendants."""
        if tag is None or self.tag == tag:
            yield self
        for child in self.children:
            yield from child.iter(tag)

    def descendants(self) -> Iterator["Element"]:
        """All strict descendants, depth-first pre-order."""
        for child in self.children:
            yield from child.iter()

    def child_text(self, tag: str, default: str | None = None) -> str | None:
        """Text of the first child named ``tag``, or ``default``."""
        child = self.find(tag)
        if child is None:
            return default
        return child.text if child.text is not None else default

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #

    def size(self) -> int:
        """Number of elements in the subtree rooted here (cached)."""
        cached = self._size
        if cached is not None:
            return cached
        total = 1 + sum(child.size() for child in self.children)
        self._size = total
        return total

    def depth(self) -> int:
        """Height of the subtree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def weight(self) -> int:
        """Approximate serialised size in bytes (cached).

        Used by the network simulator to account for transferred data
        without re-serialising every message.  The first call walks the
        subtree and memoises at every node; repeated calls -- a 1k-subscriber
        fan-out accounts the same payload once per message -- are one slot
        read.  Mutation through the Element API recomputes (see
        :meth:`invalidate_caches`).
        """
        cached = self._weight
        if cached is not None:
            return cached
        total = 2 * len(self.tag) + 5  # <tag></tag>
        for name, value in self.attrib.items():
            total += len(name) + len(value) + 4
        if self._text:
            total += len(self._text)
        for child in self.children:
            total += child.weight()
        self._weight = total
        return total

    # ------------------------------------------------------------------ #
    # Copying, equality, hashing-ish helpers
    # ------------------------------------------------------------------ #

    def copy(self) -> "Element":
        """Deep copy of the subtree.

        Cached weight/size travel with the copy: a deep copy is structurally
        identical, so the channel layer's one-copy-per-item fan-out never
        re-walks the tree for accounting.
        """
        node = Element.__new__(Element)
        node.tag = self.tag
        node.attrib = dict(self.attrib)
        node.children = [child.copy() for child in self.children]
        for child in node.children:
            child._parent = node
        node._text = self._text
        node._parent = None
        node._weight = self._weight
        node._size = self._size
        return node

    def structural_key(self) -> tuple:
        """A hashable key identifying the subtree up to structural equality.

        Used by Duplicate-removal and by the stream-reuse machinery to
        compare trees cheaply.
        """
        return (
            self.tag,
            tuple(sorted(self.attrib.items())),
            self.text or "",
            tuple(child.structural_key() for child in self.children),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Element):
            return NotImplemented
        return (
            self.tag == other.tag
            and self.attrib == other.attrib
            and (self.text or "") == (other.text or "")
            and self.children == other.children
        )

    def __hash__(self) -> int:  # pragma: no cover - exercised via sets in tests
        return hash(self.structural_key())

    def __repr__(self) -> str:
        bits = [self.tag]
        if self.attrib:
            bits.append(" " + " ".join(f'{k}="{v}"' for k, v in self.attrib.items()))
        inner = ""
        if self.text:
            inner = self.text if len(self.text) <= 20 else self.text[:17] + "..."
        if self.children:
            inner += f"[{len(self.children)} children]"
        return f"<Element {''.join(bits)}>{inner}"

    def __len__(self) -> int:
        return len(self.children)

    def __iter__(self) -> Iterator["Element"]:
        return iter(self.children)

    def __getitem__(self, index: int) -> "Element":
        return self.children[index]


def element(tag: str, /, _text: str | None = None, **attrib: object) -> Element:
    """Terse constructor: ``element("alert", callId="7")``."""
    return Element(tag, attrib, text=_text)


def text_of(node: Element | None) -> str:
    """Concatenated text content of a subtree (empty string for ``None``)."""
    if node is None:
        return ""
    parts: list[str] = []
    for item in node.iter():
        if item.text:
            parts.append(item.text)
    return "".join(parts)
