"""The XPath subset used by P2PM.

Subscriptions (Section 2 of the paper), the YFilter automaton (Section 4)
and the Stream Definition Database queries (Section 5) all use a common
fragment of XPath:

* child (``/``) and descendant-or-self (``//``) axes,
* name tests, the wildcard ``*``, attribute tests ``@name`` and ``text()``,
* predicates combining comparisons (``=``, ``!=``, ``<``, ``<=``, ``>``,
  ``>=``) between attributes, relative paths, ``text()`` and literals, with
  ``and`` / ``or``,
* existence predicates on relative paths, e.g. ``/Stream[Operator/inCom]``.

The grammar is parsed into a list of :class:`Step` objects so that the
YFilter NFA can be built directly from the parsed form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.xmlmodel.tree import Element


class XPathError(ValueError):
    """Raised for syntax errors in path expressions."""


# --------------------------------------------------------------------------- #
# Tokenizer
# --------------------------------------------------------------------------- #

_PUNCT = ("//", "/", "[", "]", "(", ")", "@", "!=", "<=", ">=", "=", "<", ">")


def _tokenize(expression: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    n = len(expression)
    while i < n:
        ch = expression[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch in "'\"":
            end = expression.find(ch, i + 1)
            if end == -1:
                raise XPathError(f"unterminated string literal in {expression!r}")
            tokens.append(expression[i : end + 1])
            i = end + 1
            continue
        matched = False
        for punct in _PUNCT:
            if expression.startswith(punct, i):
                tokens.append(punct)
                i += len(punct)
                matched = True
                break
        if matched:
            continue
        if ch.isalnum() or ch in "_.$*-":
            start = i
            while i < n and (expression[i].isalnum() or expression[i] in "_.$*-:"):
                i += 1
            tokens.append(expression[start:i])
            continue
        raise XPathError(f"unexpected character {ch!r} in {expression!r}")
    return tokens


# --------------------------------------------------------------------------- #
# AST
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Comparison:
    """A comparison or existence test inside a predicate."""

    left: "Operand"
    op: str | None  # None => existence test on `left`
    right: "Operand | None" = None

    def evaluate(self, node: Element) -> bool:
        left_values = self.left.values(node)
        if self.op is None:
            return bool(left_values)
        assert self.right is not None
        right_values = self.right.values(node)
        for lv in left_values:
            for rv in right_values:
                if _compare(lv, self.op, rv):
                    return True
        return False


@dataclass(frozen=True)
class BooleanExpr:
    """Conjunction/disjunction tree over comparisons."""

    kind: str  # "and" | "or" | "leaf"
    children: tuple["BooleanExpr", ...] = ()
    leaf: Comparison | None = None

    def evaluate(self, node: Element) -> bool:
        if self.kind == "leaf":
            assert self.leaf is not None
            return self.leaf.evaluate(node)
        if self.kind == "and":
            return all(child.evaluate(node) for child in self.children)
        return any(child.evaluate(node) for child in self.children)


@dataclass(frozen=True)
class Operand:
    """One side of a comparison: attribute, literal, text() or relative path."""

    kind: str  # "attribute" | "literal" | "text" | "path"
    value: object = None

    def values(self, node: Element) -> list[str]:
        if self.kind == "literal":
            return [str(self.value)]
        if self.kind == "attribute":
            attr = node.attrib.get(str(self.value))
            return [attr] if attr is not None else []
        if self.kind == "text":
            return [node.text] if node.text is not None else []
        assert isinstance(self.value, XPath)
        results = self.value.select(node, relative=True)
        out: list[str] = []
        for result in results:
            if isinstance(result, Element):
                if result.text is not None:
                    out.append(result.text)
                else:
                    out.append("")
            else:
                out.append(str(result))
        return out


@dataclass(frozen=True)
class Step:
    """One location step: axis + node test + predicates."""

    axis: str  # "child" | "descendant"
    test: str  # element name, "*", "@name" or "text()"
    predicates: tuple[BooleanExpr, ...] = field(default_factory=tuple)

    @property
    def is_attribute(self) -> bool:
        return self.test.startswith("@")

    @property
    def is_text(self) -> bool:
        return self.test == "text()"

    def name_matches(self, tag: str) -> bool:
        return self.test == "*" or self.test == tag

    def predicates_match(self, node: Element) -> bool:
        return all(pred.evaluate(node) for pred in self.predicates)


def _compare(left: str, op: str, right: str) -> bool:
    lnum, rnum = _as_number(left), _as_number(right)
    lv: object
    rv: object
    if lnum is not None and rnum is not None:
        lv, rv = lnum, rnum
    else:
        lv, rv = left, right
    if op == "=":
        return lv == rv
    if op == "!=":
        return lv != rv
    if op == "<":
        return lv < rv  # type: ignore[operator]
    if op == "<=":
        return lv <= rv  # type: ignore[operator]
    if op == ">":
        return lv > rv  # type: ignore[operator]
    if op == ">=":
        return lv >= rv  # type: ignore[operator]
    raise XPathError(f"unsupported comparison operator {op!r}")


def _as_number(value: str) -> float | None:
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #


class _PathParser:
    def __init__(self, expression: str) -> None:
        self.expression = expression
        self.tokens = _tokenize(expression)
        self.pos = 0

    def error(self, message: str) -> XPathError:
        return XPathError(f"{message} in {self.expression!r}")

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise self.error("unexpected end of expression")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise self.error(f"expected {token!r}, got {got!r}")

    # -- grammar -----------------------------------------------------------

    def parse(self) -> "XPath":
        absolute = False
        variable: str | None = None
        steps: list[Step] = []
        token = self.peek()
        if token is not None and token.startswith("$"):
            variable = self.next()[1:]
            token = self.peek()
        if token in ("/", "//"):
            absolute = True
        else:
            # relative path: first step has implicit child axis
            steps.append(self.parse_step("child"))
        while self.peek() in ("/", "//"):
            axis = "descendant" if self.next() == "//" else "child"
            steps.append(self.parse_step(axis))
        if self.pos != len(self.tokens):
            raise self.error(f"trailing tokens starting at {self.peek()!r}")
        if not steps:
            raise self.error("empty path")
        return XPath(self.expression, tuple(steps), absolute=absolute, variable=variable)

    def parse_step(self, axis: str) -> Step:
        token = self.next()
        if token == "@":
            test = "@" + self.next()
        elif token == "text":
            self.expect("(")
            self.expect(")")
            test = "text()"
        else:
            test = token
        predicates: list[BooleanExpr] = []
        while self.peek() == "[":
            self.next()
            predicates.append(self.parse_boolean())
            self.expect("]")
        return Step(axis, test, tuple(predicates))

    def parse_boolean(self) -> BooleanExpr:
        left = self.parse_conjunction()
        children = [left]
        while self.peek() == "or":
            self.next()
            children.append(self.parse_conjunction())
        if len(children) == 1:
            return children[0]
        return BooleanExpr("or", tuple(children))

    def parse_conjunction(self) -> BooleanExpr:
        left = self.parse_comparison()
        children = [left]
        while self.peek() == "and":
            self.next()
            children.append(self.parse_comparison())
        if len(children) == 1:
            return children[0]
        return BooleanExpr("and", tuple(children))

    def parse_comparison(self) -> BooleanExpr:
        left = self.parse_operand()
        if self.peek() in ("=", "!=", "<", "<=", ">", ">="):
            op = self.next()
            right = self.parse_operand()
            return BooleanExpr("leaf", leaf=Comparison(left, op, right))
        return BooleanExpr("leaf", leaf=Comparison(left, None))

    def parse_operand(self) -> Operand:
        token = self.peek()
        if token is None:
            raise self.error("expected operand")
        if token == "@":
            self.next()
            return Operand("attribute", self.next())
        if token.startswith(("'", '"')):
            self.next()
            return Operand("literal", token[1:-1])
        if token == "text":
            self.next()
            self.expect("(")
            self.expect(")")
            return Operand("text")
        if _as_number(token) is not None:
            self.next()
            return Operand("literal", token)
        # relative path operand
        steps: list[Step] = [self.parse_step("child")]
        while self.peek() in ("/", "//"):
            axis = "descendant" if self.next() == "//" else "child"
            steps.append(self.parse_step(axis))
        return Operand(
            "path",
            XPath("<relative>", tuple(steps), absolute=False, variable=None),
        )


# --------------------------------------------------------------------------- #
# Compiled existence matcher
# --------------------------------------------------------------------------- #


def _iter_subtree(node: Element) -> Iterable[Element]:
    """Pre-order iteration over ``node`` and its descendants, without recursion."""
    stack = [node]
    pop = stack.pop
    while stack:
        current = pop()
        yield current
        children = current.children
        if children:
            stack.extend(reversed(children))


class _CompiledMatcher:
    """Boolean-only evaluator for one :class:`XPath`, built once per path.

    :meth:`XPath.matches` only needs existence, not the selected node list,
    so this matcher propagates a deduplicated frontier step by step using
    explicit stacks (no Python recursion, however deep the document) and
    returns as soon as any node survives the final step.  Its verdict is
    identical to ``bool(XPath.select(root))``.
    """

    __slots__ = ("_first_is_root", "_steps")

    def __init__(self, path: "XPath") -> None:
        # For absolute child-axis paths the first step is matched against the
        # document root itself (mirrors XPath.select).
        self._first_is_root = path.absolute and path.steps[0].axis == "child"
        self._steps = tuple(
            (
                step.axis == "descendant",
                "attr" if step.is_attribute else ("text" if step.is_text else "elem"),
                step.test[1:] if step.is_attribute else step.test,
                step.predicates,
            )
            for step in path.steps
        )

    def matches(self, root: Element) -> bool:
        steps = self._steps
        start = 0
        frontier = [root]
        if self._first_is_root:
            _desc, kind, test, predicates = steps[0]
            if kind != "elem" or not (test == "*" or test == root.tag):
                return False
            for predicate in predicates:
                if not predicate.evaluate(root):
                    return False
            if len(steps) == 1:
                return True
            start = 1
        last = len(steps) - 1
        for index in range(start, len(steps)):
            descendant, kind, test, predicates = steps[index]
            is_last = index == last
            next_frontier: list[Element] = []
            seen: set[int] = set()
            for context in frontier:
                if kind == "attr":
                    holders = _iter_subtree(context) if descendant else (context,)
                    for holder in holders:
                        if test in holder.attrib:
                            if is_last:
                                return True
                            break  # attribute values cannot be navigated further
                    continue
                if kind == "text":
                    holders = _iter_subtree(context) if descendant else (context,)
                    for holder in holders:
                        if holder.text is not None:
                            if is_last:
                                return True
                            break  # text values cannot be navigated further
                    continue
                candidates = _iter_subtree(context) if descendant else context.children
                for candidate in candidates:
                    if test != "*" and candidate.tag != test:
                        continue
                    if predicates:
                        ok = True
                        for predicate in predicates:
                            if not predicate.evaluate(candidate):
                                ok = False
                                break
                        if not ok:
                            continue
                    if is_last:
                        return True
                    marker = id(candidate)
                    if marker not in seen:
                        seen.add(marker)
                        next_frontier.append(candidate)
            if is_last:
                return False
            frontier = next_frontier
            if not frontier:
                return False
        return False


# --------------------------------------------------------------------------- #
# XPath object
# --------------------------------------------------------------------------- #


class XPath:
    """A compiled path expression.

    Instances are immutable and safe to share between operators.  The parsed
    ``steps`` are public so that the YFilter automaton can be built from them.
    """

    def __init__(
        self,
        expression: str,
        steps: tuple[Step, ...],
        absolute: bool,
        variable: str | None,
    ) -> None:
        self.expression = expression
        self.steps = steps
        self.absolute = absolute
        self.variable = variable
        self._matcher: _CompiledMatcher | None = None

    # -- construction -------------------------------------------------------

    @classmethod
    def compile(cls, expression: str) -> "XPath":
        """Parse ``expression`` into an :class:`XPath`."""
        if not isinstance(expression, str) or not expression.strip():
            raise XPathError("path expression must be a non-empty string")
        return _PathParser(expression.strip()).parse()

    # -- evaluation ----------------------------------------------------------

    def select(
        self, root: Element, relative: bool = False
    ) -> list[Element | str]:
        """Evaluate against ``root`` and return matching nodes / values.

        For absolute paths (``/a/b``) the first step is matched against the
        root element itself, as the root is the document element.  For
        descendant paths (``//a``) and relative evaluation the step is matched
        against children / descendants of the context node.
        """
        first_axis = self.steps[0].axis
        if self.absolute and not relative and first_axis == "child":
            contexts: list[Element] = []
            step = self.steps[0]
            if (
                not step.is_attribute
                and not step.is_text
                and step.name_matches(root.tag)
                and step.predicates_match(root)
            ):
                contexts = [root]
            return self._walk(contexts, self.steps[1:], root)
        return self._walk([root], self.steps, root)

    def matches(self, root: Element) -> bool:
        """True when the path selects at least one node/value of ``root``.

        Runs through a compiled non-recursive matcher (built lazily, once per
        path) that short-circuits on the first witness instead of
        materialising the full ``select`` result.
        """
        matcher = self._matcher
        if matcher is None:
            matcher = self._matcher = _CompiledMatcher(self)
        return matcher.matches(root)

    def first(self, root: Element) -> Element | str | None:
        results = self.select(root)
        return results[0] if results else None

    def _walk(
        self,
        contexts: Sequence[Element],
        steps: Sequence[Step],
        root: Element,
    ) -> list[Element | str]:
        current: list[Element | str] = list(contexts)
        for step in steps:
            next_nodes: list[Element | str] = []
            for context in current:
                if not isinstance(context, Element):
                    continue  # cannot navigate below an attribute / text value
                if step.is_attribute:
                    # The attribute axis applies to the context node itself
                    # (e.g. /Stream/Stats/@avgVolume reads Stats' attribute);
                    # with // it applies to every descendant-or-self node.
                    name = step.test[1:]
                    holders = context.iter() if step.axis == "descendant" else [context]
                    for holder in holders:
                        value = holder.attrib.get(name)
                        if value is not None:
                            next_nodes.append(value)
                    continue
                if step.is_text:
                    holders = context.iter() if step.axis == "descendant" else [context]
                    for holder in holders:
                        if holder.text is not None:
                            next_nodes.append(holder.text)
                    continue
                candidates: Iterable[Element]
                if step.axis == "descendant":
                    candidates = context.iter()
                else:
                    candidates = context.children
                for candidate in candidates:
                    if step.name_matches(candidate.tag) and step.predicates_match(
                        candidate
                    ):
                        next_nodes.append(candidate)
            current = next_nodes
            if not current:
                return []
        return current

    # -- misc ----------------------------------------------------------------

    def is_linear(self) -> bool:
        """True when the path has no predicates (a pure location path)."""
        return all(not step.predicates for step in self.steps)

    def __repr__(self) -> str:
        return f"XPath({self.expression!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XPath):
            return NotImplemented
        return (
            self.steps == other.steps
            and self.absolute == other.absolute
            and self.variable == other.variable
        )

    def __hash__(self) -> int:
        return hash((self.steps, self.absolute, self.variable))


# --------------------------------------------------------------------------- #
# Module-level conveniences
# --------------------------------------------------------------------------- #


def xpath_select(expression: str, root: Element) -> list[Element | str]:
    """Compile and evaluate ``expression`` against ``root``."""
    return XPath.compile(expression).select(root)


def xpath_matches(expression: str, root: Element) -> bool:
    """True when ``expression`` selects anything in ``root``."""
    return XPath.compile(expression).matches(root)
