"""Snapshot diffing used by the Web page and RSS alerters.

The paper's WebPage Alerter "detects changes in XML/XHTML pages by comparing
their snapshots" and may report the delta; the RSS Feed Alerter attaches
richer semantics (entry added / removed / modified).  Both use the same
child-level diff implemented here: children of the two roots are aligned on
an identity key (an attribute such as ``guid`` or the tag+title), and every
child is classified as added, removed, modified or unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.xmlmodel.tree import Element

KeyFunction = Callable[[Element], str]


@dataclass
class TreeDelta:
    """The result of diffing two snapshots of a document."""

    added: list[Element] = field(default_factory=list)
    removed: list[Element] = field(default_factory=list)
    modified: list[tuple[Element, Element]] = field(default_factory=list)
    unchanged: list[Element] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.modified)

    def summary(self) -> dict[str, int]:
        return {
            "added": len(self.added),
            "removed": len(self.removed),
            "modified": len(self.modified),
            "unchanged": len(self.unchanged),
        }

    def to_element(self) -> Element:
        """Encode the delta as an XML tree (what the alerter ships in alerts)."""
        root = Element("delta", self.summary())
        for node in self.added:
            root.append(Element("added", children=[node.copy()]))
        for node in self.removed:
            root.append(Element("removed", children=[node.copy()]))
        for old, new in self.modified:
            root.append(
                Element("modified", children=[
                    Element("old", children=[old.copy()]),
                    Element("new", children=[new.copy()]),
                ])
            )
        return root


def default_key(node: Element) -> str:
    """Identity key for a child: prefer common id attributes, then an id-like
    child element (``<guid>`` in RSS), then the title/link, then the text."""
    for attr in ("id", "guid", "key", "href", "url"):
        if attr in node.attrib:
            return f"{node.tag}#{node.attrib[attr]}"
    for child_tag in ("guid", "id"):
        identifier = node.child_text(child_tag)
        if identifier:
            return f"{node.tag}#{identifier}"
    title = node.child_text("title") or node.child_text("link")
    if title:
        return f"{node.tag}#{title}"
    return f"{node.tag}#{node.text or ''}"


def diff_trees(
    old: Element, new: Element, key: KeyFunction | None = None
) -> TreeDelta:
    """Diff the children of two snapshots of the same document.

    Children present only in ``new`` are *added*, only in ``old`` are
    *removed*; children present in both but structurally different are
    *modified*.  Duplicate keys are aligned positionally within the key group.
    """
    key = key or default_key
    old_groups = _group_by_key(old, key)
    new_groups = _group_by_key(new, key)
    delta = TreeDelta()
    for group_key, new_nodes in new_groups.items():
        old_nodes = old_groups.get(group_key, [])
        for index, new_node in enumerate(new_nodes):
            if index >= len(old_nodes):
                delta.added.append(new_node)
            elif old_nodes[index] == new_node:
                delta.unchanged.append(new_node)
            else:
                delta.modified.append((old_nodes[index], new_node))
    for group_key, old_nodes in old_groups.items():
        new_count = len(new_groups.get(group_key, []))
        for node in old_nodes[new_count:]:
            delta.removed.append(node)
    return delta


def _group_by_key(root: Element, key: KeyFunction) -> dict[str, list[Element]]:
    groups: dict[str, list[Element]] = {}
    for child in root.children:
        groups.setdefault(key(child), []).append(child)
    return groups
