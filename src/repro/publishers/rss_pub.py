"""RSS publisher: exposes a result stream as an RSS feed."""

from __future__ import annotations

from pathlib import Path

from repro.publishers.base import Publisher
from repro.xmlmodel.serialize import pretty_xml
from repro.xmlmodel.tree import Element


class RSSPublisher(Publisher):
    """Maintains an RSS document with one ``<item>`` per published result."""

    mode = "rss"

    def __init__(self, title: str, max_items: int = 50, path: str | Path | None = None) -> None:
        super().__init__()
        self.title = title
        self.max_items = max_items
        self.path = Path(path) if path is not None else None
        self._items: list[Element] = []
        self._sequence = 0

    def publish(self, item: Element) -> None:
        self._sequence += 1
        entry = Element("item", children=[
            Element("guid", text=f"{self.title}-{self._sequence}"),
            Element("title", text=f"{item.tag} #{self._sequence}"),
            Element("description", children=[item.copy()]),
        ])
        self._items.insert(0, entry)
        del self._items[self.max_items :]
        if self.path is not None:
            self.path.write_text(pretty_xml(self.feed()), encoding="utf-8")

    def feed(self) -> Element:
        """The current RSS document."""
        channel = Element("channel", children=[Element("title", text=self.title)])
        for item in self._items:
            channel.append(item.copy())
        return Element("rss", {"version": "2.0"}, [channel])
