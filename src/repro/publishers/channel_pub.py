"""Channel publisher: the basis of the Pub/Sub mechanism.

Publishing a stream as a channel makes it available to remote subscribers;
the publisher can also subscribe an initial client automatically, as in the
``by channel X and subscribe(b.com, #X, X)`` tasks of Section 3.4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.publishers.base import Publisher
from repro.streams.stream import Stream
from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.peer import Peer


class ChannelPublisher(Publisher):
    """Republishes a stream as a named channel at a peer."""

    mode = "channel"

    def __init__(self, peer: "Peer", channel_id: str) -> None:
        super().__init__()
        self.peer = peer
        self.channel_id = channel_id
        # the channel wraps a dedicated relay stream owned by the peer
        self.relay = Stream(f"#{channel_id}", peer.peer_id)
        self.channel = peer.publish_channel(channel_id, self.relay)

    def publish(self, item: Element) -> None:
        self.relay.emit(item)

    def on_close(self) -> None:
        self.relay.close()

    def add_subscriber(self, subscriber_peer_id: str) -> None:
        """Register an initial subscriber without a network round-trip."""
        self.channel.add_subscriber(subscriber_peer_id)

    def retire(self) -> None:
        """Give the channel name back so a replacement can republish it."""
        self.disconnect()
        self.peer.channels.unpublish_exact(self.channel_id, self.channel)
