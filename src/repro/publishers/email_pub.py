"""E-mail publisher (simulated outbox).

There is no SMTP server in the reproduction environment; sent messages are
collected in an in-memory outbox so that examples and tests can assert on
what would have been mailed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.publishers.base import Publisher
from repro.xmlmodel.serialize import pretty_xml
from repro.xmlmodel.tree import Element


@dataclass(frozen=True)
class Email:
    recipient: str
    subject: str
    body: str


class EmailPublisher(Publisher):
    """Sends one e-mail per result item to a fixed recipient."""

    mode = "email"

    def __init__(self, recipient: str, subject_prefix: str = "[P2PM]") -> None:
        super().__init__()
        self.recipient = recipient
        self.subject_prefix = subject_prefix
        self.outbox: list[Email] = []

    def publish(self, item: Element) -> None:
        subject = f"{self.subject_prefix} {item.tag}"
        if "type" in item.attrib:
            subject = f"{subject}: {item.attrib['type']}"
        self.outbox.append(Email(self.recipient, subject, pretty_xml(item)))
