"""Common behaviour of publishers (stream sinks)."""

from __future__ import annotations

from typing import Callable

from repro.streams.item import is_eos
from repro.streams.stream import Stream
from repro.xmlmodel.tree import Element


class Publisher:
    """Base class: consumes a stream and exposes it in some external form."""

    mode = "publisher"

    def __init__(self) -> None:
        self.items_published = 0
        self.closed = False
        self._unsubscribes: list[Callable[[], None]] = []

    def connect(self, stream: Stream) -> "Publisher":
        self._unsubscribes.append(stream.subscribe(self._receive))
        return self

    def disconnect(self) -> None:
        """Stop consuming every connected stream (used at cancellation)."""
        while self._unsubscribes:
            self._unsubscribes.pop()()

    def retire(self) -> None:
        """Release externally-visible identities ahead of a replacement.

        Recovery redeploys make-before-break, so the replacement publisher
        is created while this one still exists; publishers that own a
        per-peer-unique name (a published channel, say) must give it up
        here or the replacement would be forced onto a collision-suffixed
        one.  The base implementation only disconnects.
        """
        self.disconnect()

    def _receive(self, item: object) -> None:
        if is_eos(item):
            self.closed = True
            self.on_close()
            return
        assert isinstance(item, Element)
        self.items_published += 1
        self.publish(item)

    def publish(self, item: Element) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_close(self) -> None:
        """Hook called when the input stream terminates."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(items={self.items_published})"
