"""File and Web-page publishers.

``FilePublisher`` appends every result to an XML log document (optionally
persisted to disk); ``WebPagePublisher`` maintains a small XHTML page whose
body lists the most recent results, newest first.
"""

from __future__ import annotations

from pathlib import Path

from repro.publishers.base import Publisher
from repro.xmlmodel.serialize import pretty_xml
from repro.xmlmodel.tree import Element


class FilePublisher(Publisher):
    """Collects results into an XML document, optionally written to disk."""

    mode = "file"

    def __init__(self, path: str | Path | None = None, root_tag: str = "results") -> None:
        super().__init__()
        self.path = Path(path) if path is not None else None
        self.document = Element(root_tag)

    def publish(self, item: Element) -> None:
        self.document.append(item.copy())
        if self.path is not None:
            self.path.write_text(pretty_xml(self.document), encoding="utf-8")

    def on_close(self) -> None:
        if self.path is not None:
            self.path.write_text(pretty_xml(self.document), encoding="utf-8")


class WebPagePublisher(Publisher):
    """Maintains an XHTML page listing the latest results."""

    mode = "webpage"

    def __init__(self, title: str, max_entries: int = 20, path: str | Path | None = None) -> None:
        super().__init__()
        self.title = title
        self.max_entries = max_entries
        self.path = Path(path) if path is not None else None
        self._entries: list[Element] = []

    def publish(self, item: Element) -> None:
        self._entries.insert(0, item.copy())
        del self._entries[self.max_entries :]
        if self.path is not None:
            self.path.write_text(pretty_xml(self.page()), encoding="utf-8")

    def page(self) -> Element:
        """The current XHTML page."""
        body = Element("body", children=[Element("h1", text=self.title)])
        items = Element("ul")
        for entry in self._entries:
            items.append(Element("li", children=[entry.copy()]))
        body.append(items)
        return Element("html", children=[
            Element("head", children=[Element("title", text=self.title)]),
            body,
        ])
