"""RSS Feed Alerter: detects changes in an RSS feed by comparing snapshots.

"With RSS, the alerts have more semantics than with arbitrary XML: e.g.,
add, remove and modify entry."  One alert is emitted per changed entry, with
the change kind in the root attributes so that simple conditions can select
on it (e.g. ``$x.kind = "add"``).
"""

from __future__ import annotations

from typing import Callable

from repro.alerters.base import Alerter
from repro.xmlmodel.diff import diff_trees
from repro.xmlmodel.tree import Element

#: A feed source: a callable returning the current snapshot (an ``rss`` or
#: ``channel`` element whose children are the feed items).
FeedSource = Callable[[], Element]


class RSSFeedAlerter(Alerter):
    """Polls an RSS feed and emits one alert per added/removed/modified entry."""

    kind = "rss"

    def __init__(self, peer_id: str, feed_url: str, source: FeedSource, stream=None) -> None:
        super().__init__(peer_id, stream)
        self.feed_url = feed_url
        self._source = source
        self._last_snapshot: Element | None = None
        self.polls = 0

    def poll(self) -> int:
        """Fetch the current snapshot, diff it, emit alerts.  Returns #alerts."""
        self.polls += 1
        snapshot = self._channel_of(self._source())
        produced = 0
        if self._last_snapshot is not None:
            delta = diff_trees(self._last_snapshot, snapshot)
            for entry in delta.added:
                self._emit("add", entry)
                produced += 1
            for entry in delta.removed:
                self._emit("remove", entry)
                produced += 1
            for old, new in delta.modified:
                self._emit("modify", new, old)
                produced += 1
        self._last_snapshot = snapshot
        return produced

    def _emit(self, kind: str, entry: Element, previous: Element | None = None) -> None:
        alert = Element(
            "alert",
            {
                "kind": kind,
                "feed": self.feed_url,
                "peer": self.peer_id,
                "entry": entry.child_text("guid") or entry.child_text("title") or "",
            },
        )
        alert.append(Element("entry", children=[entry.copy()]))
        if previous is not None:
            alert.append(Element("previous", children=[previous.copy()]))
        self.emit_alert(alert)

    @staticmethod
    def _channel_of(snapshot: Element) -> Element:
        """Accept either a whole ``<rss>`` document or its ``<channel>``."""
        if snapshot.tag == "rss":
            channel = snapshot.find("channel")
            if channel is not None:
                return channel.copy()
        return snapshot.copy()
