"""WebPage Alerter: detects changes in XML/XHTML pages by comparing snapshots.

The alerter can watch a *collection* of pages (the paper mentions an
auxiliary Web crawler for collections); each watched page has a provider
callable returning its current content.  The alert optionally carries the
delta between the two snapshots.
"""

from __future__ import annotations

from typing import Callable

from repro.alerters.base import Alerter
from repro.xmlmodel.diff import diff_trees
from repro.xmlmodel.tree import Element

PageSource = Callable[[], Element]


class WebPageAlerter(Alerter):
    """Watches a set of pages and emits one alert per changed page."""

    kind = "webpage"

    def __init__(self, peer_id: str, include_delta: bool = True, stream=None) -> None:
        super().__init__(peer_id, stream)
        self.include_delta = include_delta
        self._pages: dict[str, PageSource] = {}
        self._snapshots: dict[str, Element] = {}
        self.crawls = 0

    # -- page management --------------------------------------------------------

    def watch(self, url: str, source: PageSource) -> None:
        """Start watching ``url``; the first crawl records the baseline snapshot."""
        self._pages[url] = source

    def unwatch(self, url: str) -> None:
        self._pages.pop(url, None)
        self._snapshots.pop(url, None)

    @property
    def watched_urls(self) -> list[str]:
        return sorted(self._pages)

    # -- crawling -------------------------------------------------------------------

    def crawl(self) -> int:
        """Fetch every watched page, emit alerts for changes.  Returns #alerts."""
        self.crawls += 1
        produced = 0
        for url in self.watched_urls:
            current = self._pages[url]().copy()
            previous = self._snapshots.get(url)
            self._snapshots[url] = current
            if previous is None or previous == current:
                continue
            alert = Element(
                "alert",
                {"url": url, "peer": self.peer_id, "crawl": str(self.crawls)},
            )
            if self.include_delta:
                alert.append(diff_trees(previous, current).to_element())
            self.emit_alert(alert)
            produced += 1
        return produced
