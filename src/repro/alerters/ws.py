"""WS Alerter: observes SOAP RPC communications at a peer.

"A WS Alerter intercepts inbound-outbound Web service calls and produces
alerts including SOAP envelopes expanded with annotations such as timestamps
and the identifiers (DNS/IP) for caller/called entities."  In the paper the
interception is done by Axis handlers; here the synthetic SOAP workload
(:mod:`repro.workloads.soap_traffic`) notifies the alerters of every
call/response pair it generates, which exercises exactly the same downstream
code paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.alerters.base import Alerter
from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.soap_traffic import SoapCall

#: Directions a WS alerter can observe.
IN = "in"
OUT = "out"


def soap_alert(call: "SoapCall", direction: str) -> Element:
    """Build the alert item for one completed SOAP call.

    The root attributes carry the annotations used by simple conditions
    (call identifier, caller/callee, method, timestamps, duration); the SOAP
    envelope travels as a sub-element.
    """
    alert = Element(
        "alert",
        {
            "direction": direction,
            "callId": call.call_id,
            "caller": call.caller,
            "callee": call.callee,
            "callMethod": call.method,
            "callTimestamp": f"{call.call_timestamp:.3f}",
            "responseTimestamp": f"{call.response_timestamp:.3f}",
            "status": call.status,
        },
    )
    alert.append(call.envelope())
    if call.status != "ok":
        alert.append(Element("error", {"code": call.status}))
    return alert


class WSAlerter(Alerter):
    """Alerter for Web-service calls seen at one peer, in one direction."""

    kind = "ws"

    def __init__(self, peer_id: str, direction: str, stream=None) -> None:
        if direction not in (IN, OUT):
            raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
        self.direction = direction
        super().__init__(peer_id, stream)
        self.output.stream_id = f"{'inCOM' if direction == IN else 'outCOM'}"

    @property
    def p2pml_function(self) -> str:
        """The FOR-clause function this alerter implements."""
        return "inCOM" if self.direction == IN else "outCOM"

    def observe_call(self, call: "SoapCall") -> None:
        """Called by the monitored application when a call completes.

        An *out* alerter reports calls issued by its peer; an *in* alerter
        reports calls served by its peer.  Calls not involving the peer are
        ignored, so one traffic generator can notify every alerter.
        """
        if self.direction == OUT and call.caller == self.peer_id:
            self.emit_alert(soap_alert(call, OUT))
        elif self.direction == IN and call.callee == self.peer_id:
            self.emit_alert(soap_alert(call, IN))
