"""ActiveXML repository alerter: detects updates to a peer's document repository.

"An ActiveXML alerter detects updates to the ActiveXML peer's repository."
The repository here is a small in-memory document store; every insert,
replace and delete produces an alert carrying the document name, the kind of
update and (for inserts/replacements) the new content.
"""

from __future__ import annotations

from repro.alerters.base import Alerter
from repro.xmlmodel.tree import Element


class AXMLRepository:
    """A peer's (Active)XML document repository with update notification."""

    def __init__(self, peer_id: str) -> None:
        self.peer_id = peer_id
        self._documents: dict[str, Element] = {}
        self._listeners: list["AXMLRepositoryAlerter"] = []

    # -- documents ------------------------------------------------------------

    def get(self, name: str) -> Element | None:
        return self._documents.get(name)

    @property
    def document_names(self) -> list[str]:
        return sorted(self._documents)

    def store(self, name: str, document: Element) -> None:
        """Insert or replace a document; notifies the attached alerters."""
        kind = "replace" if name in self._documents else "insert"
        self._documents[name] = document.copy()
        self._notify(kind, name, document)

    def delete(self, name: str) -> bool:
        if name not in self._documents:
            return False
        del self._documents[name]
        self._notify("delete", name, None)
        return True

    # -- notification ----------------------------------------------------------------

    def attach(self, alerter: "AXMLRepositoryAlerter") -> None:
        self._listeners.append(alerter)

    def _notify(self, kind: str, name: str, document: Element | None) -> None:
        for listener in self._listeners:
            listener.on_update(kind, name, document)


class AXMLRepositoryAlerter(Alerter):
    """Emits one alert per repository update."""

    kind = "axml"

    def __init__(self, peer_id: str, repository: AXMLRepository, stream=None) -> None:
        super().__init__(peer_id, stream)
        self.repository = repository
        repository.attach(self)

    def on_update(self, kind: str, name: str, document: Element | None) -> None:
        alert = Element(
            "alert",
            {"kind": kind, "document": name, "peer": self.peer_id},
        )
        if document is not None:
            alert.append(Element("content", children=[document.copy()]))
        self.emit_alert(alert)
