"""Alerters: 0-ary operators that observe external systems and produce streams.

"Each alerter is specialized in detecting particular events in some systems
that are external to P2PM" (Section 3.1).  Every alerter owns an output
:class:`~repro.streams.Stream` of XML alert items whose *root attributes*
carry the generic information (identifiers, timestamps, peers) that the
preFilter tests, and whose sub-elements carry the richer payload (SOAP
envelope, page delta, ...).
"""

from repro.alerters.base import Alerter
from repro.alerters.ws import WSAlerter, soap_alert
from repro.alerters.rss import RSSFeedAlerter
from repro.alerters.webpage import WebPageAlerter
from repro.alerters.axml_repo import AXMLRepository, AXMLRepositoryAlerter
from repro.alerters.dht_membership import AreRegisteredAlerter
from repro.alerters.registry import (
    alerter_functions,
    create_alerter,
    register_alerter,
    unregister_alerter,
)

__all__ = [
    "Alerter",
    "WSAlerter",
    "soap_alert",
    "RSSFeedAlerter",
    "WebPageAlerter",
    "AXMLRepository",
    "AXMLRepositoryAlerter",
    "AreRegisteredAlerter",
    "register_alerter",
    "unregister_alerter",
    "create_alerter",
    "alerter_functions",
]
