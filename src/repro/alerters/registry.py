"""Declarative registry of alerter kinds.

"Each alerter is specialized in detecting particular events in some systems
that are external to P2PM" (Section 3.1).  New alerter kinds plug in
without touching the deployment layer: a factory registered under one or
more P2PML function names builds the alerter on demand at the hosting peer.

    @register_alerter("rssFeed", "rss")
    def _make_rss(peer, function):
        url, source = peer.single_feed_source(function)
        return RSSFeedAlerter(peer.peer_id, url, source)

``peer`` is the hosting :class:`~repro.monitor.p2pm_peer.P2PMPeer` and
``function`` the FOR-clause name the subscription used, so one factory can
serve several aliases (e.g. ``inCOM``/``outCOM``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.alerters.axml_repo import AXMLRepositoryAlerter
from repro.alerters.base import Alerter
from repro.alerters.dht_membership import AreRegisteredAlerter
from repro.alerters.rss import RSSFeedAlerter
from repro.alerters.webpage import WebPageAlerter
from repro.alerters.ws import WSAlerter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.p2pm_peer import P2PMPeer

AlerterFactory = Callable[["P2PMPeer", str], Alerter]

_FACTORIES: dict[str, AlerterFactory] = {}


def register_alerter(*functions: str) -> Callable[[AlerterFactory], AlerterFactory]:
    """Register a factory for the given P2PML function name(s)."""
    if not functions:
        raise ValueError("register_alerter needs at least one function name")

    def decorator(factory: AlerterFactory) -> AlerterFactory:
        for function in functions:
            if function in _FACTORIES:
                raise ValueError(f"alerter function {function!r} already registered")
            _FACTORIES[function] = factory
        return factory

    return decorator


def unregister_alerter(function: str) -> bool:
    """Remove a registration (tests and plug-in reloads); False when unknown."""
    return _FACTORIES.pop(function, None) is not None


def alerter_functions() -> list[str]:
    """All registered P2PML function names."""
    return sorted(_FACTORIES)


def create_alerter(peer: "P2PMPeer", function: str) -> Alerter:
    """Build the alerter implementing ``function`` at ``peer``."""
    factory = _FACTORIES.get(function)
    if factory is None:
        raise ValueError(
            f"peer {peer.peer_id!r} cannot host an alerter for {function!r} "
            f"(registered: {', '.join(alerter_functions())})"
        )
    return factory(peer, function)


# -- built-in alerter kinds ------------------------------------------------------


@register_alerter("inCOM")
def _make_incom(peer: "P2PMPeer", function: str) -> Alerter:
    return WSAlerter(peer.peer_id, "in")


@register_alerter("outCOM")
def _make_outcom(peer: "P2PMPeer", function: str) -> Alerter:
    return WSAlerter(peer.peer_id, "out")


@register_alerter("rssFeed", "rss")
def _make_rss(peer: "P2PMPeer", function: str) -> Alerter:
    url, source = peer.single_feed_source(function)
    return RSSFeedAlerter(peer.peer_id, url, source)


# the P2PML lexer normalises keyword-like alerter names to lower case
@register_alerter("webPage", "webpage")
def _make_webpage(peer: "P2PMPeer", function: str) -> Alerter:
    alerter = WebPageAlerter(peer.peer_id)
    for url, source in sorted(peer.feed_sources.items()):
        alerter.watch(url, source)
    return alerter


@register_alerter("axmlRepo")
def _make_axml(peer: "P2PMPeer", function: str) -> Alerter:
    return AXMLRepositoryAlerter(peer.peer_id, peer.repository)


@register_alerter("areRegistered")
def _make_membership(peer: "P2PMPeer", function: str) -> Alerter:
    return AreRegisteredAlerter(peer.peer_id, peer.system.kadop)
