"""areRegistered alerter: the stream of peers joining or leaving a DHT.

Section 2 uses it to drive other alerters dynamically::

    for $j in areRegistered(<p>s.com/dht</p>)
    for $c in inCOM($j) ...

The alerter subscribes to the membership events of a
:class:`~repro.dht.KadopIndex` (or any object exposing
``subscribe_membership``) and emits ``<p-join>``/``<p-leave>`` items wrapped
in a root carrying the peer id as an attribute so that simple conditions can
select on it.
"""

from __future__ import annotations

from repro.alerters.base import Alerter
from repro.dht.kadop import KadopIndex, MembershipEvent
from repro.xmlmodel.tree import Element


class AreRegisteredAlerter(Alerter):
    """Emits one alert per join/leave event of the watched DHT."""

    kind = "membership"

    def __init__(self, peer_id: str, index: KadopIndex, stream=None) -> None:
        super().__init__(peer_id, stream)
        self.index = index
        index.subscribe_membership(self.on_event)

    def on_event(self, event: MembershipEvent) -> None:
        alert = Element(
            "alert",
            {"kind": event.kind, "peer": event.peer_id, "dht": self.peer_id},
        )
        alert.append(event.to_element())
        self.emit_alert(alert)
