"""Common behaviour of all alerters."""

from __future__ import annotations

from repro.streams.stream import Stream
from repro.xmlmodel.tree import Element


class Alerter:
    """Base class: an event source producing a stream of XML alert items."""

    #: Alerter kind, as referenced by P2PML FOR clauses (e.g. ``inCOM``).
    kind = "alerter"

    def __init__(self, peer_id: str, stream: Stream | None = None) -> None:
        self.peer_id = peer_id
        self.output = stream if stream is not None else Stream(f"{self.kind}", peer_id)
        self.alerts_produced = 0

    def emit_alert(self, alert: Element) -> None:
        """Publish one alert on the output stream."""
        self.alerts_produced += 1
        self.output.emit(alert)

    def close(self) -> None:
        """Signal that this alerter will not produce further alerts."""
        self.output.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(peer={self.peer_id!r}, alerts={self.alerts_produced})"
