"""P2P Monitor (P2PM) -- a reproduction of Abiteboul & Marinoiu,
"Distributed Monitoring of Peer to Peer Systems" (WIDM 2007).

The package is organised bottom-up:

* :mod:`repro.xmlmodel` -- XML trees, parsing, XPath subset, ActiveXML.
* :mod:`repro.streams` -- push-based streams of XML trees.
* :mod:`repro.net` -- deterministic simulated P2P network, peers, channels.
* :mod:`repro.dht` -- Chord-style DHT and the KadoP-like XML index.
* :mod:`repro.filtering` -- the two-stage Filter (preFilter, AES, YFilter).
* :mod:`repro.algebra` -- the ActiveXML stream algebra and its operators.
* :mod:`repro.p2pml` -- the P2PML subscription language.
* :mod:`repro.alerters`, :mod:`repro.publishers` -- stream sources and sinks.
* :mod:`repro.monitor` -- subscription manager, optimiser, placement,
  stream reuse, deployment; the :class:`repro.monitor.P2PMPeer` facade.
* :mod:`repro.workloads` -- synthetic workloads (SOAP traffic, RSS feeds,
  Web pages, the Edos content-sharing network, the meteo QoS scenario).
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
