"""P2PML -- the Peer-to-Peer Monitor Language (Section 2).

A subscription is a declarative statement with five clauses::

    for $c1 in outCOM(<p>http://a.com</p> <p>http://b.com</p>),
        $c2 in inCOM(<p>http://meteo.com</p>)
    let $duration := $c1.responseTimestamp - $c1.callTimestamp
    where $duration > 10 and
          $c1.callMethod = "GetTemperature" and
          $c1.callee = "http://meteo.com" and
          $c1.callId = $c2.callId
    return <incident type="slowAnswer">
             <client>{$c1.caller}</client>
             <tstamp>{$c2.callTimestamp}</tstamp>
           </incident>
    by publish as channel "alertQoS";

:func:`parse_subscription` turns the text into an AST and
:func:`compile_subscription` turns the AST into an algebraic monitoring plan
(a :class:`repro.algebra.PlanNode` tree) with selections already pushed next
to their sources.
"""

from repro.p2pml.errors import P2PMLCompileError, P2PMLSyntaxError
from repro.p2pml.ast import (
    AlerterSource,
    ByClause,
    Condition,
    ForBinding,
    LetDefinition,
    NestedSource,
    Operand,
    SubscriptionAST,
)
from repro.p2pml.parser import parse_subscription
from repro.p2pml.compiler import compile_subscription, compile_text
from repro.p2pml.builder import SubscriptionBuilder

__all__ = [
    "P2PMLCompileError",
    "P2PMLSyntaxError",
    "SubscriptionBuilder",
    "AlerterSource",
    "ByClause",
    "Condition",
    "ForBinding",
    "LetDefinition",
    "NestedSource",
    "Operand",
    "SubscriptionAST",
    "parse_subscription",
    "compile_subscription",
    "compile_text",
]
