"""Errors raised while parsing or compiling P2PML subscriptions."""


class P2PMLSyntaxError(ValueError):
    """The subscription text is not valid P2PML."""

    def __init__(self, message: str, position: int | None = None, source: str | None = None):
        if position is not None and source is not None:
            line = source.count("\n", 0, position) + 1
            column = position - (source.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {column})"
            self.line = line
            self.column = column
        super().__init__(message)
        self.position = position


class P2PMLCompileError(ValueError):
    """The subscription is well-formed but cannot be compiled into a plan."""
