"""Abstract syntax tree of P2PML subscriptions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmlmodel.tree import Element


@dataclass
class Operand:
    """One side of a WHERE condition or a LET arithmetic term.

    ``kind`` is one of ``"attribute"`` ($var.attr), ``"path"`` ($var/xpath),
    ``"variable"`` (a bare $var -- a LET variable or a stream variable),
    ``"literal"`` (string) or ``"number"``.
    """

    kind: str
    var: str | None = None
    detail: str | None = None
    value: str | None = None

    @classmethod
    def parse(cls, text: "str | int | float | Operand") -> "Operand":
        """Build an operand from its P2PML surface syntax.

        ``$var.attr`` is an attribute reference, ``$var/xpath`` a path,
        ``$var`` a bare variable; numbers (or numeric strings) are number
        literals and anything else -- optionally double-quoted -- a string
        literal.  The programmatic :class:`~repro.p2pml.builder.\
        SubscriptionBuilder` uses this so fluent conditions read like the
        textual language.
        """
        if isinstance(text, Operand):
            return text
        if isinstance(text, (int, float)):
            return cls("number", value=repr(text))
        text = text.strip()
        if text.startswith("$"):
            body = text[1:]
            if "/" in body and ("." not in body or body.index("/") < body.index(".")):
                var, detail = body.split("/", 1)
                return cls("path", var=var, detail=detail)
            if "." in body:
                var, detail = body.split(".", 1)
                return cls("attribute", var=var, detail=detail)
            return cls("variable", var=body)
        if len(text) >= 2 and text[0] == '"' and text[-1] == '"':
            return cls("literal", value=text[1:-1])
        try:
            float(text)
        except ValueError:
            return cls("literal", value=text)
        return cls("number", value=text)

    @property
    def is_reference(self) -> bool:
        return self.kind in ("attribute", "path", "variable")

    def __str__(self) -> str:
        if self.kind == "attribute":
            return f"${self.var}.{self.detail}"
        if self.kind == "path":
            return f"${self.var}/{self.detail}"
        if self.kind == "variable":
            return f"${self.var}"
        if self.kind == "number":
            return str(self.value)
        return repr(self.value)


@dataclass
class Condition:
    """A WHERE conjunct: ``left op right`` or an existence test on ``left``."""

    left: Operand
    op: str | None = None
    right: Operand | None = None

    def variables(self) -> set[str]:
        names = set()
        for operand in (self.left, self.right):
            if operand is not None and operand.is_reference and operand.var:
                names.add(operand.var)
        return names

    def __str__(self) -> str:
        if self.op is None:
            return str(self.left)
        return f"{self.left} {self.op} {self.right}"


@dataclass
class LetDefinition:
    """``let $name := term1 +/- term2 ...`` -- a signed sum of operands."""

    name: str
    terms: list[tuple[int, Operand]] = field(default_factory=list)

    def variables(self) -> set[str]:
        return {
            operand.var
            for _, operand in self.terms
            if operand.is_reference and operand.var
        }


@dataclass
class AlerterSource:
    """``alerterName(<p>peer</p> ... )`` or ``alerterName($membershipVar)``."""

    function: str
    peer_args: list[Element] = field(default_factory=list)
    stream_var: str | None = None

    @property
    def peers(self) -> list[str]:
        """Monitored peers named by ``<p>...</p>`` arguments."""
        peers = []
        for arg in self.peer_args:
            for node in arg.iter("p"):
                if node.text:
                    peers.append(node.text.strip())
            if arg.tag == "p" and arg.text:
                pass  # already collected by iter("p")
        return peers


@dataclass
class NestedSource:
    """A nested subscription used as a stream source."""

    subscription: "SubscriptionAST"


@dataclass
class ForBinding:
    """``$var in <source>``."""

    var: str
    source: AlerterSource | NestedSource


@dataclass
class ByClause:
    """How the user is notified: channel, e-mail, file, RSS or web page."""

    mode: str  # "channel" | "email" | "file" | "rss" | "webpage"
    target: str
    publish: bool = True
    subscriber: tuple[str, str, str] | None = None  # (peer, node, channel)


@dataclass
class SubscriptionAST:
    """A full P2PML subscription."""

    bindings: list[ForBinding]
    lets: list[LetDefinition] = field(default_factory=list)
    conditions: list[Condition] = field(default_factory=list)
    template: Element | None = None
    return_var: str | None = None
    distinct: bool = False
    by: ByClause | None = None

    def variables(self) -> list[str]:
        return [binding.var for binding in self.bindings]

    def let_names(self) -> set[str]:
        return {definition.name for definition in self.lets}
