"""Tokenizer for P2PML.

The lexer is *pull-based*: the parser asks for one token at a time, which
lets the parser switch to XML mode (``read_xml_fragment``) when a clause
embeds an XML fragment (alerter arguments, the RETURN template) and to
path mode (``read_path_tail``) for XPath operands inside WHERE conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.p2pml.errors import P2PMLSyntaxError
from repro.xmlmodel.parse import _Parser as _XMLParser
from repro.xmlmodel.tree import Element

KEYWORDS = {
    "for",
    "in",
    "let",
    "where",
    "and",
    "or",
    "return",
    "distinct",
    "by",
    "publish",
    "as",
    "channel",
    "email",
    "file",
    "rss",
    "webpage",
    "subscribe",
}

# multi-character symbols first so they win over single-character ones
_SYMBOLS = (":=", "!=", "<=", ">=", "=", "<", ">", "(", ")", ",", ";", ".", "#", "@", "+", "-")


@dataclass(frozen=True)
class Token:
    type: str  # "keyword" | "ident" | "var" | "string" | "number" | "symbol" | "eof"
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type == "keyword" and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        return self.type == "symbol" and self.value == symbol


class Lexer:
    """Pull-based tokenizer over a P2PML subscription text."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0

    # -- helpers ----------------------------------------------------------------

    def error(self, message: str, position: int | None = None) -> P2PMLSyntaxError:
        return P2PMLSyntaxError(message, position if position is not None else self.pos, self.source)

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            char = self.source[self.pos]
            if char in " \t\r\n":
                self.pos += 1
            elif self.source.startswith("%", self.pos):
                # '%' starts a comment running to end of line (as in the paper's listings)
                end = self.source.find("\n", self.pos)
                self.pos = len(self.source) if end == -1 else end + 1
            else:
                return

    # -- token production -----------------------------------------------------------

    def peek(self) -> Token:
        saved = self.pos
        token = self.next()
        self.pos = saved
        return token

    def next(self) -> Token:
        self._skip_whitespace_and_comments()
        if self.pos >= len(self.source):
            return Token("eof", "", self.pos)
        start = self.pos
        char = self.source[start]

        if char == "$":
            self.pos += 1
            name = self._read_name()
            if not name:
                raise self.error("expected a variable name after '$'", start)
            return Token("var", name, start)

        if char in "'\"":
            end = self.source.find(char, start + 1)
            if end == -1:
                raise self.error("unterminated string literal", start)
            self.pos = end + 1
            return Token("string", self.source[start + 1 : end], start)

        if char.isdigit():
            self.pos += 1
            while self.pos < len(self.source) and (
                self.source[self.pos].isdigit() or self.source[self.pos] == "."
            ):
                self.pos += 1
            return Token("number", self.source[start : self.pos], start)

        for symbol in _SYMBOLS:
            if self.source.startswith(symbol, start):
                self.pos = start + len(symbol)
                return Token("symbol", symbol, start)

        if char.isalpha() or char == "_":
            name = self._read_name()
            if name.lower() in KEYWORDS:
                return Token("keyword", name.lower(), start)
            return Token("ident", name, start)

        raise self.error(f"unexpected character {char!r}")

    def _read_name(self) -> str:
        start = self.pos
        while self.pos < len(self.source):
            char = self.source[self.pos]
            if char.isalnum() or char in "_-":
                self.pos += 1
            else:
                break
        return self.source[start : self.pos]

    # -- mode switches -------------------------------------------------------------------

    def at_xml_fragment(self) -> bool:
        """True when the next non-space character starts an XML element."""
        self._skip_whitespace_and_comments()
        if self.pos >= len(self.source) or self.source[self.pos] != "<":
            return False
        nxt = self.source[self.pos + 1 : self.pos + 2]
        return bool(nxt) and (nxt.isalpha() or nxt in "_")

    def read_xml_fragment(self) -> Element:
        """Parse one balanced XML element starting at the current position."""
        self._skip_whitespace_and_comments()
        parser = _XMLParser(self.source)
        parser.pos = self.pos
        try:
            element = parser.parse_element()
        except Exception as exc:  # XMLParseError carries its own location info
            raise self.error(f"invalid XML fragment: {exc}", self.pos) from exc
        self.pos = parser.pos
        return element

    def read_path_tail(self) -> str:
        """Read an XPath tail (``/step[...]...``) starting at the current position.

        Consumes characters until a whitespace, comma, closing parenthesis or
        semicolon at bracket depth zero.
        """
        start = self.pos
        depth = 0
        in_string: str | None = None
        while self.pos < len(self.source):
            char = self.source[self.pos]
            if in_string:
                if char == in_string:
                    in_string = None
            elif char in "'\"":
                in_string = char
            elif char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif depth == 0 and (char in " \t\r\n,;)" or char == "{" or char == "}"):
                break
            self.pos += 1
        if in_string:
            raise self.error("unterminated string inside path expression", start)
        return self.source[start : self.pos]
