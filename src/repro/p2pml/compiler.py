"""Compilation of P2PML subscriptions into algebraic monitoring plans.

The compiler produces the *canonical* plan of Section 3.3: per-variable
filters sit directly above each variable's source (an alerter, a union of
alerters, or a nested sub-plan), joins combine the variables on their
cross-variable equality conditions, then Duplicate-removal, Restructure and
finally the publisher.  Operator placement is left to the placement phase
(everything except the alerters is ``@any``), and further algebraic
optimisation (selection push-down through unions) is performed by the
Subscription Manager's optimiser.
"""

from __future__ import annotations

from repro.algebra.plan import (
    ALERTER,
    DISTINCT,
    FILTER,
    JOIN,
    PUBLISH,
    RESTRUCTURE,
    UNION,
    PlanNode,
)
from repro.algebra.template import RestructureTemplate, ValueRef
from repro.filtering.conditions import (
    ComputedCondition,
    FilterSubscription,
    SimpleCondition,
)
from repro.p2pml.ast import (
    AlerterSource,
    Condition,
    LetDefinition,
    NestedSource,
    Operand,
    SubscriptionAST,
)
from repro.p2pml.errors import P2PMLCompileError
from repro.p2pml.parser import parse_subscription
from repro.xmlmodel.tree import Element
from repro.xmlmodel.xpath import XPath, XPathError

_MIRROR = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def compile_text(text: str, sub_id: str = "subscription") -> PlanNode:
    """Parse and compile a subscription given as P2PML text."""
    return compile_subscription(parse_subscription(text), sub_id)


def compile_subscription(ast: SubscriptionAST, sub_id: str = "subscription") -> PlanNode:
    """Compile a parsed subscription into a monitoring plan."""
    return _Compiler(ast, sub_id).compile()


class _ConditionBuckets:
    """Per-variable filter conditions plus the cross-variable join predicates."""

    def __init__(self, variables: list[str]) -> None:
        self.simple: dict[str, list[SimpleCondition]] = {var: [] for var in variables}
        self.complex: dict[str, list[XPath]] = {var: [] for var in variables}
        self.computed: dict[str, list[ComputedCondition]] = {var: [] for var in variables}
        self.joins: list[tuple[str, ValueRef, str, ValueRef]] = []

    def has_filter(self, var: str) -> bool:
        return bool(self.simple[var] or self.complex[var] or self.computed[var])


class _Compiler:
    def __init__(self, ast: SubscriptionAST, sub_id: str) -> None:
        self.ast = ast
        self.sub_id = sub_id
        self.stream_vars = ast.variables()
        self.lets = {definition.name: definition for definition in ast.lets}
        # membership variables are consumed by dynamic alerters (inCOM($j));
        # they drive the monitored-peer set and do not appear in the output
        self.consumed_vars = {
            binding.source.stream_var
            for binding in ast.bindings
            if isinstance(binding.source, AlerterSource) and binding.source.stream_var
        }
        self.output_vars = [var for var in self.stream_vars if var not in self.consumed_vars]

    # -- entry point --------------------------------------------------------------

    def compile(self) -> PlanNode:
        if not self.ast.bindings:
            raise P2PMLCompileError("a subscription needs at least one FOR binding")
        if len(set(self.stream_vars)) != len(self.stream_vars):
            raise P2PMLCompileError("duplicate variable names in the FOR clause")

        buckets = self._classify_conditions()
        per_var_plans: dict[str, PlanNode] = {}
        for binding in self.ast.bindings:
            per_var_plans[binding.var] = self._variable_plan(
                binding.var, binding.source, buckets, per_var_plans
            )
        plan = self._join_variables(per_var_plans, buckets)
        if self.ast.distinct:
            plan = PlanNode(DISTINCT, {"criterion": "structural"}, [plan])
        plan = self._restructure(plan)
        return self._publish(plan)

    # -- sources --------------------------------------------------------------------

    def _variable_plan(
        self,
        var: str,
        source,
        buckets: _ConditionBuckets,
        earlier_plans: dict[str, PlanNode],
    ) -> PlanNode:
        if isinstance(source, NestedSource):
            inner = compile_subscription(source.subscription, f"{self.sub_id}/{var}")
            # a nested subscription used as a source contributes its plan
            # without a publisher on top
            if inner.kind == PUBLISH:
                inner = inner.children[0]
            base = inner
        elif isinstance(source, AlerterSource):
            base = self._alerter_plan(var, source, earlier_plans)
        else:  # pragma: no cover - parser only produces the two kinds above
            raise P2PMLCompileError(f"unsupported source for ${var}")
        if buckets.has_filter(var):
            subscription = FilterSubscription(
                f"{self.sub_id}:{var}",
                simple=buckets.simple[var],
                complex_queries=buckets.complex[var],
                computed=buckets.computed[var],
            )
            return PlanNode(FILTER, {"subscription": subscription, "var": var}, [base])
        return base

    def _alerter_plan(
        self, var: str, source: AlerterSource, earlier_plans: dict[str, PlanNode]
    ) -> PlanNode:
        if source.stream_var is not None:
            if source.stream_var not in self.stream_vars:
                raise P2PMLCompileError(
                    f"alerter {source.function!r} refers to unknown variable "
                    f"${source.stream_var}"
                )
            # The membership stream's own plan (e.g. areRegistered over the DHT)
            # becomes the child of the dynamic alerter, so that deployment can
            # wire alerters up and down as peers join and leave.
            membership_plan = earlier_plans.get(source.stream_var)
            if membership_plan is None:
                raise P2PMLCompileError(
                    f"the membership variable ${source.stream_var} must be bound "
                    f"before it is used by {source.function!r}"
                )
            return PlanNode(
                ALERTER,
                {
                    "alerter": source.function,
                    "peer": None,
                    "var": var,
                    "membership_var": source.stream_var,
                },
                [membership_plan],
            )
        peers = source.peers
        if not peers:
            raise P2PMLCompileError(
                f"alerter {source.function!r} for ${var} names no monitored peer"
            )
        nodes = [
            PlanNode(
                ALERTER,
                {"alerter": source.function, "peer": peer, "var": var},
                placement=peer if peer != "local" else None,
            )
            for peer in peers
        ]
        if len(nodes) == 1:
            return nodes[0]
        return PlanNode(UNION, {"var": var}, nodes)

    # -- condition classification ------------------------------------------------------

    def _classify_conditions(self) -> _ConditionBuckets:
        buckets = _ConditionBuckets(self.stream_vars)
        for condition in self.ast.conditions:
            self._classify_condition(condition, buckets)
        return buckets

    def _classify_condition(self, condition: Condition, buckets: _ConditionBuckets) -> None:
        variables = self._stream_variables_of(condition)
        if len(variables) == 0:
            raise P2PMLCompileError(
                f"condition {condition} does not refer to any stream variable"
            )
        if len(variables) == 1:
            self._add_local_condition(next(iter(variables)), condition, buckets)
            return
        if len(variables) == 2:
            self._add_join_condition(condition, buckets)
            return
        raise P2PMLCompileError(
            f"condition {condition} refers to more than two stream variables"
        )

    def _stream_variables_of(self, condition: Condition) -> set[str]:
        names: set[str] = set()
        for operand in (condition.left, condition.right):
            if operand is None or not operand.is_reference:
                continue
            names |= self._stream_variables_of_operand(operand)
        return names

    def _stream_variables_of_operand(self, operand: Operand) -> set[str]:
        assert operand.var is not None
        if operand.var in self.stream_vars:
            return {operand.var}
        if operand.var in self.lets:
            definition = self.lets[operand.var]
            names: set[str] = set()
            for _, term in definition.terms:
                if term.is_reference:
                    names |= self._stream_variables_of_operand(term)
            return names
        raise P2PMLCompileError(f"unknown variable ${operand.var}")

    def _add_local_condition(
        self, var: str, condition: Condition, buckets: _ConditionBuckets
    ) -> None:
        left, op, right = condition.left, condition.op, condition.right
        # normalise: the variable reference on the left
        if op is not None and right is not None and right.is_reference and not left.is_reference:
            left, right = right, left
            op = _MIRROR[op]

        if op is None:
            # existence test: a path that must match the item
            if left.kind != "path":
                raise P2PMLCompileError(
                    f"existence condition {condition} must be a path expression"
                )
            buckets.complex[var].append(self._path_query(left))
            return

        assert right is not None
        if left.kind == "attribute" and not right.is_reference:
            buckets.simple[var].append(SimpleCondition(left.detail or "", op, right.value or ""))
            return
        if left.kind == "variable" and left.var in self.lets:
            buckets.computed[var].append(self._computed_condition(left.var, op, right))
            return
        if left.kind == "path" and not right.is_reference:
            if op != "=":
                raise P2PMLCompileError(
                    f"only equality is supported on path conditions, got {condition}"
                )
            buckets.complex[var].append(self._path_query(left, equals=right.value))
            return
        if left.kind == "attribute" and right.kind == "attribute" and left.var == right.var:
            # same-variable attribute comparison: a computed condition a - b op 0
            buckets.computed[var].append(
                ComputedCondition(
                    ((1, left.detail or ""), (-1, right.detail or "")), op, 0.0
                )
            )
            return
        raise P2PMLCompileError(f"unsupported condition {condition}")

    def _computed_condition(self, let_name: str, op: str, right: Operand) -> ComputedCondition:
        if right.is_reference:
            raise P2PMLCompileError(
                f"the right-hand side of a condition on ${let_name} must be a constant"
            )
        try:
            value = float(right.value or "")
        except ValueError as exc:
            raise P2PMLCompileError(
                f"condition on ${let_name} compares to a non-numeric constant {right.value!r}"
            ) from exc
        definition = self.lets[let_name]
        terms: list[tuple[int, str]] = []
        for sign, term in definition.terms:
            if term.kind == "attribute":
                terms.append((sign, term.detail or ""))
            elif term.kind == "number":
                terms.append((sign, term.value or "0"))
            else:
                raise P2PMLCompileError(
                    f"LET ${let_name} may only combine root attributes and numbers"
                )
        return ComputedCondition(tuple(terms), op, value)

    def _path_query(self, operand: Operand, equals: str | None = None) -> XPath:
        expression = f"${operand.var}/{operand.detail}"
        if equals is not None:
            expression = f"{expression}[text() = '{equals}']"
        try:
            return XPath.compile(expression)
        except XPathError as exc:
            raise P2PMLCompileError(f"invalid path condition {expression!r}: {exc}") from exc

    def _add_join_condition(self, condition: Condition, buckets: _ConditionBuckets) -> None:
        if condition.op != "=":
            raise P2PMLCompileError(
                f"cross-variable conditions must be equalities, got {condition}"
            )
        assert condition.right is not None
        left_ref = self._value_ref(condition.left)
        right_ref = self._value_ref(condition.right)
        buckets.joins.append((condition.left.var or "", left_ref, condition.right.var or "", right_ref))

    def _value_ref(self, operand: Operand) -> ValueRef:
        if operand.kind == "attribute":
            return ValueRef.attribute(operand.var or "", operand.detail or "")
        if operand.kind == "path":
            return ValueRef.path(operand.var or "", operand.detail or "")
        if operand.kind == "variable":
            if operand.var in self.lets:
                raise P2PMLCompileError(
                    f"LET variable ${operand.var} cannot be used in a join predicate"
                )
            return ValueRef.whole(operand.var or "")
        return ValueRef.literal(operand.value or "")

    # -- joins ----------------------------------------------------------------------------

    def _join_variables(
        self, per_var_plans: dict[str, PlanNode], buckets: _ConditionBuckets
    ) -> PlanNode:
        # membership variables (feeding dynamic alerters) do not join the output
        output_vars = self.output_vars
        if not output_vars:
            raise P2PMLCompileError("every variable is consumed as a membership stream")

        plan = per_var_plans[output_vars[0]]
        joined = {output_vars[0]}
        remaining = output_vars[1:]
        while remaining:
            progressed = False
            for var in list(remaining):
                predicate = self._join_predicate(joined, var, buckets)
                if not predicate:
                    continue
                plan = PlanNode(
                    JOIN,
                    {
                        "left_var": next(iter(joined)) if len(joined) == 1 else "+".join(sorted(joined)),
                        "right_var": var,
                        "predicate": predicate,
                    },
                    [plan, per_var_plans[var]],
                )
                joined.add(var)
                remaining.remove(var)
                progressed = True
            if not progressed:
                raise P2PMLCompileError(
                    "no join condition connects variables "
                    f"{sorted(joined)} with {sorted(remaining)}; cross products are not supported"
                )
        return plan

    def _join_predicate(
        self, joined: set[str], var: str, buckets: _ConditionBuckets
    ) -> list[tuple[ValueRef, ValueRef]]:
        predicate = []
        for left_var, left_ref, right_var, right_ref in buckets.joins:
            if left_var in joined and right_var == var:
                predicate.append((left_ref, right_ref))
            elif right_var in joined and left_var == var:
                predicate.append((right_ref, left_ref))
        return predicate

    # -- output -------------------------------------------------------------------------------

    def _restructure(self, plan: PlanNode) -> PlanNode:
        template_root = self.ast.template
        if template_root is None:
            if self.ast.return_var is None:
                raise P2PMLCompileError("the RETURN clause is missing")
            if len(self.output_vars) == 1:
                return plan  # identity projection over the single variable
            template_root = Element("result", text=f"{{${self.ast.return_var}}}")
        self._check_template_variables(template_root)
        template = RestructureTemplate(template_root)
        default_var = self.output_vars[0] if len(self.output_vars) == 1 else None
        return PlanNode(
            RESTRUCTURE, {"template": template, "var": default_var}, [plan]
        )

    def _check_template_variables(self, template_root: Element) -> None:
        known = set(self.stream_vars) | set(self.lets)
        unknown = RestructureTemplate(template_root).variables() - known
        if unknown:
            raise P2PMLCompileError(
                f"the RETURN template refers to unknown variables: {sorted(unknown)}"
            )

    def _publish(self, plan: PlanNode) -> PlanNode:
        by = self.ast.by
        if by is None:
            return PlanNode(PUBLISH, {"mode": "local", "target": self.sub_id}, [plan])
        params = {"mode": by.mode, "target": by.target, "publish": by.publish}
        if by.subscriber is not None:
            params["subscriber"] = by.subscriber
        return PlanNode(PUBLISH, params, [plan])
