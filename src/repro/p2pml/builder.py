"""Programmatic construction of P2PML subscriptions.

:class:`SubscriptionBuilder` is a fluent FOR / LET / WHERE / RETURN / BY
API compiling to the very same :class:`~repro.p2pml.ast.SubscriptionAST`
the textual parser produces, so built subscriptions flow through the same
compiler, optimiser, reuse engine and deployment -- and are recognised as
identical by the Reuse algorithm when they overlap with textual ones.

    handle = monitor.subscribe(
        SubscriptionBuilder()
        .for_var("c", "outCOM", "a.com", "b.com")
        .let("duration", "$c.responseTimestamp - $c.callTimestamp")
        .where("$duration", ">", 10)
        .where("$c.callMethod", "=", "GetTemperature")
        .returns('<incident type="slowAnswer"><client>{$c.caller}</client></incident>')
        .by_channel("alertQoS")
    )
"""

from __future__ import annotations

import re

from repro.p2pml.ast import (
    AlerterSource,
    ByClause,
    Condition,
    ForBinding,
    LetDefinition,
    NestedSource,
    Operand,
    SubscriptionAST,
)
from repro.p2pml.errors import P2PMLCompileError
from repro.xmlmodel.parse import parse_xml
from repro.xmlmodel.tree import Element

_TERM_SPLIT = re.compile(r"\s*([+-])\s*")


class SubscriptionBuilder:
    """Fluent builder producing a :class:`SubscriptionAST`."""

    def __init__(self) -> None:
        self._bindings: list[ForBinding] = []
        self._lets: list[LetDefinition] = []
        self._conditions: list[Condition] = []
        self._template: Element | None = None
        self._return_var: str | None = None
        self._distinct = False
        self._by: ByClause | None = None

    # -- FOR -------------------------------------------------------------------

    def for_var(
        self,
        var: str,
        function: str,
        *peers: str,
        follow: str | None = None,
    ) -> "SubscriptionBuilder":
        """Bind ``$var`` to an alerter source.

        ``peers`` name the monitored peers (``inCOM(<p>a.com</p>)``);
        ``follow="$j"`` instead makes the monitored set track a previously
        bound membership variable (``inCOM($j)``).
        """
        var = var.lstrip("$")
        if follow is not None:
            if peers:
                raise P2PMLCompileError(
                    f"alerter {function!r} for ${var} cannot both name peers "
                    "and follow a membership variable"
                )
            source = AlerterSource(function, stream_var=follow.lstrip("$"))
        else:
            if not peers:
                raise P2PMLCompileError(f"alerter {function!r} for ${var} names no monitored peer")
            source = AlerterSource(
                function, peer_args=[Element("p", text=peer) for peer in peers]
            )
        self._bindings.append(ForBinding(var, source))
        return self

    def for_nested(
        self, var: str, subscription: "SubscriptionAST | SubscriptionBuilder"
    ) -> "SubscriptionBuilder":
        """Bind ``$var`` to a nested subscription used as a stream source."""
        if isinstance(subscription, SubscriptionBuilder):
            subscription = subscription.build()
        self._bindings.append(ForBinding(var.lstrip("$"), NestedSource(subscription)))
        return self

    # -- LET -------------------------------------------------------------------

    def let(self, name: str, expression: str) -> "SubscriptionBuilder":
        """Define ``let $name := expression`` (a signed sum of operands)."""
        terms: list[tuple[int, Operand]] = []
        sign = 1
        for piece in _TERM_SPLIT.split(expression.strip()):
            if piece == "":
                continue  # empty head before a leading sign
            if piece == "+":
                continue
            if piece == "-":
                sign = -sign
                continue
            terms.append((sign, Operand.parse(piece)))
            sign = 1
        if not terms:
            raise P2PMLCompileError(f"LET ${name} has an empty expression")
        self._lets.append(LetDefinition(name.lstrip("$"), terms))
        return self

    # -- WHERE -----------------------------------------------------------------

    def where(
        self,
        left: "str | int | float | Operand",
        op: str | None = None,
        right: "str | int | float | Operand | None" = None,
    ) -> "SubscriptionBuilder":
        """Add a WHERE conjunct: ``left op right``, or an existence test on ``left``."""
        left_operand = Operand.parse(left)
        if op is None:
            self._conditions.append(Condition(left_operand))
            return self
        if right is None:
            raise P2PMLCompileError(f"condition on {left!r} has an operator but no right side")
        self._conditions.append(Condition(left_operand, op, Operand.parse(right)))
        return self

    def where_exists(self, path: str) -> "SubscriptionBuilder":
        """Require that ``$var/xpath`` matches the item (existence test)."""
        operand = Operand.parse(path)
        if operand.kind != "path":
            raise P2PMLCompileError(f"existence condition must be a path expression, got {path!r}")
        self._conditions.append(Condition(operand))
        return self

    # -- RETURN ----------------------------------------------------------------

    def returns(self, template: "Element | str") -> "SubscriptionBuilder":
        """Set the RETURN clause.

        ``template`` is either an :class:`Element` (with ``{$var}``
        placeholders in text/attributes), XML text to the same effect, or a
        bare variable reference (``"$x"``) for identity projection.
        """
        if isinstance(template, Element):
            self._template = template
            return self
        text = template.strip()
        if text.startswith("$"):
            self._return_var = text[1:]
            return self
        self._template = parse_xml(text)
        return self

    def distinct(self, enabled: bool = True) -> "SubscriptionBuilder":
        """Request duplicate removal over the result stream."""
        self._distinct = enabled
        return self

    # -- BY --------------------------------------------------------------------

    def by_channel(
        self,
        target: str,
        subscriber: "str | tuple[str, str, str] | None" = None,
        publish: bool = True,
    ) -> "SubscriptionBuilder":
        """Publish results as channel ``#target`` at the manager peer."""
        if isinstance(subscriber, str):
            subscriber = (subscriber, f"#{target}", target)
        self._by = ByClause("channel", target, publish=publish, subscriber=subscriber)
        return self

    def by_email(self, recipient: str) -> "SubscriptionBuilder":
        self._by = ByClause("email", recipient)
        return self

    def by_file(self, path: str) -> "SubscriptionBuilder":
        self._by = ByClause("file", path)
        return self

    def by_rss(self, title: str) -> "SubscriptionBuilder":
        self._by = ByClause("rss", title)
        return self

    def by_webpage(self, title: str) -> "SubscriptionBuilder":
        self._by = ByClause("webpage", title)
        return self

    def by(self, mode: str, target: str, **options) -> "SubscriptionBuilder":
        """Escape hatch for publication modes registered by plug-ins."""
        self._by = ByClause(mode, target, **options)
        return self

    # -- build -----------------------------------------------------------------

    def build(self) -> SubscriptionAST:
        """Produce the AST; validation happens at compile time, as for text."""
        if not self._bindings:
            raise P2PMLCompileError("a subscription needs at least one FOR binding")
        return SubscriptionAST(
            bindings=list(self._bindings),
            lets=list(self._lets),
            conditions=list(self._conditions),
            template=self._template,
            return_var=self._return_var,
            distinct=self._distinct,
            by=self._by,
        )
