"""Recursive-descent parser for P2PML subscriptions."""

from __future__ import annotations

from repro.p2pml.ast import (
    AlerterSource,
    ByClause,
    Condition,
    ForBinding,
    LetDefinition,
    NestedSource,
    Operand,
    SubscriptionAST,
)
from repro.p2pml.errors import P2PMLSyntaxError
from repro.p2pml.lexer import Lexer, Token

_COMPARISON_OPS = ("=", "!=", "<=", ">=", "<", ">")


def parse_subscription(text: str) -> SubscriptionAST:
    """Parse a P2PML subscription and return its AST."""
    if not isinstance(text, str) or not text.strip():
        raise P2PMLSyntaxError("subscription text must be a non-empty string")
    parser = _Parser(Lexer(text))
    subscription = parser.parse_subscription()
    parser.expect_end()
    return subscription


class _Parser:
    def __init__(self, lexer: Lexer) -> None:
        self.lexer = lexer

    # -- token helpers -----------------------------------------------------------

    def error(self, message: str, token: Token | None = None) -> P2PMLSyntaxError:
        position = token.position if token is not None else self.lexer.pos
        return P2PMLSyntaxError(message, position, self.lexer.source)

    def peek(self) -> Token:
        return self.lexer.peek()

    def next(self) -> Token:
        return self.lexer.next()

    def expect_keyword(self, word: str) -> Token:
        token = self.next()
        if not token.is_keyword(word):
            raise self.error(f"expected {word!r}, got {token.value!r}", token)
        return token

    def expect_symbol(self, symbol: str) -> Token:
        token = self.next()
        if not token.is_symbol(symbol):
            raise self.error(f"expected {symbol!r}, got {token.value!r}", token)
        return token

    def expect_type(self, token_type: str) -> Token:
        token = self.next()
        if token.type != token_type:
            raise self.error(f"expected a {token_type}, got {token.value!r}", token)
        return token

    def expect_end(self) -> None:
        token = self.peek()
        if token.is_symbol(";"):
            self.next()
            token = self.peek()
        if token.type != "eof":
            raise self.error(f"unexpected trailing content {token.value!r}", token)

    # -- grammar ----------------------------------------------------------------------

    def parse_subscription(self) -> SubscriptionAST:
        bindings = self.parse_for_clause()
        lets: list[LetDefinition] = []
        conditions: list[Condition] = []
        if self.peek().is_keyword("let"):
            lets = self.parse_let_clause()
        if self.peek().is_keyword("where"):
            conditions = self.parse_where_clause()
        template, return_var, distinct = self.parse_return_clause()
        by = None
        if self.peek().is_keyword("by"):
            by = self.parse_by_clause()
        return SubscriptionAST(
            bindings=bindings,
            lets=lets,
            conditions=conditions,
            template=template,
            return_var=return_var,
            distinct=distinct,
            by=by,
        )

    # FOR ------------------------------------------------------------------------------

    def parse_for_clause(self) -> list[ForBinding]:
        self.expect_keyword("for")
        bindings = [self.parse_binding()]
        while self.peek().is_symbol(","):
            self.next()
            bindings.append(self.parse_binding())
        return bindings

    def parse_binding(self) -> ForBinding:
        var = self.expect_type("var").value
        self.expect_keyword("in")
        return ForBinding(var=var, source=self.parse_source())

    def parse_source(self) -> AlerterSource | NestedSource:
        token = self.peek()
        if token.is_symbol("("):
            self.next()
            nested = self.parse_subscription()
            self.expect_symbol(")")
            return NestedSource(nested)
        # Alerter names may collide with keywords ("rss", "file", ...): in this
        # position only an alerter call or a nested subscription is possible,
        # so keywords other than clause openers are accepted as names.
        if token.type == "ident" or (
            token.type == "keyword"
            and token.value not in ("for", "let", "where", "return", "by")
        ):
            function = self.next().value
        else:
            raise self.error(
                f"expected an alerter name or a nested subscription, got {token.value!r}",
                token,
            )
        self.expect_symbol("(")
        peer_args = []
        stream_var = None
        if self.peek().type == "var":
            stream_var = self.next().value
        else:
            while self.lexer.at_xml_fragment():
                peer_args.append(self.lexer.read_xml_fragment())
            if not peer_args:
                raise self.error(
                    f"alerter {function!r} needs XML peer arguments or a stream variable"
                )
        self.expect_symbol(")")
        return AlerterSource(function=function, peer_args=peer_args, stream_var=stream_var)

    # LET ------------------------------------------------------------------------------

    def parse_let_clause(self) -> list[LetDefinition]:
        self.expect_keyword("let")
        definitions = [self.parse_let_definition()]
        while self.peek().is_symbol(","):
            self.next()
            definitions.append(self.parse_let_definition())
        return definitions

    def parse_let_definition(self) -> LetDefinition:
        name = self.expect_type("var").value
        self.expect_symbol(":=")
        terms: list[tuple[int, Operand]] = [(1, self.parse_operand())]
        while self.peek().is_symbol("+") or self.peek().is_symbol("-"):
            sign = 1 if self.next().value == "+" else -1
            terms.append((sign, self.parse_operand()))
        return LetDefinition(name=name, terms=terms)

    # WHERE ----------------------------------------------------------------------------

    def parse_where_clause(self) -> list[Condition]:
        self.expect_keyword("where")
        conditions = [self.parse_condition()]
        while self.peek().is_keyword("and"):
            self.next()
            conditions.append(self.parse_condition())
        if self.peek().is_keyword("or"):
            raise self.error("only conjunctions of conditions are supported")
        return conditions

    def parse_condition(self) -> Condition:
        left = self.parse_operand()
        token = self.peek()
        if token.type == "symbol" and token.value in _COMPARISON_OPS:
            op = self.next().value
            right = self.parse_operand()
            return Condition(left=left, op=op, right=right)
        return Condition(left=left)

    def parse_operand(self) -> Operand:
        token = self.next()
        if token.type == "var":
            # dot notation, path tail, or a bare variable
            if self.lexer.source[self.lexer.pos : self.lexer.pos + 1] == "/":
                path = self.lexer.read_path_tail()
                return Operand(kind="path", var=token.value, detail=path.lstrip("/"))
            if self.peek().is_symbol("."):
                self.next()
                attribute = self.expect_type("ident").value
                return Operand(kind="attribute", var=token.value, detail=attribute)
            return Operand(kind="variable", var=token.value)
        if token.type == "string":
            return Operand(kind="literal", value=token.value)
        if token.type == "number":
            return Operand(kind="number", value=token.value)
        if token.type == "ident":
            # unquoted word (e.g. a bare URL fragment); treat as a literal
            return Operand(kind="literal", value=token.value)
        raise self.error(f"expected an operand, got {token.value!r}", token)

    # RETURN ----------------------------------------------------------------------------

    def parse_return_clause(self):
        self.expect_keyword("return")
        distinct = False
        if self.peek().is_keyword("distinct"):
            self.next()
            distinct = True
        if self.lexer.at_xml_fragment():
            return self.lexer.read_xml_fragment(), None, distinct
        token = self.peek()
        if token.type == "var":
            self.next()
            return None, token.value, distinct
        raise self.error("RETURN expects an XML template or a variable", token)

    # BY --------------------------------------------------------------------------------

    def parse_by_clause(self) -> ByClause:
        self.expect_keyword("by")
        token = self.next()
        publish = False
        if token.is_keyword("publish"):
            publish = True
            self.expect_keyword("as")
            token = self.next()
        if token.type != "keyword" or token.value not in (
            "channel",
            "email",
            "file",
            "rss",
            "webpage",
        ):
            raise self.error(
                f"expected a publication mode (channel/email/file/rss/webpage), got {token.value!r}",
                token,
            )
        mode = token.value
        target = self.parse_name()
        clause = ByClause(mode=mode, target=target, publish=publish or mode == "channel")
        if self.peek().is_keyword("and"):
            self.next()
            self.expect_keyword("subscribe")
            self.expect_symbol("(")
            peer = self.parse_name()
            self.expect_symbol(",")
            self.expect_symbol("#")
            node = self.parse_name()
            self.expect_symbol(",")
            channel = self.parse_name()
            self.expect_symbol(")")
            clause.subscriber = (peer, node, channel)
        return clause

    def parse_name(self) -> str:
        """A name: a quoted string, or dotted identifiers like ``b.com``."""
        token = self.next()
        if token.type == "string":
            return token.value
        if token.type not in ("ident", "keyword", "number"):
            raise self.error(f"expected a name, got {token.value!r}", token)
        parts = [token.value]
        while self.peek().is_symbol("."):
            self.next()
            parts.append(self.expect_type("ident").value)
        return ".".join(parts)
