"""Request/response RPC over :class:`~repro.net.simnet.SimNetwork`.

``SimNetwork.send`` is fire-and-forget: a control message lost by the
:class:`~repro.net.faults.FaultModel` simply vanishes.  This module layers
the machinery a real deployment would need on top of it:

* **correlation ids** pairing each response with its request;
* **per-call deadlines** via :meth:`SimNetwork.call_later` timers;
* **at-least-once retries** with deterministic jittered exponential
  backoff, drawn from ``runtime_rng`` so identical seeds retry at
  identical times;
* **receiver-side idempotency**: retries reuse the correlation id, and the
  receiver caches its response per id (the seq-dedup pattern of
  :class:`~repro.net.channel.RemoteChannelProxy` applied to RPC) -- a
  duplicate request re-sends the cached response without re-executing, so
  at-least-once delivery still yields at-most-once execution;
* a per-destination **circuit breaker**: repeated timeouts against one
  destination fail subsequent calls fast (:class:`CircuitOpen`) until a
  cooldown elapses and a half-open probe succeeds.

Failures surface as typed :class:`~repro.net.errors.RpcError` subclasses
instead of silent loss; counters land on ``network.stats``
(:meth:`~repro.net.stats.NetworkStats.reliability_snapshot`).

Handlers and callers exchange :class:`Element` payloads.  A handler must
return an element it owns (it is reparented under the response wrapper);
likewise the ``params`` element passed to :meth:`RpcEndpoint.call` is
consumed by the request.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.net.errors import CircuitOpen, RpcRemoteError, RpcTimeout
from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.peer import Peer
    from repro.net.simnet import Message, Timer

MSG_REQUEST = "rpc.request"
MSG_RESPONSE = "rpc.response"

#: an RPC method: ``handler(params, source_peer_id) -> result element``
RpcHandler = Callable[[Element, str], "Element | None"]


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline and retry schedule for one RPC call.

    Attempt ``n`` (0-based) waits ``base_timeout * backoff**n`` scaled by a
    uniform jitter factor in ``[1, 1 + jitter]`` before retrying.  With the
    defaults the total budget is ~3.15s of simulated time over 6 attempts,
    against a simulated RTT of at most ~0.03s.
    """

    max_attempts: int = 6
    base_timeout: float = 0.05
    backoff: float = 2.0
    jitter: float = 0.5

    def timeout_for(self, attempt: int, rng: random.Random) -> float:
        span = self.base_timeout * self.backoff**attempt
        return span * (1.0 + self.jitter * rng.random())


class CircuitBreaker:
    """Per-destination failure gate (closed -> open -> half-open).

    ``failure_threshold`` consecutive exhausted calls open the circuit;
    while open, calls are rejected without touching the network.  After
    ``cooldown`` seconds of simulated time one probe call is let through
    (half-open): success closes the circuit, failure re-opens it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    __slots__ = ("failure_threshold", "cooldown", "failures", "state", "_open_until")

    def __init__(self, failure_threshold: int = 3, cooldown: float = 0.25) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.failures = 0
        self.state = self.CLOSED
        self._open_until = 0.0

    def allow(self, now: float) -> bool:
        """Whether a call may be attempted at simulated time ``now``."""
        if self.state == self.OPEN:
            if now >= self._open_until:
                self.state = self.HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        self.failures = 0
        self.state = self.CLOSED

    def record_failure(self, now: float) -> bool:
        """Note an exhausted call; returns True when the circuit newly opens."""
        self.failures += 1
        if self.state == self.HALF_OPEN or self.failures >= self.failure_threshold:
            newly = self.state != self.OPEN
            self.state = self.OPEN
            self._open_until = now + self.cooldown
            return newly
        return False


class RpcCall:
    """Handle for one in-flight (or completed) RPC call."""

    __slots__ = (
        "call_id",
        "destination",
        "method",
        "request",
        "attempt",
        "timer",
        "done",
        "result",
        "error",
        "_callbacks",
    )

    def __init__(
        self, call_id: str, destination: str, method: str, request: Element
    ) -> None:
        self.call_id = call_id
        self.destination = destination
        self.method = method
        self.request = request
        self.attempt = 0
        self.timer: Timer | None = None
        self.done = False
        self.result: Element | None = None
        self.error: Exception | None = None
        self._callbacks: list[Callable[[RpcCall], None]] = []

    def add_done_callback(self, callback: Callable[[RpcCall], None]) -> None:
        """Invoke ``callback(call)`` on completion (immediately if already done)."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def value(self) -> Element | None:
        """The result element; raises the call's error if it failed."""
        if not self.done:
            raise RuntimeError(f"rpc call {self.call_id} is still in flight")
        if self.error is not None:
            raise self.error
        return self.result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else f"attempt={self.attempt}"
        return f"RpcCall({self.method!r}->{self.destination!r}, {state})"


class RpcEndpoint:
    """Per-peer RPC stack: client (call/retry/breaker) plus server (dispatch).

    One endpoint owns the ``rpc.request``/``rpc.response`` message kinds of
    its peer; methods are registered by name with :meth:`register`.
    """

    #: completed-response cache size; a duplicate request older than this
    #: many distinct calls may re-execute (the retry window is far shorter)
    RESPONSE_CACHE_LIMIT = 4096

    def __init__(self, peer: Peer, policy: RetryPolicy | None = None) -> None:
        self.peer = peer
        self.network = peer.network
        self.policy = policy or RetryPolicy()
        self._methods: dict[str, RpcHandler] = {}
        self._calls: dict[str, RpcCall] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._responses: OrderedDict[str, Element] = OrderedDict()
        self._counter = 0
        peer.register_handler(MSG_REQUEST, self._on_request)
        peer.register_handler(MSG_RESPONSE, self._on_response)

    # -- server side ------------------------------------------------------- #

    def register(self, method: str, handler: RpcHandler) -> None:
        """Expose ``handler`` as RPC method ``method`` on this peer."""
        if method in self._methods:
            raise ValueError(
                f"peer {self.peer.peer_id!r} already exposes rpc method {method!r}"
            )
        self._methods[method] = handler

    def _on_request(self, message: Message) -> None:
        attrib = message.payload.attrib
        call_id = attrib["callId"]
        cached = self._responses.get(call_id)
        if cached is not None:
            # duplicate (a retry, or a fault-model copy): idempotency -- re-send
            # the recorded outcome without re-executing the handler
            self._responses.move_to_end(call_id)
            self.network.send(self.peer.peer_id, message.source, MSG_RESPONSE, cached)
            return
        method = attrib["method"]
        handler = self._methods.get(method)
        params = (
            message.payload.children[0]
            if message.payload.children
            else Element("args")
        )
        if handler is None:
            response = Element(
                "rpcResponse",
                {"callId": call_id, "ok": "0", "error": f"unknown method {method!r}"},
            )
        else:
            try:
                result = handler(params, message.source)
            except Exception as exc:  # noqa: BLE001 - travels back typed
                response = Element(
                    "rpcResponse",
                    {
                        "callId": call_id,
                        "ok": "0",
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
            else:
                response = Element(
                    "rpcResponse",
                    {"callId": call_id, "ok": "1"},
                    [result] if result is not None else [],
                )
        self._responses[call_id] = response
        if len(self._responses) > self.RESPONSE_CACHE_LIMIT:
            self._responses.popitem(last=False)
        self.network.send(self.peer.peer_id, message.source, MSG_RESPONSE, response)

    # -- client side ------------------------------------------------------- #

    def breaker(self, destination: str) -> CircuitBreaker:
        existing = self._breakers.get(destination)
        if existing is None:
            existing = self._breakers[destination] = CircuitBreaker()
        return existing

    def call(
        self, destination: str, method: str, params: Element | None = None
    ) -> RpcCall:
        """Start an RPC; returns a handle that completes as the network runs.

        Raises :class:`CircuitOpen` synchronously when the destination's
        breaker rejects the call.  Otherwise the call retries with backoff
        until a response arrives or the retry budget is exhausted, at which
        point the handle carries an :class:`RpcTimeout`.
        """
        stats = self.network.stats
        breaker = self.breaker(destination)
        if not breaker.allow(self.network.now):
            stats.rpc_rejected += 1
            raise CircuitOpen(destination, method)
        self._counter += 1
        call_id = f"{self.peer.peer_id}#{self._counter}"
        request = Element(
            "rpcRequest",
            {"callId": call_id, "method": method},
            [params] if params is not None else [],
        )
        call = RpcCall(call_id, destination, method, request)
        self._calls[call_id] = call
        stats.rpc_calls += 1
        self._transmit(call)
        return call

    def call_sync(
        self, destination: str, method: str, params: Element | None = None
    ) -> Element | None:
        """Issue the call and pump the network until it completes.

        Delivers queued events (including unrelated ones, in deterministic
        time order) until the response or the final timeout lands; safe to
        invoke from inside a handler because heap pops are destructive.
        Returns the result element, or raises the call's typed error.
        """
        call = self.call(destination, method, params)
        network = self.network
        while not call.done:
            if not network.step():
                # unreachable while the deadline timer is armed; guard anyway
                raise RpcTimeout(destination, method, call.attempt + 1)
        return call.value()

    def _transmit(self, call: RpcCall) -> None:
        self.network.send(
            self.peer.peer_id, call.destination, MSG_REQUEST, call.request
        )
        timeout = self.policy.timeout_for(call.attempt, self.network.runtime_rng)
        call.timer = self.network.call_later(timeout, lambda: self._on_deadline(call))

    def _on_deadline(self, call: RpcCall) -> None:
        if call.done:
            return
        stats = self.network.stats
        call.attempt += 1
        if call.attempt >= self.policy.max_attempts:
            stats.rpc_timeouts += 1
            if self.breaker(call.destination).record_failure(self.network.now):
                stats.circuits_opened += 1
            self._finish(
                call, error=RpcTimeout(call.destination, call.method, call.attempt)
            )
            return
        stats.rpc_retries += 1
        self._transmit(call)

    def _on_response(self, message: Message) -> None:
        # any response proves the link works, even one carrying a remote error
        self.breaker(message.source).record_success()
        attrib = message.payload.attrib
        call = self._calls.get(attrib["callId"])
        if call is None:
            return  # stale: a duplicate, or the call already timed out
        if attrib.get("ok") == "1":
            result = (
                message.payload.children[0] if message.payload.children else None
            )
            self._finish(call, result=result)
        else:
            self._finish(
                call,
                error=RpcRemoteError(
                    call.destination, call.method, attrib.get("error", "")
                ),
            )

    def _finish(
        self,
        call: RpcCall,
        result: Element | None = None,
        error: Exception | None = None,
    ) -> None:
        call.done = True
        call.result = result
        call.error = error
        if call.timer is not None:
            call.timer.cancel()
        self._calls.pop(call.call_id, None)
        callbacks, call._callbacks = call._callbacks, []
        for callback in callbacks:
            callback(call)

    @property
    def in_flight(self) -> int:
        return len(self._calls)

    def open_circuits(self) -> list[str]:
        """Destinations whose breaker is currently open."""
        return sorted(
            destination
            for destination, breaker in self._breakers.items()
            if breaker.state == CircuitBreaker.OPEN
        )
