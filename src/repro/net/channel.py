"""Channels: published streams that remote peers can subscribe to.

"A channel is defined by a tuple (peerID, streamID, subscribers), where
peerID is the peer that published this particular stream as a channel and
subscribers is the set of peers interested in it." (Section 3.2)

The publishing side is a :class:`Channel` attached to a local
:class:`~repro.streams.Stream`; every emitted item is forwarded over the
simulated network to each subscriber.  The subscribing side receives items
into a :class:`RemoteChannelProxy`, which is itself a local stream, so
downstream operators cannot tell a remote stream from a local one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.net.errors import UnknownChannelError
from repro.streams.item import is_eos
from repro.streams.stream import Stream
from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.peer import Peer

#: Message kinds used by the channel machinery.
MSG_SUBSCRIBE = "channel.subscribe"
MSG_UNSUBSCRIBE = "channel.unsubscribe"
MSG_ITEM = "channel.item"
MSG_EOS = "channel.eos"
MSG_ACK = "channel.ack"


class OutboxEntry:
    """One unacknowledged item wrapper awaiting (re)transmission."""

    __slots__ = ("wrapper", "attempts")

    def __init__(self, wrapper: Element) -> None:
        self.wrapper = wrapper
        self.attempts = 0


@dataclass
class Channel:
    """A stream published by ``peer_id`` under the name ``channel_id``."""

    peer_id: str
    channel_id: str
    stream: Stream
    subscribers: set[str] = field(default_factory=set)
    #: detaches the registry's forwarder from the underlying stream
    unsubscribe: object | None = field(default=None, repr=False)
    #: per-subscriber item sequence numbers (exactly-once deduplication)
    next_seq: dict[str, int] = field(default_factory=dict, repr=False)
    #: reliable mode: per-subscriber unacked wrappers, keyed by sequence
    outbox: dict[str, dict[int, OutboxEntry]] = field(
        default_factory=dict, repr=False
    )
    #: reliable mode: subscribers the failure detector confirmed dead --
    #: retransmission skips them, their outboxes await a takeover claim
    dead: set[str] = field(default_factory=set, repr=False)
    #: memoised ``sorted(subscribers)``; fan-out is per item, (un)subscribes
    #: are rare, so the sort must not sit on the delivery path
    _sorted_cache: tuple[str, ...] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def qualified_id(self) -> str:
        return f"#{self.channel_id}@{self.peer_id}"

    def sorted_subscribers(self) -> tuple[str, ...]:
        """Deterministic fan-out order, cached until the next (un)subscribe."""
        cached = self._sorted_cache
        if cached is None:
            cached = self._sorted_cache = tuple(sorted(self.subscribers))
        return cached

    def add_subscriber(self, peer_id: str) -> None:
        if peer_id not in self.subscribers:
            self.subscribers.add(peer_id)
            self._sorted_cache = None

    def remove_subscriber(self, peer_id: str) -> None:
        if peer_id in self.subscribers:
            self.subscribers.discard(peer_id)
            self._sorted_cache = None

    def clear_subscribers(self) -> None:
        self.subscribers.clear()
        self._sorted_cache = None


class RemoteChannelProxy(Stream):
    """Local stream mirroring a channel published at another peer.

    Item messages carry per-subscriber sequence numbers, and the proxy drops
    any sequence number it has already delivered: a faulty network that
    duplicates messages (see :class:`repro.net.faults.FaultModel`) still
    yields exactly-once delivery into the local stream.
    """

    #: out-of-order window for duplicate detection; sequence numbers this far
    #: behind the newest seen are compacted into a floor (jitter reorders
    #: messages by bounded amounts, so the window bounds dedup memory)
    SEQ_WINDOW = 4096

    def __init__(self, publisher_id: str, channel_id: str, local_peer_id: str) -> None:
        super().__init__(stream_id=f"#{channel_id}", peer_id=local_peer_id)
        self.publisher_id = publisher_id
        self.channel_id = channel_id
        self.seen_seqs: set[int] = set()
        self._seq_floor = -1  # every seq <= floor counts as already seen
        self.duplicates_dropped = 0

    def receive_remote(self, item: Element) -> None:
        """Deliver one remote item into the local stream (hot path).

        A leaner :meth:`~repro.streams.stream.Stream.emit`: the channel layer
        already checked that the proxy is open and only ever hands over
        Elements, so the guard checks and the per-call stats dispatch are
        skipped.  Accounting stays identical -- the cached item weight is
        reused, not re-walked.
        """
        stats = self.stats
        stats.items += 1
        stats.bytes += item.weight()
        if self.keep_history:
            self.history.append(item)
        subscribers = self._subscribers
        if len(subscribers) == 1:
            subscribers[0](item)
        else:
            for subscriber in list(subscribers):
                subscriber(item)

    def accept_seq(self, seq: int) -> bool:
        """Record a sequence number; False when it was already delivered.

        Memory stays bounded: once more than ``SEQ_WINDOW`` numbers are
        retained, everything older than ``newest - SEQ_WINDOW`` collapses
        into a floor (a pathologically late copy beyond the window would be
        mistaken for a duplicate -- the safe direction for exactly-once).
        """
        if seq <= self._seq_floor or seq in self.seen_seqs:
            return False
        self.seen_seqs.add(seq)
        if len(self.seen_seqs) > self.SEQ_WINDOW:
            floor = max(self.seen_seqs) - self.SEQ_WINDOW
            self.seen_seqs = {s for s in self.seen_seqs if s > floor}
            self._seq_floor = max(self._seq_floor, floor)
        return True


class ChannelRegistry:
    """Per-peer registry of published channels and remote subscriptions.

    With ``reliable = True`` (set network-wide by detector-mode systems)
    item delivery becomes acknowledged: every sent wrapper is held in the
    channel's per-subscriber outbox until the receiver acks its sequence
    number, and :meth:`retransmit_tick` re-sends whatever is still pending.
    Subscribers the failure detector confirms dead are skipped by the
    sweep; their unacked items survive until a takeover subscriber claims
    them (:meth:`claim_orphans`) or the peer rejoins.
    """

    #: retransmission attempts per item before shedding it (with accounting)
    RETRY_LIMIT = 8
    #: per-subscriber outbox size; the oldest entry is shed beyond this
    OUTBOX_LIMIT = 1024

    def __init__(self, peer: "Peer") -> None:
        self._peer = peer
        self._published: dict[str, Channel] = {}
        self._proxies: dict[tuple[str, str], RemoteChannelProxy] = {}
        self._proxy_unsubscribes: dict[tuple[str, str], object] = {}
        #: acknowledged delivery + retransmission (off on oracle systems)
        self.reliable = False
        #: takeover replays staged for the next :meth:`retransmit_tick` --
        #: flushed there, not immediately, so a claiming subscriber's
        #: operator is connected before the first replayed item arrives
        self._pending_replays: list[tuple[Channel, str, list[Element]]] = []
        #: epoch-handoff adoptions (:meth:`adopt_orphans`): payloads rescued
        #: from a retiring channel, emitted into its successor stream once
        #: that stream's channel has gained a subscriber.  Each entry is
        #: ``[successor_stream, payloads, attempts]``.
        self._pending_adoptions: list[list] = []
        #: name-allocation fast path: bumped whenever a name is freed, and
        #: per-base resume points for :meth:`allocate_name` probes
        self._free_epoch = 0
        self._name_hints: dict[str, tuple[int, int]] = {}
        peer.register_handler(MSG_SUBSCRIBE, self._on_subscribe)
        peer.register_handler(MSG_UNSUBSCRIBE, self._on_unsubscribe)
        peer.register_handler(MSG_ITEM, self._on_item)
        peer.register_handler(MSG_EOS, self._on_eos)
        peer.register_handler(MSG_ACK, self._on_ack)

    # -- publishing side -----------------------------------------------------

    def publish(self, channel_id: str, stream: Stream) -> Channel:
        """Publish ``stream`` as a channel named ``channel_id``."""
        if channel_id in self._published:
            raise ValueError(
                f"peer {self._peer.peer_id!r} already publishes channel {channel_id!r}"
            )
        channel = Channel(self._peer.peer_id, channel_id, stream)
        self._published[channel_id] = channel

        def forward(item: object) -> None:
            self._forward(channel, item)

        # advertise the batch entry point so Stream.emit_many hands a burst
        # over in one call instead of one _forward per item
        forward.batch = lambda items: self._forward_batch(channel, items)  # type: ignore[attr-defined]
        channel.unsubscribe = stream.subscribe(forward)
        return channel

    def unpublish(self, channel_id: str) -> bool:
        """Withdraw a published channel, freeing its name for reuse.

        The forwarder is detached from the underlying stream and remote
        subscribers are notified with an end-of-channel message.  Returns
        False when the channel was not published here.
        """
        channel = self._published.pop(channel_id, None)
        if channel is None:
            return False
        # a freed name may sit before any probe's resume point: restart
        # name-allocation probes from their base so it is found again
        self._free_epoch += 1
        if callable(channel.unsubscribe):
            channel.unsubscribe()
        payload = Element("channelEos", {"channelId": channel.channel_id})
        for subscriber in channel.sorted_subscribers():
            self._peer.send(subscriber, MSG_EOS, payload)
        channel.clear_subscribers()
        return True

    def unpublish_exact(self, channel_id: str, channel: Channel) -> bool:
        """Withdraw ``channel_id`` only while it is still bound to ``channel``.

        Channel names are reusable: a retiring incarnation's name may
        already have been reclaimed by its replacement (make-before-break
        recovery), in which case a name-based :meth:`unpublish` would tear
        down the *new* channel.  Returns False when the name is unbound or
        bound to a different channel object.
        """
        if self._published.get(channel_id) is not channel:
            return False
        return self.unpublish(channel_id)

    def published(self, channel_id: str) -> Channel:
        try:
            return self._published[channel_id]
        except KeyError as exc:
            raise UnknownChannelError(
                f"peer {self._peer.peer_id!r} does not publish channel {channel_id!r}"
            ) from exc

    def publishes(self, channel_id: str) -> bool:
        return channel_id in self._published

    def allocate_name(self, base: str) -> str:
        """First free name in the collision sequence ``base``, ``base-2``, ...

        Returns exactly what probing from ``base`` would return, but in
        amortised O(1): names are only freed by :meth:`unpublish`, so while
        nothing has been freed since the previous probe for ``base`` every
        name before that probe's stop point is still taken and the scan
        resumes there instead of re-walking the sequence (which would make
        ingesting N same-named subscriptions quadratic in N).
        """
        epoch, suffix = self._name_hints.get(base, (-1, 1))
        if epoch != self._free_epoch:
            suffix = 1
        while True:
            candidate = base if suffix == 1 else f"{base}-{suffix}"
            if candidate not in self._published:
                break
            suffix += 1
        # resume at the returned suffix: if the caller publishes it the next
        # probe moves past it after one lookup, if not it is handed out again
        self._name_hints[base] = (self._free_epoch, suffix)
        return candidate

    @property
    def published_ids(self) -> list[str]:
        return sorted(self._published)

    def _forward(self, channel: Channel, item: object) -> None:
        if is_eos(item):
            payload = Element("channelEos", {"channelId": channel.channel_id})
            for subscriber in channel.sorted_subscribers():
                self._peer.send(subscriber, MSG_EOS, payload)
            return
        assert isinstance(item, Element)
        self._forward_batch(channel, [item])

    def _forward_batch(self, channel: Channel, items: list[Element]) -> None:
        """Fan a burst of items out to every subscriber of ``channel``.

        One message *template* is built per item: the payload tree is copied
        once and that copy is shared by every subscriber's ``channelItem``
        wrapper (receivers treat stream items as immutable, and the local
        stream layer already delivers one object to all local subscribers).
        Only the thin wrapper -- which carries the per-subscriber sequence
        number -- is built per message, via the trusted Element constructor.
        """
        subscribers = channel.sorted_subscribers()
        if not subscribers or not items:
            return
        next_seq = channel.next_seq
        channel_id = channel.channel_id
        publisher_id = channel.peer_id
        wrap = Element.fast_new
        reliable = self.reliable
        sends: list[tuple[str, str, Element]] = []
        for item in items:
            shared = item.copy()
            # group subscribers by their next sequence number: counters
            # advance in lock-step in steady state, so one wrapper (and one
            # weight computation) usually serves the entire fan-out; only
            # subscribers whose counter diverged (late join, prior loss of a
            # send) get their own wrapper
            wrappers: dict[int, Element] = {}
            for subscriber in subscribers:
                seq = next_seq.get(subscriber, 0)
                next_seq[subscriber] = seq + 1
                wrapper = wrappers.get(seq)
                if wrapper is None:
                    wrapper = wrappers[seq] = wrap(
                        "channelItem",
                        {
                            "channelId": channel_id,
                            "publisher": publisher_id,
                            "seq": str(seq),
                        },
                        [shared],
                    )
                if reliable:
                    self._record_unacked(channel, subscriber, seq, wrapper)
                    if subscriber in channel.dead:
                        # no point transmitting to a confirmed-dead peer:
                        # the entry waits in the outbox for a takeover
                        # claim (or the subscriber's rejoin)
                        continue
                sends.append((subscriber, MSG_ITEM, wrapper))
        if sends:
            self._peer.network.send_many(self._peer.peer_id, sends)

    def _record_unacked(
        self, channel: Channel, subscriber: str, seq: int, wrapper: Element
    ) -> None:
        bucket = channel.outbox.get(subscriber)
        if bucket is None:
            bucket = channel.outbox[subscriber] = {}
        bucket[seq] = OutboxEntry(wrapper)
        if len(bucket) > self.OUTBOX_LIMIT:
            bucket.pop(min(bucket))
            self._peer.network.stats.items_shed += 1

    # -- subscribing side -----------------------------------------------------

    def subscribe_remote(
        self, publisher_id: str, channel_id: str, announce: bool = True
    ) -> RemoteChannelProxy:
        """Subscribe to ``#channel_id@publisher_id`` and return the local proxy.

        ``announce=False`` creates the proxy without sending the
        fire-and-forget subscribe message: the caller announces through the
        reliable RPC path instead (the publisher-side effect is
        :meth:`admit_subscriber` either way).
        """
        key = (publisher_id, channel_id)
        if key in self._proxies:
            return self._proxies[key]
        proxy = RemoteChannelProxy(publisher_id, channel_id, self._peer.peer_id)
        self._proxies[key] = proxy
        if publisher_id == self._peer.peer_id:
            # Local shortcut: wire the proxy straight to the underlying stream,
            # without adding self to the subscriber set (which would cause
            # self-addressed network messages and double delivery).
            channel = self.published(channel_id)
            self._proxy_unsubscribes[key] = channel.stream.subscribe(proxy.push)
            if self.reliable:
                # a local consumer can take over from a dead remote one
                self.claim_orphans(channel, self._peer.peer_id)
        elif announce:
            request = Element(
                "subscribe",
                {"channelId": channel_id, "subscriber": self._peer.peer_id},
            )
            self._peer.send(publisher_id, MSG_SUBSCRIBE, request)
        return proxy

    def has_subscription(self, publisher_id: str, channel_id: str) -> bool:
        """Whether a proxy for ``#channel_id@publisher_id`` exists here."""
        return (publisher_id, channel_id) in self._proxies

    def unsubscribe_remote(
        self, publisher_id: str, channel_id: str, announce: bool = True
    ) -> None:
        key = (publisher_id, channel_id)
        self._proxies.pop(key, None)
        unsubscribe = self._proxy_unsubscribes.pop(key, None)
        if callable(unsubscribe):
            unsubscribe()
        if publisher_id != self._peer.peer_id and announce:
            request = Element(
                "unsubscribe",
                {"channelId": channel_id, "subscriber": self._peer.peer_id},
            )
            self._peer.send(publisher_id, MSG_UNSUBSCRIBE, request)

    def proxy(self, publisher_id: str, channel_id: str) -> RemoteChannelProxy:
        try:
            return self._proxies[(publisher_id, channel_id)]
        except KeyError as exc:
            raise UnknownChannelError(
                f"peer {self._peer.peer_id!r} has no subscription to "
                f"#{channel_id}@{publisher_id}"
            ) from exc

    # -- message handlers ------------------------------------------------------

    def admit_subscriber(self, channel_id: str, subscriber: str) -> Channel:
        """Add ``subscriber`` to a published channel (the subscribe effect).

        Shared by the fire-and-forget subscribe handler and the reliable RPC
        subscribe method.  In reliable mode a new subscriber claims the
        unacked items of confirmed-dead subscribers (takeover on redeploy).
        Raises :class:`UnknownChannelError` when the channel is not
        published here (withdrawn by churn or teardown).
        """
        channel = self.published(channel_id)
        channel.add_subscriber(subscriber)
        if self.reliable:
            self.claim_orphans(channel, subscriber)
        return channel

    def _on_subscribe(self, message) -> None:
        channel_id = message.payload.attrib["channelId"]
        subscriber = message.payload.attrib["subscriber"]
        try:
            self.admit_subscriber(channel_id, subscriber)
        except UnknownChannelError:
            # stale subscribe: the channel was withdrawn (peer churn, task
            # teardown) while the request was in flight -- tell the
            # subscriber the channel is gone instead of crashing
            payload = Element("channelEos", {"channelId": channel_id})
            self._peer.send(subscriber, MSG_EOS, payload)

    def drop_subscriber(self, channel_id: str, subscriber: str) -> None:
        """Remove ``subscriber`` from a published channel (the unsubscribe effect)."""
        channel = self._published.get(channel_id)
        if channel is not None:
            channel.remove_subscriber(subscriber)
            channel.outbox.pop(subscriber, None)
            channel.dead.discard(subscriber)

    def _on_unsubscribe(self, message) -> None:
        self.drop_subscriber(
            message.payload.attrib["channelId"], message.payload.attrib["subscriber"]
        )

    def _on_item(self, message) -> None:
        payload = message.payload
        attrib = payload.attrib
        if self.reliable:
            # ack everything carrying a sequence number -- duplicates and
            # items for an already-gone proxy included -- so the publisher's
            # outbox drains regardless of what happens to the item here
            seq_text = attrib.get("seq")
            if seq_text is not None and message.source != self._peer.peer_id:
                self._peer.send(
                    message.source,
                    MSG_ACK,
                    Element(
                        "channelAck",
                        {"channelId": attrib["channelId"], "seq": seq_text},
                    ),
                )
                self._peer.network.stats.acks_sent += 1
        proxy = self._proxies.get((attrib["publisher"], attrib["channelId"]))
        if proxy is None or proxy.closed:
            return  # late item for an unsubscribed/closed proxy: drop it
        seq_text = attrib.get("seq")
        if seq_text is not None and not proxy.accept_seq(int(seq_text)):
            proxy.duplicates_dropped += 1
            return  # a faulty (or retransmitting) network duplicated this item
        proxy.receive_remote(payload.children[0])

    def _on_ack(self, message) -> None:
        attrib = message.payload.attrib
        channel = self._published.get(attrib["channelId"])
        if channel is None:
            return
        bucket = channel.outbox.get(message.source)
        if bucket is not None:
            bucket.pop(int(attrib["seq"]), None)
            if not bucket:
                channel.outbox.pop(message.source, None)

    def _on_eos(self, message) -> None:
        channel_id = message.payload.attrib["channelId"]
        proxy = self._proxies.get((message.source, channel_id))
        if proxy is not None:
            proxy.close()

    # -- reliable delivery (retransmission, death, takeover) -------------------

    def retransmit_tick(self) -> None:
        """One reliability round: flush staged replays, re-send unacked items.

        Called once per system tick in detector mode.  Items for
        confirmed-dead subscribers are skipped (held for takeover); items
        re-sent more than :data:`RETRY_LIMIT` times are shed with
        accounting.
        """
        if not self.reliable:
            return
        network = self._peer.network
        stats = network.stats
        if self._pending_adoptions:
            still_pending: list[list] = []
            for entry in self._pending_adoptions:
                stream, payloads, rounds = entry
                channel = self._published.get(stream.stream_id)
                if stream.closed or channel is None or channel.stream is not stream:
                    # the successor died before anyone subscribed: the items
                    # are genuinely lost, account for them
                    stats.items_shed += len(payloads)
                    continue
                entry[2] = rounds + 1
                if entry[2] == 1:
                    # staged during this very tick: the replacement's own
                    # subscribe announcements are still in flight, and an
                    # immediate emit could cascade into a downstream channel
                    # that has no subscribers yet -- hold one round
                    still_pending.append(entry)
                    continue
                has_local_consumer = (
                    self._peer.peer_id,
                    stream.stream_id,
                ) in self._proxies
                if channel.subscribers or has_local_consumer:
                    stream.emit_many(payloads)
                    stats.items_replayed += len(payloads)
                    continue
                if entry[2] > self.RETRY_LIMIT:
                    stats.items_shed += len(payloads)
                else:
                    still_pending.append(entry)
            self._pending_adoptions = still_pending
        if self._pending_replays:
            replays, self._pending_replays = self._pending_replays, []
            for channel, subscriber, payloads in replays:
                if self._published.get(channel.channel_id) is not channel:
                    continue  # channel withdrawn while the replay was staged
                if subscriber == self._peer.peer_id:
                    proxy = self._proxies.get(
                        (self._peer.peer_id, channel.channel_id)
                    )
                    if proxy is not None and not proxy.closed:
                        for payload in payloads:
                            proxy.push(payload)
                        stats.items_replayed += len(payloads)
                elif subscriber in channel.subscribers:
                    self._replay_to(channel, subscriber, payloads)
        for channel_id in sorted(self._published):
            channel = self._published[channel_id]
            outbox = channel.outbox
            if not outbox:
                continue
            sends: list[tuple[str, str, Element]] = []
            emptied: list[str] = []
            for subscriber in sorted(outbox):
                if subscriber in channel.dead:
                    continue
                entries = outbox[subscriber]
                expired = []
                for seq in sorted(entries):
                    entry = entries[seq]
                    entry.attempts += 1
                    if entry.attempts > self.RETRY_LIMIT:
                        expired.append(seq)
                        stats.items_shed += 1
                        continue
                    sends.append((subscriber, MSG_ITEM, entry.wrapper))
                    stats.items_retransmitted += 1
                for seq in expired:
                    del entries[seq]
                if not entries:
                    emptied.append(subscriber)
            for subscriber in emptied:
                outbox.pop(subscriber, None)
            if sends:
                network.send_many(self._peer.peer_id, sends)

    def _replay_to(
        self, channel: Channel, subscriber: str, payloads: list[Element]
    ) -> None:
        """Send claimed payloads to the takeover subscriber as fresh items."""
        next_seq = channel.next_seq
        wrap = Element.fast_new
        sends: list[tuple[str, str, Element]] = []
        for payload in payloads:
            seq = next_seq.get(subscriber, 0)
            next_seq[subscriber] = seq + 1
            wrapper = wrap(
                "channelItem",
                {
                    "channelId": channel.channel_id,
                    "publisher": channel.peer_id,
                    "seq": str(seq),
                },
                [payload],
            )
            self._record_unacked(channel, subscriber, seq, wrapper)
            sends.append((subscriber, MSG_ITEM, wrapper))
        self._peer.network.stats.items_replayed += len(sends)
        self._peer.network.send_many(self._peer.peer_id, sends)

    def claim_orphans(self, channel: Channel, subscriber: str) -> int:
        """Transfer dead subscribers' unacked items to ``subscriber``.

        Takeover semantics for recovery: when a consumer peer is confirmed
        dead and the subscription is redeployed elsewhere, the replacement's
        subscribe claims whatever the dead consumer never acked, so items
        emitted during the detection window are not lost.  The claimed
        payloads are staged and delivered on the next
        :meth:`retransmit_tick` -- by then the takeover deployment has
        connected its operator to the new proxy.  Dead subscribers are
        dropped from the channel entirely (the claim supersedes them);
        payloads shared between several dead subscribers' wrappers are
        claimed once.  Returns the number of claimed payloads.
        """
        if not channel.dead:
            return 0
        payloads: list[Element] = []
        seen: set[int] = set()
        for dead_subscriber in sorted(channel.dead):
            entries = channel.outbox.pop(dead_subscriber, None)
            if entries:
                for seq in sorted(entries):
                    payload = entries[seq].wrapper.children[0]
                    if id(payload) not in seen:
                        seen.add(id(payload))
                        payloads.append(payload)
            channel.remove_subscriber(dead_subscriber)
            channel.next_seq.pop(dead_subscriber, None)
        channel.dead.clear()
        if payloads:
            self._pending_replays.append((channel, subscriber, payloads))
        return len(payloads)

    def adopt_orphans(self, old_channel_id: str, successor: Stream) -> int:
        """Hand a retiring channel's orphaned items over to its successor.

        Recovery redeployments publish each surviving operator's output
        under a *fresh* (epoch-suffixed) channel id, so a takeover
        subscriber of the new incarnation never touches the old channel --
        :meth:`claim_orphans` cannot save items the dead consumer left
        unacked there, and the old channel's teardown would drop them.
        Called by the deployer when it re-instantiates an operator on the
        same peer: the dead subscribers' unacked payloads move from the old
        channel's outboxes into a staged adoption, emitted into
        ``successor`` (the replacement's output stream, *post*-operator, so
        nothing is reprocessed) on the first :meth:`retransmit_tick` where
        the successor channel has a subscriber to deliver to.  Returns the
        number of adopted payloads.
        """
        channel = self._published.get(old_channel_id)
        if channel is None or not channel.dead:
            return 0
        payloads: list[Element] = []
        seen: set[int] = set()
        for dead_subscriber in sorted(channel.dead):
            entries = channel.outbox.pop(dead_subscriber, None)
            if entries:
                for seq in sorted(entries):
                    payload = entries[seq].wrapper.children[0]
                    if id(payload) not in seen:
                        seen.add(id(payload))
                        payloads.append(payload)
            channel.remove_subscriber(dead_subscriber)
            channel.next_seq.pop(dead_subscriber, None)
        channel.dead.clear()
        if payloads:
            self._pending_adoptions.append([successor, payloads, 0])
        return len(payloads)

    def handle_peer_death(self, peer_id: str) -> None:
        """Failure-detector confirmation: stop transmitting to ``peer_id``.

        The subscriber stays in the channel (its outbox keeps accumulating
        emitted items) so a takeover claim or its own rejoin can resume
        without loss.
        """
        for channel in self._published.values():
            if peer_id in channel.subscribers:
                channel.dead.add(peer_id)

    def handle_peer_rejoin(self, peer_id: str) -> None:
        """Detector rejoin: resume retransmission to an unclaimed subscriber."""
        for channel in self._published.values():
            channel.dead.discard(peer_id)
