"""Channels: published streams that remote peers can subscribe to.

"A channel is defined by a tuple (peerID, streamID, subscribers), where
peerID is the peer that published this particular stream as a channel and
subscribers is the set of peers interested in it." (Section 3.2)

The publishing side is a :class:`Channel` attached to a local
:class:`~repro.streams.Stream`; every emitted item is forwarded over the
simulated network to each subscriber.  The subscribing side receives items
into a :class:`RemoteChannelProxy`, which is itself a local stream, so
downstream operators cannot tell a remote stream from a local one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.net.errors import UnknownChannelError
from repro.streams.item import is_eos
from repro.streams.stream import Stream
from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.peer import Peer

#: Message kinds used by the channel machinery.
MSG_SUBSCRIBE = "channel.subscribe"
MSG_UNSUBSCRIBE = "channel.unsubscribe"
MSG_ITEM = "channel.item"
MSG_EOS = "channel.eos"


@dataclass
class Channel:
    """A stream published by ``peer_id`` under the name ``channel_id``."""

    peer_id: str
    channel_id: str
    stream: Stream
    subscribers: set[str] = field(default_factory=set)
    #: detaches the registry's forwarder from the underlying stream
    unsubscribe: object | None = field(default=None, repr=False)
    #: per-subscriber item sequence numbers (exactly-once deduplication)
    next_seq: dict[str, int] = field(default_factory=dict, repr=False)
    #: memoised ``sorted(subscribers)``; fan-out is per item, (un)subscribes
    #: are rare, so the sort must not sit on the delivery path
    _sorted_cache: tuple[str, ...] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def qualified_id(self) -> str:
        return f"#{self.channel_id}@{self.peer_id}"

    def sorted_subscribers(self) -> tuple[str, ...]:
        """Deterministic fan-out order, cached until the next (un)subscribe."""
        cached = self._sorted_cache
        if cached is None:
            cached = self._sorted_cache = tuple(sorted(self.subscribers))
        return cached

    def add_subscriber(self, peer_id: str) -> None:
        if peer_id not in self.subscribers:
            self.subscribers.add(peer_id)
            self._sorted_cache = None

    def remove_subscriber(self, peer_id: str) -> None:
        if peer_id in self.subscribers:
            self.subscribers.discard(peer_id)
            self._sorted_cache = None

    def clear_subscribers(self) -> None:
        self.subscribers.clear()
        self._sorted_cache = None


class RemoteChannelProxy(Stream):
    """Local stream mirroring a channel published at another peer.

    Item messages carry per-subscriber sequence numbers, and the proxy drops
    any sequence number it has already delivered: a faulty network that
    duplicates messages (see :class:`repro.net.faults.FaultModel`) still
    yields exactly-once delivery into the local stream.
    """

    #: out-of-order window for duplicate detection; sequence numbers this far
    #: behind the newest seen are compacted into a floor (jitter reorders
    #: messages by bounded amounts, so the window bounds dedup memory)
    SEQ_WINDOW = 4096

    def __init__(self, publisher_id: str, channel_id: str, local_peer_id: str) -> None:
        super().__init__(stream_id=f"#{channel_id}", peer_id=local_peer_id)
        self.publisher_id = publisher_id
        self.channel_id = channel_id
        self.seen_seqs: set[int] = set()
        self._seq_floor = -1  # every seq <= floor counts as already seen
        self.duplicates_dropped = 0

    def receive_remote(self, item: Element) -> None:
        """Deliver one remote item into the local stream (hot path).

        A leaner :meth:`~repro.streams.stream.Stream.emit`: the channel layer
        already checked that the proxy is open and only ever hands over
        Elements, so the guard checks and the per-call stats dispatch are
        skipped.  Accounting stays identical -- the cached item weight is
        reused, not re-walked.
        """
        stats = self.stats
        stats.items += 1
        stats.bytes += item.weight()
        if self.keep_history:
            self.history.append(item)
        subscribers = self._subscribers
        if len(subscribers) == 1:
            subscribers[0](item)
        else:
            for subscriber in list(subscribers):
                subscriber(item)

    def accept_seq(self, seq: int) -> bool:
        """Record a sequence number; False when it was already delivered.

        Memory stays bounded: once more than ``SEQ_WINDOW`` numbers are
        retained, everything older than ``newest - SEQ_WINDOW`` collapses
        into a floor (a pathologically late copy beyond the window would be
        mistaken for a duplicate -- the safe direction for exactly-once).
        """
        if seq <= self._seq_floor or seq in self.seen_seqs:
            return False
        self.seen_seqs.add(seq)
        if len(self.seen_seqs) > self.SEQ_WINDOW:
            floor = max(self.seen_seqs) - self.SEQ_WINDOW
            self.seen_seqs = {s for s in self.seen_seqs if s > floor}
            self._seq_floor = max(self._seq_floor, floor)
        return True


class ChannelRegistry:
    """Per-peer registry of published channels and remote subscriptions."""

    def __init__(self, peer: "Peer") -> None:
        self._peer = peer
        self._published: dict[str, Channel] = {}
        self._proxies: dict[tuple[str, str], RemoteChannelProxy] = {}
        self._proxy_unsubscribes: dict[tuple[str, str], object] = {}
        #: name-allocation fast path: bumped whenever a name is freed, and
        #: per-base resume points for :meth:`allocate_name` probes
        self._free_epoch = 0
        self._name_hints: dict[str, tuple[int, int]] = {}
        peer.register_handler(MSG_SUBSCRIBE, self._on_subscribe)
        peer.register_handler(MSG_UNSUBSCRIBE, self._on_unsubscribe)
        peer.register_handler(MSG_ITEM, self._on_item)
        peer.register_handler(MSG_EOS, self._on_eos)

    # -- publishing side -----------------------------------------------------

    def publish(self, channel_id: str, stream: Stream) -> Channel:
        """Publish ``stream`` as a channel named ``channel_id``."""
        if channel_id in self._published:
            raise ValueError(
                f"peer {self._peer.peer_id!r} already publishes channel {channel_id!r}"
            )
        channel = Channel(self._peer.peer_id, channel_id, stream)
        self._published[channel_id] = channel

        def forward(item: object) -> None:
            self._forward(channel, item)

        # advertise the batch entry point so Stream.emit_many hands a burst
        # over in one call instead of one _forward per item
        forward.batch = lambda items: self._forward_batch(channel, items)  # type: ignore[attr-defined]
        channel.unsubscribe = stream.subscribe(forward)
        return channel

    def unpublish(self, channel_id: str) -> bool:
        """Withdraw a published channel, freeing its name for reuse.

        The forwarder is detached from the underlying stream and remote
        subscribers are notified with an end-of-channel message.  Returns
        False when the channel was not published here.
        """
        channel = self._published.pop(channel_id, None)
        if channel is None:
            return False
        # a freed name may sit before any probe's resume point: restart
        # name-allocation probes from their base so it is found again
        self._free_epoch += 1
        if callable(channel.unsubscribe):
            channel.unsubscribe()
        payload = Element("channelEos", {"channelId": channel.channel_id})
        for subscriber in channel.sorted_subscribers():
            self._peer.send(subscriber, MSG_EOS, payload)
        channel.clear_subscribers()
        return True

    def published(self, channel_id: str) -> Channel:
        try:
            return self._published[channel_id]
        except KeyError as exc:
            raise UnknownChannelError(
                f"peer {self._peer.peer_id!r} does not publish channel {channel_id!r}"
            ) from exc

    def publishes(self, channel_id: str) -> bool:
        return channel_id in self._published

    def allocate_name(self, base: str) -> str:
        """First free name in the collision sequence ``base``, ``base-2``, ...

        Returns exactly what probing from ``base`` would return, but in
        amortised O(1): names are only freed by :meth:`unpublish`, so while
        nothing has been freed since the previous probe for ``base`` every
        name before that probe's stop point is still taken and the scan
        resumes there instead of re-walking the sequence (which would make
        ingesting N same-named subscriptions quadratic in N).
        """
        epoch, suffix = self._name_hints.get(base, (-1, 1))
        if epoch != self._free_epoch:
            suffix = 1
        while True:
            candidate = base if suffix == 1 else f"{base}-{suffix}"
            if candidate not in self._published:
                break
            suffix += 1
        # resume at the returned suffix: if the caller publishes it the next
        # probe moves past it after one lookup, if not it is handed out again
        self._name_hints[base] = (self._free_epoch, suffix)
        return candidate

    @property
    def published_ids(self) -> list[str]:
        return sorted(self._published)

    def _forward(self, channel: Channel, item: object) -> None:
        if is_eos(item):
            payload = Element("channelEos", {"channelId": channel.channel_id})
            for subscriber in channel.sorted_subscribers():
                self._peer.send(subscriber, MSG_EOS, payload)
            return
        assert isinstance(item, Element)
        self._forward_batch(channel, [item])

    def _forward_batch(self, channel: Channel, items: list[Element]) -> None:
        """Fan a burst of items out to every subscriber of ``channel``.

        One message *template* is built per item: the payload tree is copied
        once and that copy is shared by every subscriber's ``channelItem``
        wrapper (receivers treat stream items as immutable, and the local
        stream layer already delivers one object to all local subscribers).
        Only the thin wrapper -- which carries the per-subscriber sequence
        number -- is built per message, via the trusted Element constructor.
        """
        subscribers = channel.sorted_subscribers()
        if not subscribers or not items:
            return
        next_seq = channel.next_seq
        channel_id = channel.channel_id
        publisher_id = channel.peer_id
        wrap = Element.fast_new
        sends: list[tuple[str, str, Element]] = []
        for item in items:
            shared = item.copy()
            # group subscribers by their next sequence number: counters
            # advance in lock-step in steady state, so one wrapper (and one
            # weight computation) usually serves the entire fan-out; only
            # subscribers whose counter diverged (late join, prior loss of a
            # send) get their own wrapper
            wrappers: dict[int, Element] = {}
            for subscriber in subscribers:
                seq = next_seq.get(subscriber, 0)
                next_seq[subscriber] = seq + 1
                wrapper = wrappers.get(seq)
                if wrapper is None:
                    wrapper = wrappers[seq] = wrap(
                        "channelItem",
                        {
                            "channelId": channel_id,
                            "publisher": publisher_id,
                            "seq": str(seq),
                        },
                        [shared],
                    )
                sends.append((subscriber, MSG_ITEM, wrapper))
        self._peer.network.send_many(self._peer.peer_id, sends)

    # -- subscribing side -----------------------------------------------------

    def subscribe_remote(self, publisher_id: str, channel_id: str) -> RemoteChannelProxy:
        """Subscribe to ``#channel_id@publisher_id`` and return the local proxy."""
        key = (publisher_id, channel_id)
        if key in self._proxies:
            return self._proxies[key]
        proxy = RemoteChannelProxy(publisher_id, channel_id, self._peer.peer_id)
        self._proxies[key] = proxy
        if publisher_id == self._peer.peer_id:
            # Local shortcut: wire the proxy straight to the underlying stream,
            # without adding self to the subscriber set (which would cause
            # self-addressed network messages and double delivery).
            channel = self.published(channel_id)
            self._proxy_unsubscribes[key] = channel.stream.subscribe(proxy.push)
        else:
            request = Element(
                "subscribe",
                {"channelId": channel_id, "subscriber": self._peer.peer_id},
            )
            self._peer.send(publisher_id, MSG_SUBSCRIBE, request)
        return proxy

    def unsubscribe_remote(self, publisher_id: str, channel_id: str) -> None:
        key = (publisher_id, channel_id)
        self._proxies.pop(key, None)
        unsubscribe = self._proxy_unsubscribes.pop(key, None)
        if callable(unsubscribe):
            unsubscribe()
        if publisher_id != self._peer.peer_id:
            request = Element(
                "unsubscribe",
                {"channelId": channel_id, "subscriber": self._peer.peer_id},
            )
            self._peer.send(publisher_id, MSG_UNSUBSCRIBE, request)

    def proxy(self, publisher_id: str, channel_id: str) -> RemoteChannelProxy:
        try:
            return self._proxies[(publisher_id, channel_id)]
        except KeyError as exc:
            raise UnknownChannelError(
                f"peer {self._peer.peer_id!r} has no subscription to "
                f"#{channel_id}@{publisher_id}"
            ) from exc

    # -- message handlers ------------------------------------------------------

    def _on_subscribe(self, message) -> None:
        channel_id = message.payload.attrib["channelId"]
        subscriber = message.payload.attrib["subscriber"]
        channel = self._published.get(channel_id)
        if channel is None:
            # stale subscribe: the channel was withdrawn (peer churn, task
            # teardown) while the request was in flight -- tell the
            # subscriber the channel is gone instead of crashing
            payload = Element("channelEos", {"channelId": channel_id})
            self._peer.send(subscriber, MSG_EOS, payload)
            return
        channel.add_subscriber(subscriber)

    def _on_unsubscribe(self, message) -> None:
        channel_id = message.payload.attrib["channelId"]
        subscriber = message.payload.attrib["subscriber"]
        if channel_id in self._published:
            self._published[channel_id].remove_subscriber(subscriber)

    def _on_item(self, message) -> None:
        payload = message.payload
        attrib = payload.attrib
        proxy = self._proxies.get((attrib["publisher"], attrib["channelId"]))
        if proxy is None or proxy.closed:
            return  # late item for an unsubscribed/closed proxy: drop it
        seq_text = attrib.get("seq")
        if seq_text is not None and not proxy.accept_seq(int(seq_text)):
            proxy.duplicates_dropped += 1
            return  # a faulty network duplicated this message
        proxy.receive_remote(payload.children[0])

    def _on_eos(self, message) -> None:
        channel_id = message.payload.attrib["channelId"]
        proxy = self._proxies.get((message.source, channel_id))
        if proxy is not None:
            proxy.close()
