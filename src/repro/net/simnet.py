"""Deterministic event-queue network simulator with a fault-model kernel.

Peers register with the network; sending a message schedules a delivery
event at ``now + latency(source, destination)``.  Events are processed in
(time, sequence) order, so a run is fully deterministic given the same
inputs and seed.  Latency is derived from peer coordinates on a unit square
(assigned from a seeded RNG unless given explicitly), which also gives the
"networkwise close" notion used by replica selection in Section 5.

On top of the perfect network, the kernel supports the volatile P2P setting
the paper assumes:

* a pluggable :class:`~repro.net.faults.FaultModel` (message loss,
  duplication, reordering jitter, bandwidth-derived latency) consulted at
  delivery-scheduling time;
* named network **partitions** (:meth:`SimNetwork.partition` /
  :meth:`SimNetwork.heal`): messages crossing a partition are *held* and
  rescheduled when the partition heals;
* first-class **peer lifecycle** events (:meth:`SimNetwork.fail_peer` /
  :meth:`SimNetwork.revive_peer`) with listeners the DHT and the monitor
  recovery layer subscribe to;
* a structured, deterministic **event log** (enable with
  ``record_events = True``) so chaos scenarios can assert byte-identical
  traces for identical seeds.

Two RNGs are kept deliberately separate: ``topology_rng`` draws peer
coordinates at registration time, ``runtime_rng`` drives fault decisions.
Registering a peer mid-run therefore never perturbs subsequent fault draws,
which keeps churn tests reproducible.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from typing import TYPE_CHECKING, Callable, Protocol

from repro.net.errors import UnknownPeerError
from repro.net.faults import FaultModel
from repro.net.scheduler import EventScheduler
from repro.net.stats import NetworkStats
from repro.net.wire import decode_element, encode_element
from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.peer import Peer


class Message:
    """One message in flight between two peers.

    A plain ``__slots__`` class rather than a dataclass: one instance is
    created per scheduled delivery, which makes construction cost part of
    the network's per-message overhead.
    """

    __slots__ = (
        "source",
        "destination",
        "kind",
        "payload",
        "size",
        "sent_at",
        "deliver_at",
    )

    def __init__(
        self,
        source: str,
        destination: str,
        kind: str,
        payload: Element,
        size: int,
        sent_at: float,
        deliver_at: float,
    ) -> None:
        self.source = source
        self.destination = destination
        self.kind = kind
        self.payload = payload
        self.size = size
        self.sent_at = sent_at
        self.deliver_at = deliver_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.source!r}->{self.destination!r}, {self.kind!r}, "
            f"size={self.size}, deliver_at={self.deliver_at:.6f})"
        )

    def to_wire(self) -> tuple:
        """Flatten to plain tuples for a cross-process shard boundary.

        The payload Element is encoded without its parent links (see
        :mod:`repro.net.wire`); batches should prefer
        :func:`repro.net.wire.encode_batch`, which shares fan-out payloads.
        """
        return (
            self.source,
            self.destination,
            self.kind,
            encode_element(self.payload),
            self.size,
            self.sent_at,
            self.deliver_at,
        )

    @classmethod
    def from_wire(cls, data: tuple) -> "Message":
        """Rebuild a message flattened by :meth:`to_wire`."""
        source, destination, kind, payload, size, sent_at, deliver_at = data
        return cls(source, destination, kind, decode_element(payload), size, sent_at, deliver_at)


PeerLifecycleListener = Callable[[str], None]


class ShardBoundary(Protocol):
    """What :class:`SimNetwork` needs from a shard boundary (duck-typed).

    Installed by the sharded runtime's workers: events popped for a peer the
    local shard does not own are exported to the owning shard instead of
    being delivered.  ``None`` (the default) keeps the network whole.
    """

    owned: frozenset[str]

    def export(self, message: Message) -> None:  # pragma: no cover - protocol
        ...


class Timer:
    """A scheduled callback on the delivery heap (see :meth:`SimNetwork.call_later`).

    Timers share the event queue with messages, so callback order relative
    to deliveries is part of the same deterministic (time, sequence) order.
    """

    __slots__ = ("fire_at", "callback", "cancelled")

    def __init__(self, fire_at: float, callback: Callable[[], None]) -> None:
        self.fire_at = fire_at
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (the heap entry becomes a no-op)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        return f"Timer(fire_at={self.fire_at:.6f}, {state})"


class SimNetwork:
    """The simulated network connecting all peers of a scenario.

    Parameters
    ----------
    seed:
        Seed for the network's RNGs (peer coordinates and fault draws use
        independent streams derived from it).
    base_latency:
        Fixed per-message latency added to the coordinate distance.
    fault_model:
        Optional :class:`FaultModel` applied to every scheduled delivery;
        ``None`` is a perfect network.  Swap at runtime with
        :meth:`set_fault_model`.
    """

    def __init__(
        self,
        seed: int = 0,
        base_latency: float = 0.001,
        fault_model: FaultModel | None = None,
    ) -> None:
        self.seed = seed
        #: draws peer coordinates at registration time
        self.topology_rng = random.Random(seed)
        #: drives runtime fault decisions (loss, duplication, jitter)
        self.runtime_rng = random.Random(f"{seed}:runtime")
        self.base_latency = base_latency
        self.fault_model = fault_model
        #: the deterministic (time, sequence) event core; the heap holds
        #: messages and timers, tie-broken by a unique sequence number so
        #: entries themselves are never compared
        self.scheduler = EventScheduler()
        #: sharded-runtime hook: when set, events for peers the local shard
        #: does not own are exported at delivery time instead of delivered
        self.boundary: ShardBoundary | None = None
        self.stats = NetworkStats()
        self._peers: dict[str, "Peer"] = {}
        self._coordinates: dict[str, tuple[float, float]] = {}
        #: memoised per-pair latency; coordinates are fixed at registration,
        #: so entries only drop when a peer unregisters
        self._latency_cache: dict[tuple[str, str], float] = {}
        self._trace: list[Message] = []
        self.trace_enabled = False
        #: deterministic, human-readable log of network events (opt-in)
        self.event_log: list[str] = []
        self.record_events = False
        self._down: set[str] = set()
        self._partitions: dict[str, tuple[frozenset[str], ...]] = {}
        self._held: dict[str, list[Message]] = {}
        self._down_listeners: list[PeerLifecycleListener] = []
        self._up_listeners: list[PeerLifecycleListener] = []
        #: counters chaos tests and benchmarks read
        self.messages_lost = 0
        self.messages_duplicated = 0
        self.messages_held = 0
        self.messages_dropped_peer_down = 0

    # ------------------------------------------------------------------ #
    # Backwards compatibility
    # ------------------------------------------------------------------ #

    @property
    def random(self) -> random.Random:
        """Deprecated alias of :attr:`topology_rng` (pre-fault-kernel name)."""
        return self.topology_rng

    # ------------------------------------------------------------------ #
    # Scheduler delegation
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """The simulated clock (owned by the event scheduler)."""
        return self.scheduler.now

    @now.setter
    def now(self, value: float) -> None:
        self.scheduler.now = value

    # ------------------------------------------------------------------ #
    # Peer management
    # ------------------------------------------------------------------ #

    def register(self, peer: "Peer", coordinates: tuple[float, float] | None = None) -> None:
        """Add ``peer`` to the network, assigning coordinates if not given."""
        if peer.peer_id in self._peers:
            raise ValueError(f"peer {peer.peer_id!r} is already registered")
        self._peers[peer.peer_id] = peer
        if coordinates is None:
            coordinates = (self.topology_rng.random(), self.topology_rng.random())
        self._coordinates[peer.peer_id] = coordinates

    def unregister(self, peer_id: str) -> None:
        """Remove a peer (simulates the peer leaving the network)."""
        self._peers.pop(peer_id, None)
        self._coordinates.pop(peer_id, None)
        self._down.discard(peer_id)
        # a later re-registration may draw different coordinates
        self._latency_cache.clear()

    def peer(self, peer_id: str) -> "Peer":
        try:
            return self._peers[peer_id]
        except KeyError as exc:
            raise UnknownPeerError(f"unknown peer {peer_id!r}") from exc

    def has_peer(self, peer_id: str) -> bool:
        return peer_id in self._peers

    @property
    def peer_ids(self) -> list[str]:
        return sorted(self._peers)

    def coordinates(self, peer_id: str) -> tuple[float, float]:
        try:
            return self._coordinates[peer_id]
        except KeyError as exc:
            raise UnknownPeerError(f"unknown peer {peer_id!r}") from exc

    def distance(self, peer_a: str, peer_b: str) -> float:
        """Euclidean distance between two peers' coordinates."""
        ax, ay = self.coordinates(peer_a)
        bx, by = self.coordinates(peer_b)
        return ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5

    def latency(self, source: str, destination: str) -> float:
        cached = self._latency_cache.get((source, destination))
        if cached is not None:
            return cached
        if source == destination:
            value = 0.0
        else:
            value = self.base_latency + self.distance(source, destination) / 100.0
        self._latency_cache[(source, destination)] = value
        return value

    # ------------------------------------------------------------------ #
    # Peer lifecycle (fail / revive)
    # ------------------------------------------------------------------ #

    def fail_peer(self, peer_id: str, notify: bool = True) -> bool:
        """Mark a registered peer as failed: it can no longer send or receive.

        The peer stays registered (its identity and coordinates survive), so
        it can be revived later; messages addressed to it while down are
        dropped.  Returns False when already down.

        ``notify=False`` is a **silent kill**: lifecycle listeners are not
        invoked, modelling the paper's volatile peers that leave without
        telling anyone -- only a failure detector (heartbeat timeouts) can
        notice.  The network-level liveness bookkeeping is identical either
        way; what differs is who gets told.
        """
        if peer_id not in self._peers:
            raise UnknownPeerError(f"cannot fail unknown peer {peer_id!r}")
        if peer_id in self._down:
            return False
        self._down.add(peer_id)
        if self.record_events:
            self._log(f"fail {peer_id}")
        if notify:
            for listener in list(self._down_listeners):
                listener(peer_id)
        return True

    def revive_peer(self, peer_id: str, notify: bool = True) -> bool:
        """Bring a failed peer back; returns False when it was not down.

        ``notify=False`` is a silent revival: listeners are not invoked and
        the peer must make itself known again (the failure detector's rejoin
        handshake).
        """
        if peer_id not in self._peers:
            raise UnknownPeerError(f"cannot revive unknown peer {peer_id!r}")
        if peer_id not in self._down:
            return False
        self._down.discard(peer_id)
        if self.record_events:
            self._log(f"revive {peer_id}")
        if notify:
            for listener in list(self._up_listeners):
                listener(peer_id)
        return True

    def is_alive(self, peer_id: str) -> bool:
        """True when the peer is registered and not failed."""
        return peer_id in self._peers and peer_id not in self._down

    def down_peers(self) -> frozenset[str]:
        """The currently failed peers."""
        return frozenset(self._down)

    def on_peer_down(self, listener: PeerLifecycleListener) -> Callable[[], None]:
        """Invoke ``listener(peer_id)`` on every failure; returns an unsubscriber."""
        self._down_listeners.append(listener)
        return lambda: self._discard_listener(self._down_listeners, listener)

    def on_peer_up(self, listener: PeerLifecycleListener) -> Callable[[], None]:
        """Invoke ``listener(peer_id)`` on every revival; returns an unsubscriber."""
        self._up_listeners.append(listener)
        return lambda: self._discard_listener(self._up_listeners, listener)

    @staticmethod
    def _discard_listener(
        bucket: list[PeerLifecycleListener], listener: PeerLifecycleListener
    ) -> None:
        if listener in bucket:
            bucket.remove(listener)

    # ------------------------------------------------------------------ #
    # Partitions
    # ------------------------------------------------------------------ #

    def partition(self, name: str, *groups: list[str] | set[str] | tuple[str, ...]) -> None:
        """Split the network: peers in different ``groups`` cannot exchange messages.

        Messages crossing the split are held and rescheduled at
        :meth:`heal` time (a reliable transport retransmits across a
        temporary split).  Peers not named in any group are unaffected.
        """
        if name in self._partitions:
            raise ValueError(f"partition {name!r} is already active")
        if len(groups) < 2:
            raise ValueError("a partition needs at least two groups")
        frozen = tuple(frozenset(group) for group in groups)
        seen: set[str] = set()
        for group in frozen:
            overlap = seen & group
            if overlap:
                raise ValueError(f"peers {sorted(overlap)} appear in two groups")
            seen |= group
        self._partitions[name] = frozen
        self._held[name] = []
        if self.record_events:
            self._log(
                f"partition {name} "
                + "|".join(",".join(sorted(g)) for g in frozen)
            )

    def heal(self, name: str) -> int:
        """End a partition; held messages are rescheduled for delivery.

        Returns the number of messages released.  Unknown names are a no-op
        returning 0 (healing twice is safe in chaos schedules).
        """
        if name not in self._partitions:
            return 0
        del self._partitions[name]
        held = self._held.pop(name, [])
        if self.record_events:
            self._log(f"heal {name} released={len(held)}")
        for message in held:
            if (
                message.source not in self._peers
                or message.destination not in self._peers
            ):
                # an endpoint left the network while the partition was active;
                # drop the message like the delivery path does for departed peers
                if self.record_events:
                    self._log(
                        f"drop peer-gone {message.source}->{message.destination} {message.kind}"
                    )
                continue
            self._schedule(
                message.source,
                message.destination,
                message.kind,
                message.payload,
                message.size,
                record_stats=False,
                apply_faults=False,
            )
        return len(held)

    @property
    def active_partitions(self) -> list[str]:
        return sorted(self._partitions)

    @property
    def held_messages(self) -> int:
        """Messages currently stalled behind active partitions."""
        return sum(len(held) for held in self._held.values())

    def _blocking_partition(self, source: str, destination: str) -> str | None:
        """Name of the first partition separating the two peers (or None)."""
        for name in sorted(self._partitions):
            groups = self._partitions[name]
            source_group = destination_group = -1
            for index, group in enumerate(groups):
                if source in group:
                    source_group = index
                if destination in group:
                    destination_group = index
            if source_group >= 0 and destination_group >= 0 and source_group != destination_group:
                return name
        return None

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #

    def send(self, source: str, destination: str, kind: str, payload: Element) -> Message:
        """Queue a message for delivery; returns the scheduled message.

        The fault model, partitions and peer liveness all apply here: one
        crossing a partition is held until heal, and the fault model may
        lose, duplicate or delay what remains.  Dead-peer semantics are
        symmetric and both count ``messages_dropped_peer_down``:

        * a message **from** a failed peer is dropped at send time
          (``drop source-down`` in the event log) -- its in-process objects
          may still try to send during teardown;
        * a message **to** a peer already failed at send time is dropped at
          send time too (``drop destination-down``); a peer that fails
          while the message is in flight still drops it at delivery time
          (same log text, later timestamp).
        """
        if destination not in self._peers:
            raise UnknownPeerError(f"cannot send to unknown peer {destination!r}")
        if source not in self._peers:
            raise UnknownPeerError(f"cannot send from unknown peer {source!r}")
        down = self._down
        if down:
            if source in down:
                self.messages_dropped_peer_down += 1
                if self.record_events:
                    self._log(f"drop source-down {source}->{destination} {kind}")
                return self._make_message(source, destination, kind, payload, payload.weight())
            if destination in down:
                self.messages_dropped_peer_down += 1
                if self.record_events:
                    self._log(f"drop destination-down {source}->{destination} {kind}")
                return self._make_message(source, destination, kind, payload, payload.weight())
        return self._schedule(source, destination, kind, payload, payload.weight())

    def send_many(
        self, source: str, sends: list[tuple[str, str, Element]]
    ) -> list[Message]:
        """Queue a burst of ``(destination, kind, payload)`` sends from one peer.

        Semantically identical to a loop of :meth:`send` calls -- same
        scheduling, fault draws, stats and trace -- but the source liveness
        check is hoisted out of the loop, which matters for channel fan-out
        to thousands of subscribers.
        """
        if source not in self._peers:
            raise UnknownPeerError(f"cannot send from unknown peer {source!r}")
        if source in self._down:
            messages = []
            record = self.record_events
            for destination, kind, payload in sends:
                if destination not in self._peers:
                    raise UnknownPeerError(
                        f"cannot send to unknown peer {destination!r}"
                    )
                self.messages_dropped_peer_down += 1
                if record:
                    self._log(f"drop source-down {source}->{destination} {kind}")
                messages.append(
                    self._make_message(
                        source, destination, kind, payload, payload.weight()
                    )
                )
            return messages
        peers = self._peers
        down = self._down
        messages: list[Message] = []
        if (
            self.fault_model is not None
            or self._partitions
            or self.trace_enabled
            or self.record_events
        ):
            schedule = self._schedule
            for destination, kind, payload in sends:
                if destination not in peers:
                    raise UnknownPeerError(
                        f"cannot send to unknown peer {destination!r}"
                    )
                if down and destination in down:
                    self.messages_dropped_peer_down += 1
                    if self.record_events:
                        self._log(
                            f"drop destination-down {source}->{destination} {kind}"
                        )
                    messages.append(
                        self._make_message(
                            source, destination, kind, payload, payload.weight()
                        )
                    )
                    continue
                messages.append(
                    schedule(source, destination, kind, payload, payload.weight())
                )
            return messages
        # perfect-network burst: no faults, no partitions, no tracing --
        # inline the whole schedule step (latency lookup, stats, heap push)
        scheduler = self.scheduler
        now = scheduler.now
        latency = self.latency
        stats = self.stats
        pending = stats._pending
        queue = scheduler.queue
        heappush = heapq.heappush
        sequence = scheduler.sequence
        total_bytes = 0
        for destination, kind, payload in sends:
            if destination not in peers:
                raise UnknownPeerError(f"cannot send to unknown peer {destination!r}")
            if down and destination in down:
                self.messages_dropped_peer_down += 1
                messages.append(
                    self._make_message(
                        source, destination, kind, payload, payload.weight()
                    )
                )
                continue
            size = payload.weight()
            total_bytes += size
            pending.append((source, destination, size))
            deliver_at = now + latency(source, destination)
            message = Message(source, destination, kind, payload, size, now, deliver_at)
            sequence += 1
            heappush(queue, (deliver_at, sequence, message))
            messages.append(message)
        scheduler.sequence = sequence
        stats.total_messages += len(messages)
        stats.total_bytes += total_bytes
        if len(pending) >= stats.FLUSH_THRESHOLD:
            stats._flush()
        return messages

    def _make_message(
        self, source: str, destination: str, kind: str, payload: Element, size: int
    ) -> Message:
        return Message(
            source=source,
            destination=destination,
            kind=kind,
            payload=payload,
            size=size,
            sent_at=self.now,
            deliver_at=self.now + self.latency(source, destination),
        )

    def _schedule(
        self,
        source: str,
        destination: str,
        kind: str,
        payload: Element,
        size: int,
        record_stats: bool = True,
        apply_faults: bool = True,
    ) -> Message:
        message = self._make_message(source, destination, kind, payload, size)
        if record_stats:
            # a heal-time reschedule was already recorded (and traced) when
            # the message was first sent
            self.stats.record(source, destination, size)
            if self.trace_enabled:
                self._trace.append(message)
        if self._partitions:
            blocking = self._blocking_partition(source, destination)
            if blocking is not None:
                self.messages_held += 1
                self._held[blocking].append(message)
                if self.record_events:
                    self._log(f"hold {blocking} {source}->{destination} {kind}")
                return message
        if self.fault_model is None or not apply_faults:
            # fast path for the perfect network (and for heal-time
            # reschedules, which model a reliable transport retransmitting
            # across a temporary split: delayed, never lost or duplicated) --
            # no fault draws, one copy, straight onto the heap
            self.scheduler.push(message.deliver_at, message)
            return message
        delays = self.fault_model.delivery_delays(size, self.runtime_rng)
        if delays is None:
            self.messages_lost += 1
            if self.record_events:
                self._log(f"drop loss {source}->{destination} {kind}")
            return message
        if len(delays) > 1:
            self.messages_duplicated += len(delays) - 1
            if self.record_events:
                self._log(f"dup {source}->{destination} {kind} copies={len(delays)}")
        first: Message | None = None
        for delay in delays:
            if delay == 0.0:
                copy = message
            else:
                copy = Message(
                    source,
                    destination,
                    kind,
                    payload,
                    size,
                    message.sent_at,
                    message.deliver_at + delay,
                )
            self.scheduler.push(copy.deliver_at, copy)
            if first is None:
                first = copy
        assert first is not None
        return first

    def set_fault_model(self, fault_model: FaultModel | None) -> None:
        """Swap the active fault model (``None`` restores the perfect network)."""
        self.fault_model = fault_model
        if self.record_events:
            self._log(f"faults {fault_model!r}")

    @property
    def pending_messages(self) -> int:
        return len(self.scheduler)

    @property
    def trace(self) -> list[Message]:
        return list(self._trace)

    def call_later(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` on the event heap at ``now + delay``.

        Returns a :class:`Timer` handle whose :meth:`Timer.cancel` turns the
        pending entry into a no-op.  Timers interleave deterministically
        with message deliveries in (time, sequence) order; the RPC layer
        uses them for per-call deadlines.
        """
        if delay < 0:
            raise ValueError("cannot schedule a timer in the past")
        timer = Timer(self.now + delay, callback)
        self.scheduler.push(timer.fire_at, timer)
        return timer

    def _deliver_one(self, message: Message | Timer) -> None:
        """Deliver (or drop) one dequeued event; the scheduler has already
        advanced the clock to its fire time.

        The single copy of the delivery semantics: both :meth:`step` and the
        :meth:`run` drain loop funnel through here, so drop rules, logging
        and handler dispatch cannot diverge between single-stepping and
        batch draining.  Timers share the funnel: the callback fires unless
        the timer was cancelled.  With a shard boundary installed, messages
        for peers the local shard does not own are exported to the owning
        shard instead -- liveness and departure are the owner's call.
        """
        if type(message) is Timer:
            if not message.cancelled:
                message.callback()
            return
        assert isinstance(message, Message)
        destination = message.destination
        boundary = self.boundary
        if boundary is not None and destination not in boundary.owned:
            boundary.export(message)
            return
        if destination in self._down:
            self.messages_dropped_peer_down += 1
            if self.record_events:
                self._log(
                    f"drop destination-down {message.source}->{destination} {message.kind}"
                )
            return
        peer = self._peers.get(destination)
        if peer is not None:  # peer may have left while the message was in flight
            if self.record_events:
                self._log(
                    f"deliver {message.source}->{destination} {message.kind}"
                )
            peer.handle_message(message)

    def step(self) -> bool:
        """Deliver the next queued message.  Returns False when idle."""
        return self.scheduler.step(self._deliver_one)

    def run(self, max_steps: int | None = None) -> int:
        """Deliver messages until the queue drains (or ``max_steps`` is hit).

        Handlers may send further messages; those are processed too.  Returns
        the number of messages delivered.  The drain loop lives in
        :meth:`EventScheduler.drain` and stays flat -- one heap pop and one
        :meth:`_deliver_one` call per message -- because it brackets every
        hop of the delivery path.
        """
        return self.scheduler.drain(self._deliver_one, max_steps)

    def run_until_idle(self, max_steps: int | None = None) -> int:
        """Drain the queue completely (alias of :meth:`run`, named for intent)."""
        return self.run(max_steps)

    def advance(self, duration: float) -> None:
        """Advance the simulated clock without delivering messages."""
        if duration < 0:
            raise ValueError("cannot advance time backwards")
        self.now += duration

    # ------------------------------------------------------------------ #
    # Event log
    # ------------------------------------------------------------------ #

    def _log(self, text: str) -> None:
        if self.record_events:
            self.event_log.append(f"{self.now:.6f} {text}")

    def trace_fingerprint(self) -> str:
        """SHA-256 over the event log -- the golden-trace determinism anchor."""
        digest = hashlib.sha256("\n".join(self.event_log).encode("utf-8"))
        return digest.hexdigest()


def broadcast(
    network: SimNetwork,
    source: str,
    destinations: list[str],
    kind: str,
    payload: Element,
) -> list[Message]:
    """Send the same payload from ``source`` to every destination."""
    return [network.send(source, dest, kind, payload) for dest in destinations]


MessageHandler = Callable[[Message], None]
