"""Deterministic event-queue network simulator.

Peers register with the network; sending a message schedules a delivery
event at ``now + latency(source, destination)``.  Events are processed in
(time, sequence) order, so a run is fully deterministic given the same
inputs and seed.  Latency is derived from peer coordinates on a unit square
(assigned from a seeded RNG unless given explicitly), which also gives the
"networkwise close" notion used by replica selection in Section 5.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.net.errors import UnknownPeerError
from repro.net.stats import NetworkStats
from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.peer import Peer


@dataclass(frozen=True)
class Message:
    """One message in flight between two peers."""

    source: str
    destination: str
    kind: str
    payload: Element
    size: int
    sent_at: float
    deliver_at: float


@dataclass(order=True)
class _Event:
    deliver_at: float
    sequence: int
    message: Message = field(compare=False)


class SimNetwork:
    """The simulated network connecting all peers of a scenario.

    Parameters
    ----------
    seed:
        Seed for the network's RNG (peer coordinates, workload helpers).
    base_latency:
        Fixed per-message latency added to the coordinate distance.
    """

    def __init__(self, seed: int = 0, base_latency: float = 0.001) -> None:
        self.random = random.Random(seed)
        self.base_latency = base_latency
        self.now = 0.0
        self.stats = NetworkStats()
        self._peers: dict[str, "Peer"] = {}
        self._coordinates: dict[str, tuple[float, float]] = {}
        self._queue: list[_Event] = []
        self._sequence = 0
        self._trace: list[Message] = []
        self.trace_enabled = False

    # ------------------------------------------------------------------ #
    # Peer management
    # ------------------------------------------------------------------ #

    def register(self, peer: "Peer", coordinates: tuple[float, float] | None = None) -> None:
        """Add ``peer`` to the network, assigning coordinates if not given."""
        if peer.peer_id in self._peers:
            raise ValueError(f"peer {peer.peer_id!r} is already registered")
        self._peers[peer.peer_id] = peer
        if coordinates is None:
            coordinates = (self.random.random(), self.random.random())
        self._coordinates[peer.peer_id] = coordinates

    def unregister(self, peer_id: str) -> None:
        """Remove a peer (simulates the peer leaving the network)."""
        self._peers.pop(peer_id, None)
        self._coordinates.pop(peer_id, None)

    def peer(self, peer_id: str) -> "Peer":
        try:
            return self._peers[peer_id]
        except KeyError as exc:
            raise UnknownPeerError(f"unknown peer {peer_id!r}") from exc

    def has_peer(self, peer_id: str) -> bool:
        return peer_id in self._peers

    @property
    def peer_ids(self) -> list[str]:
        return sorted(self._peers)

    def coordinates(self, peer_id: str) -> tuple[float, float]:
        try:
            return self._coordinates[peer_id]
        except KeyError as exc:
            raise UnknownPeerError(f"unknown peer {peer_id!r}") from exc

    def distance(self, peer_a: str, peer_b: str) -> float:
        """Euclidean distance between two peers' coordinates."""
        ax, ay = self.coordinates(peer_a)
        bx, by = self.coordinates(peer_b)
        return ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5

    def latency(self, source: str, destination: str) -> float:
        if source == destination:
            return 0.0
        return self.base_latency + self.distance(source, destination) / 100.0

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #

    def send(self, source: str, destination: str, kind: str, payload: Element) -> Message:
        """Queue a message for delivery; returns the scheduled message."""
        if destination not in self._peers:
            raise UnknownPeerError(f"cannot send to unknown peer {destination!r}")
        if source not in self._peers:
            raise UnknownPeerError(f"cannot send from unknown peer {source!r}")
        size = payload.weight()
        message = Message(
            source=source,
            destination=destination,
            kind=kind,
            payload=payload,
            size=size,
            sent_at=self.now,
            deliver_at=self.now + self.latency(source, destination),
        )
        self._sequence += 1
        heapq.heappush(self._queue, _Event(message.deliver_at, self._sequence, message))
        self.stats.record(source, destination, size)
        if self.trace_enabled:
            self._trace.append(message)
        return message

    @property
    def pending_messages(self) -> int:
        return len(self._queue)

    @property
    def trace(self) -> list[Message]:
        return list(self._trace)

    def step(self) -> bool:
        """Deliver the next queued message.  Returns False when idle."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self.now = max(self.now, event.deliver_at)
        message = event.message
        peer = self._peers.get(message.destination)
        if peer is not None:  # peer may have left while the message was in flight
            peer.handle_message(message)
        return True

    def run(self, max_steps: int | None = None) -> int:
        """Deliver messages until the queue drains (or ``max_steps`` is hit).

        Handlers may send further messages; those are processed too.  Returns
        the number of messages delivered.
        """
        delivered = 0
        while self._queue:
            if max_steps is not None and delivered >= max_steps:
                break
            if self.step():
                delivered += 1
        return delivered

    def advance(self, duration: float) -> None:
        """Advance the simulated clock without delivering messages."""
        if duration < 0:
            raise ValueError("cannot advance time backwards")
        self.now += duration


def broadcast(
    network: SimNetwork,
    source: str,
    destinations: list[str],
    kind: str,
    payload: Element,
) -> list[Message]:
    """Send the same payload from ``source`` to every destination."""
    return [network.send(source, dest, kind, payload) for dest in destinations]


MessageHandler = Callable[[Message], None]
