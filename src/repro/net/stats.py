"""Communication accounting for the simulated network.

The optimisation questions the paper cares about -- "save on data transfers",
"balance the load", "select a provider that is close and not overloaded" --
are all answered by reading these counters after running a scenario.

Aggregation is lazy: :meth:`NetworkStats.record` sits on the per-message
send path, so it only bumps two integers and appends one tuple to a pending
buffer.  The per-link and per-peer breakdowns are materialised from that
buffer the first time a read needs them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LinkStats:
    """Counters for one directed (source, destination) pair."""

    messages: int = 0
    bytes: int = 0

    def record(self, size: int) -> None:
        self.messages += 1
        self.bytes += size


class NetworkStats:
    """Aggregated counters for the whole simulated network."""

    __slots__ = (
        "total_messages",
        "total_bytes",
        "_links",
        "_per_peer_sent",
        "_per_peer_received",
        "_pending",
        "rpc_calls",
        "rpc_retries",
        "rpc_timeouts",
        "rpc_rejected",
        "circuits_opened",
        "heartbeats_sent",
        "items_retransmitted",
        "items_replayed",
        "items_shed",
        "acks_sent",
        "worker_restarts",
        "peers_failed_over",
        "epochs_stalled",
    )

    def __init__(self) -> None:
        self.total_messages = 0
        self.total_bytes = 0
        self._links: dict[tuple[str, str], LinkStats] = {}
        self._per_peer_sent: dict[str, int] = {}
        self._per_peer_received: dict[str, int] = {}
        self._pending: list[tuple[str, str, int]] = []
        # reliability-layer counters (RPC, heartbeats, reliable channels);
        # kept out of snapshot() so message accounting stays comparable
        # across reliable and plain runs
        self.rpc_calls = 0
        self.rpc_retries = 0
        self.rpc_timeouts = 0
        self.rpc_rejected = 0
        self.circuits_opened = 0
        self.heartbeats_sent = 0
        self.items_retransmitted = 0
        self.items_replayed = 0
        self.items_shed = 0
        self.acks_sent = 0
        # sharded-runtime failover accounting: worker processes lost and
        # failed over (the supervisor "restarts" the epoch without them),
        # peers transferred through oracle fail_peer, and epochs that lost
        # at least one worker turn to a confirmed failure
        self.worker_restarts = 0
        self.peers_failed_over = 0
        self.epochs_stalled = 0

    #: pending-buffer size at which record() folds the buffer into the
    #: aggregate dicts, so a long run that never reads the breakdowns keeps
    #: memory bounded by O(links + peers), not O(messages)
    FLUSH_THRESHOLD = 8192

    def record(self, source: str, destination: str, size: int) -> None:
        """Hot path: called once per scheduled message."""
        self.total_messages += 1
        self.total_bytes += size
        pending = self._pending
        pending.append((source, destination, size))
        if len(pending) >= self.FLUSH_THRESHOLD:
            self._flush()

    def _flush(self) -> None:
        pending = self._pending
        if not pending:
            return
        links = self._links
        sent = self._per_peer_sent
        received = self._per_peer_received
        for source, destination, size in pending:
            link = links.get((source, destination))
            if link is None:
                link = links[(source, destination)] = LinkStats()
            link.messages += 1
            link.bytes += size
            sent[source] = sent.get(source, 0) + 1
            received[destination] = received.get(destination, 0) + 1
        pending.clear()

    # -- aggregated views (materialise the pending buffer on first read) ----- #

    @property
    def links(self) -> dict[tuple[str, str], LinkStats]:
        self._flush()
        return self._links

    @property
    def per_peer_sent(self) -> dict[str, int]:
        self._flush()
        return self._per_peer_sent

    @property
    def per_peer_received(self) -> dict[str, int]:
        self._flush()
        return self._per_peer_received

    def bytes_between(self, source: str, destination: str) -> int:
        link = self.links.get((source, destination))
        return link.bytes if link else 0

    def messages_between(self, source: str, destination: str) -> int:
        link = self.links.get((source, destination))
        return link.messages if link else 0

    def bytes_sent_by(self, peer_id: str) -> int:
        return sum(
            stats.bytes for (src, _), stats in self.links.items() if src == peer_id
        )

    def bytes_received_by(self, peer_id: str) -> int:
        return sum(
            stats.bytes for (_, dst), stats in self.links.items() if dst == peer_id
        )

    def busiest_peer(self) -> str | None:
        """Peer with the highest number of sent+received messages."""
        self._flush()
        load: dict[str, int] = {}
        for peer, count in self._per_peer_sent.items():
            load[peer] = load.get(peer, 0) + count
        for peer, count in self._per_peer_received.items():
            load[peer] = load.get(peer, 0) + count
        if not load:
            return None
        return max(load, key=lambda peer: (load[peer], peer))

    def reset(self) -> None:
        self.total_messages = 0
        self.total_bytes = 0
        self._links.clear()
        self._per_peer_sent.clear()
        self._per_peer_received.clear()
        self._pending.clear()
        self.rpc_calls = 0
        self.rpc_retries = 0
        self.rpc_timeouts = 0
        self.rpc_rejected = 0
        self.circuits_opened = 0
        self.heartbeats_sent = 0
        self.items_retransmitted = 0
        self.items_replayed = 0
        self.items_shed = 0
        self.acks_sent = 0
        self.worker_restarts = 0
        self.peers_failed_over = 0
        self.epochs_stalled = 0

    def snapshot(self) -> dict[str, int]:
        return {"messages": self.total_messages, "bytes": self.total_bytes}

    def reliability_snapshot(self) -> dict[str, int]:
        """Counters of the reliability substrate (RPC, heartbeats, channels).

        Separate from :meth:`snapshot` so existing message/byte comparisons
        stay valid; all-zero on runs that never enable the reliable paths.
        """
        return {
            "rpc_calls": self.rpc_calls,
            "rpc_retries": self.rpc_retries,
            "rpc_timeouts": self.rpc_timeouts,
            "rpc_rejected": self.rpc_rejected,
            "circuits_opened": self.circuits_opened,
            "heartbeats_sent": self.heartbeats_sent,
            "items_retransmitted": self.items_retransmitted,
            "items_replayed": self.items_replayed,
            "items_shed": self.items_shed,
            "acks_sent": self.acks_sent,
            "worker_restarts": self.worker_restarts,
            "peers_failed_over": self.peers_failed_over,
            "epochs_stalled": self.epochs_stalled,
        }
