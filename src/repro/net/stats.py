"""Communication accounting for the simulated network.

The optimisation questions the paper cares about -- "save on data transfers",
"balance the load", "select a provider that is close and not overloaded" --
are all answered by reading these counters after running a scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LinkStats:
    """Counters for one directed (source, destination) pair."""

    messages: int = 0
    bytes: int = 0

    def record(self, size: int) -> None:
        self.messages += 1
        self.bytes += size


@dataclass
class NetworkStats:
    """Aggregated counters for the whole simulated network."""

    total_messages: int = 0
    total_bytes: int = 0
    links: dict[tuple[str, str], LinkStats] = field(default_factory=dict)
    per_peer_sent: dict[str, int] = field(default_factory=dict)
    per_peer_received: dict[str, int] = field(default_factory=dict)

    def record(self, source: str, destination: str, size: int) -> None:
        self.total_messages += 1
        self.total_bytes += size
        link = self.links.setdefault((source, destination), LinkStats())
        link.record(size)
        self.per_peer_sent[source] = self.per_peer_sent.get(source, 0) + 1
        self.per_peer_received[destination] = (
            self.per_peer_received.get(destination, 0) + 1
        )

    def bytes_between(self, source: str, destination: str) -> int:
        link = self.links.get((source, destination))
        return link.bytes if link else 0

    def messages_between(self, source: str, destination: str) -> int:
        link = self.links.get((source, destination))
        return link.messages if link else 0

    def bytes_sent_by(self, peer_id: str) -> int:
        return sum(
            stats.bytes for (src, _), stats in self.links.items() if src == peer_id
        )

    def bytes_received_by(self, peer_id: str) -> int:
        return sum(
            stats.bytes for (_, dst), stats in self.links.items() if dst == peer_id
        )

    def busiest_peer(self) -> str | None:
        """Peer with the highest number of sent+received messages."""
        load: dict[str, int] = {}
        for peer, count in self.per_peer_sent.items():
            load[peer] = load.get(peer, 0) + count
        for peer, count in self.per_peer_received.items():
            load[peer] = load.get(peer, 0) + count
        if not load:
            return None
        return max(load, key=lambda peer: (load[peer], peer))

    def reset(self) -> None:
        self.total_messages = 0
        self.total_bytes = 0
        self.links.clear()
        self.per_peer_sent.clear()
        self.per_peer_received.clear()

    def snapshot(self) -> dict[str, int]:
        return {"messages": self.total_messages, "bytes": self.total_bytes}
