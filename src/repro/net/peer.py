"""Network endpoint: typed message handlers, local streams and channels."""

from __future__ import annotations

from typing import Callable

from repro.net.channel import ChannelRegistry, RemoteChannelProxy
from repro.net.simnet import Message, SimNetwork
from repro.streams.stream import Stream
from repro.xmlmodel.tree import Element

MessageHandler = Callable[[Message], None]


class Peer:
    """A peer in the simulated network.

    This is the *transport-level* peer: it can send and receive messages,
    create local streams, publish them as channels and subscribe to channels
    published elsewhere.  The monitoring behaviour (subscription manager,
    operators, alerters) is layered on top by
    :class:`repro.monitor.p2pm_peer.P2PMPeer`.
    """

    def __init__(
        self,
        peer_id: str,
        network: SimNetwork,
        coordinates: tuple[float, float] | None = None,
    ) -> None:
        if not peer_id:
            raise ValueError("peer_id must be a non-empty string")
        self.peer_id = peer_id
        self.network = network
        self._handlers: dict[str, MessageHandler] = {}
        self._streams: dict[str, Stream] = {}
        self._stream_counter = 0
        #: opt-in received-message log (debugging aid); off by default so the
        #: delivery hot path does not grow an unbounded list per peer
        self.log_inbox = False
        self.inbox_log: list[Message] = []
        network.register(self, coordinates)
        self.channels = ChannelRegistry(self)

    # -- messaging -------------------------------------------------------------

    def register_handler(self, kind: str, handler: MessageHandler) -> None:
        """Register the handler invoked for messages of the given kind."""
        if kind in self._handlers:
            raise ValueError(f"peer {self.peer_id!r} already handles {kind!r}")
        self._handlers[kind] = handler

    def send(self, destination: str, kind: str, payload: Element) -> Message:
        """Send a message through the network."""
        return self.network.send(self.peer_id, destination, kind, payload)

    def handle_message(self, message: Message) -> None:
        """Dispatch an incoming message to its handler (called by the network)."""
        if self.log_inbox:
            self.inbox_log.append(message)
        handler = self._handlers.get(message.kind)
        if handler is None:
            raise ValueError(
                f"peer {self.peer_id!r} received message of unknown kind "
                f"{message.kind!r} from {message.source!r}"
            )
        handler(message)

    # -- streams ----------------------------------------------------------------

    def create_stream(self, stream_id: str | None = None, keep_history: bool = False) -> Stream:
        """Create (and register) a local stream owned by this peer."""
        if stream_id is None:
            self._stream_counter += 1
            stream_id = f"s{self._stream_counter}"
        if stream_id in self._streams:
            raise ValueError(f"peer {self.peer_id!r} already owns stream {stream_id!r}")
        stream = Stream(stream_id, self.peer_id, keep_history=keep_history)
        self._streams[stream_id] = stream
        return stream

    def stream(self, stream_id: str) -> Stream:
        try:
            return self._streams[stream_id]
        except KeyError as exc:
            raise KeyError(
                f"peer {self.peer_id!r} has no stream {stream_id!r}"
            ) from exc

    def has_stream(self, stream_id: str) -> bool:
        return stream_id in self._streams

    @property
    def stream_ids(self) -> list[str]:
        return sorted(self._streams)

    # -- channels (thin wrappers over the registry) ------------------------------

    def publish_channel(self, channel_id: str, stream: Stream):
        """Publish a local stream as channel ``#channel_id@self``."""
        return self.channels.publish(channel_id, stream)

    def subscribe_channel(self, publisher_id: str, channel_id: str) -> RemoteChannelProxy:
        """Subscribe to ``#channel_id@publisher_id``; returns the local proxy stream."""
        return self.channels.subscribe_remote(publisher_id, channel_id)

    def unpublish_channel(self, channel_id: str) -> bool:
        """Withdraw channel ``#channel_id@self``; returns False when unknown."""
        return self.channels.unpublish(channel_id)

    def drop_stream(self, stream_id: str) -> bool:
        """Forget a local stream (teardown); returns False when unknown."""
        return self._streams.pop(stream_id, None) is not None

    def __repr__(self) -> str:
        return f"Peer({self.peer_id!r}, streams={len(self._streams)})"
