"""Deterministic simulated P2P network substrate.

The paper's P2PM peers are Java Web applications exchanging SOAP messages.
Our reproduction replaces the transport with an in-process, deterministic
simulator so that experiments measuring *communication* (messages, bytes,
latency, per-peer load) are exactly reproducible on one machine:

* :class:`repro.net.SimNetwork` -- event-queue based message delivery with a
  simulated clock and per-link latency derived from peer coordinates.
* :class:`repro.net.Peer` -- a network endpoint with typed message handlers,
  local streams and channel publication / subscription.
* :class:`repro.net.Channel` -- the paper's (peerID, streamID, subscribers)
  triple: a published stream that remote peers can subscribe to.
* :class:`repro.net.stats` -- counters used by the benchmarks.
"""

from repro.net.errors import NetworkError, UnknownPeerError
from repro.net.faults import PERFECT, FaultModel
from repro.net.simnet import Message, SimNetwork
from repro.net.peer import Peer
from repro.net.channel import Channel, ChannelRegistry, RemoteChannelProxy
from repro.net.stats import LinkStats, NetworkStats

__all__ = [
    "NetworkError",
    "UnknownPeerError",
    "FaultModel",
    "PERFECT",
    "Message",
    "SimNetwork",
    "Peer",
    "Channel",
    "ChannelRegistry",
    "RemoteChannelProxy",
    "LinkStats",
    "NetworkStats",
]
