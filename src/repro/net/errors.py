"""Exceptions raised by the network substrate."""


class NetworkError(RuntimeError):
    """Base class for network-level failures."""


class UnknownPeerError(NetworkError):
    """Raised when sending to or looking up a peer that is not registered."""


class UnknownChannelError(NetworkError):
    """Raised when subscribing to a channel that the peer does not publish."""
