"""Exceptions raised by the network substrate."""


class NetworkError(RuntimeError):
    """Base class for network-level failures."""


class UnknownPeerError(NetworkError):
    """Raised when sending to or looking up a peer that is not registered."""


class UnknownChannelError(NetworkError):
    """Raised when subscribing to a channel that the peer does not publish."""


class RpcError(NetworkError):
    """Base class for failures of the request/response RPC layer."""


class RpcTimeout(RpcError):
    """An RPC exhausted its retry budget without receiving a response.

    At-least-once semantics: the request may still be executing (or may
    execute later, e.g. after a partition heals) -- receiver-side
    idempotency keys guarantee it executes at most once regardless.
    """

    def __init__(self, destination: str, method: str, attempts: int) -> None:
        super().__init__(
            f"rpc {method!r} to {destination!r} timed out after {attempts} attempt(s)"
        )
        self.destination = destination
        self.method = method
        self.attempts = attempts


class CircuitOpen(RpcError):
    """The per-destination circuit breaker is open: the call was not sent.

    Repeated timeouts against one destination trip its breaker; further
    calls fail fast (graceful degradation) until the cooldown elapses and a
    half-open probe succeeds.
    """

    def __init__(self, destination: str, method: str) -> None:
        super().__init__(
            f"circuit open for destination {destination!r}: rpc {method!r} rejected"
        )
        self.destination = destination
        self.method = method


class RpcRemoteError(RpcError):
    """The remote handler raised; the error travelled back in the response."""

    def __init__(self, destination: str, method: str, detail: str) -> None:
        super().__init__(f"rpc {method!r} at {destination!r} failed remotely: {detail}")
        self.destination = destination
        self.method = method
        self.detail = detail
