"""Exceptions raised by the network substrate."""


class NetworkError(RuntimeError):
    """Base class for network-level failures."""


class UnknownPeerError(NetworkError):
    """Raised when sending to or looking up a peer that is not registered."""


class UnknownChannelError(NetworkError):
    """Raised when subscribing to a channel that the peer does not publish."""


class RpcError(NetworkError):
    """Base class for failures of the request/response RPC layer."""


class RpcTimeout(RpcError):
    """An RPC exhausted its retry budget without receiving a response.

    At-least-once semantics: the request may still be executing (or may
    execute later, e.g. after a partition heals) -- receiver-side
    idempotency keys guarantee it executes at most once regardless.
    """

    def __init__(self, destination: str, method: str, attempts: int) -> None:
        super().__init__(
            f"rpc {method!r} to {destination!r} timed out after {attempts} attempt(s)"
        )
        self.destination = destination
        self.method = method
        self.attempts = attempts


class CircuitOpen(RpcError):
    """The per-destination circuit breaker is open: the call was not sent.

    Repeated timeouts against one destination trip its breaker; further
    calls fail fast (graceful degradation) until the cooldown elapses and a
    half-open probe succeeds.
    """

    def __init__(self, destination: str, method: str) -> None:
        super().__init__(
            f"circuit open for destination {destination!r}: rpc {method!r} rejected"
        )
        self.destination = destination
        self.method = method


class RpcRemoteError(RpcError):
    """The remote handler raised; the error travelled back in the response."""

    def __init__(self, destination: str, method: str, detail: str) -> None:
        super().__init__(f"rpc {method!r} at {destination!r} failed remotely: {detail}")
        self.destination = destination
        self.method = method
        self.detail = detail


class ShardError(NetworkError):
    """Base class for failures of the sharded execution runtime."""


class ShardWorkerError(ShardError):
    """A shard worker's command handler raised.

    The worker keeps the lock-step protocol alive by recording the formatted
    traceback and shipping it on its next reply; the parent re-raises it here
    with every remote traceback intact.
    """

    def __init__(self, tracebacks: list[str]) -> None:
        super().__init__("shard worker error:\n" + "\n".join(tracebacks))
        self.tracebacks = list(tracebacks)


class WorkerFailure(ShardError):
    """A shard worker *process* was lost (see the concrete subclasses).

    Distinct from :class:`ShardWorkerError`: here the worker itself is gone
    (or untrustworthy) and cannot report anything -- the supervisor
    classified the loss from the outside.
    """

    #: how the supervisor classified the loss; set by subclasses
    kind = "lost"

    def __init__(self, shard: int, detail: str) -> None:
        super().__init__(f"shard worker {shard} {self.kind}: {detail}")
        self.shard = shard
        self.detail = detail


class WorkerCrashed(WorkerFailure):
    """The worker process exited (nonzero exit code, signal, or pipe EOF)."""

    kind = "crashed"


class WorkerHung(WorkerFailure):
    """The worker missed its turn deadline while still alive; it was killed."""

    kind = "hung"


class WorkerPoisoned(WorkerFailure):
    """The worker replied outside the protocol; its state is untrusted and
    the process was killed."""

    kind = "poisoned"


class FailoverImpossible(ShardError):
    """Too many shards are gone for failover to preserve the deployment.

    Raised (instead of hanging or silently degrading) when more than half
    the shard workers have been lost; the run is aborted and every
    subsequent ``run``/``tick``/``drive`` re-raises the same error.
    """

    def __init__(self, lost: list[int], shards: int) -> None:
        super().__init__(
            f"failover impossible: {len(lost)} of {shards} shard workers lost "
            f"(shards {lost}); aborting instead of degrading past quorum"
        )
        self.lost = list(lost)
        self.shards = shards
