"""The sharded execution runtime: peers partitioned across worker processes.

``P2PMSystem(runtime="sharded", shards=N)`` escapes the single-process
ceiling (ROADMAP item 2): the whole deployment is built in the parent as
usual, then :meth:`ShardedRuntime.start` forks ``N`` worker processes that
each own a deterministic subset of the peers.  Each worker runs its own
:class:`~repro.net.scheduler.EventScheduler` over its shard; a message whose
destination lives in another shard is exported at delivery time into a
per-shard outbox (:class:`ShardOutboxes`, the concrete
:class:`~repro.net.simnet.ShardBoundary`) and shipped to the owning worker
in a wire-encoded batch at the next exchange round.

Execution is a lock-step epoch protocol driven by the parent's
:meth:`ShardedRuntime.run`:

1. the parent sends each worker a ``drain`` command carrying the batches
   destined for its shard (empty in the first round);
2. each worker pushes the imported messages onto its scheduler (at their
   original ``deliver_at``; the local clock only ever advances forward),
   drains its heap to empty, and replies with its outboxes;
3. the parent routes the outboxes to their destination shards and starts
   the next round; the epoch ends when a round moves no cross-shard traffic.

Determinism: shard assignment is :func:`shard_of` -- a salt-free SHA-1 hash
of the peer id -- so the same peer set always partitions the same way
(Python's builtin ``hash`` is process-salted and would not be reproducible).
Within a shard, the scheduler's (time, sequence) order is as deterministic
as the single-process backend; *across* shards, delivery interleaving is not
globally ordered, which is why sharded equivalence is stated over result
multisets, not over event-log fingerprints.

v1 restrictions (each enforced with an explicit error):

* ``failure_mode="oracle"`` only, and no reliable control/channels -- the
  detector and retransmission layers assume one global clock;
* deployment is frozen once workers fork: ``subscribe``/``cancel``/
  ``pause``/``resume`` and peer churn raise after :meth:`start`;
* result callbacks (``handle.on_result``) must be attached before
  :meth:`start`, so the forked workers know which subscriptions need their
  items (not just their counts) shipped back to the parent.

Worker supervision and failover (on by default, ``supervise=False`` opts
out): every worker turn is bounded by a
:class:`~repro.net.supervisor.ShardSupervisor` deadline and liveness check.
A worker that crashes, hangs past the deadline or replies off-protocol is
*lost*: the parent fails over every peer the dead shard owned through the
ordinary oracle chain -- ``network.fail_peer`` + KadoP re-replication in the
parent mirror *and* (via a control broadcast) in every surviving worker,
with :class:`~repro.monitor.recovery.RecoveryManager` redeployment running
in the parent (whose handles must keep working) and in the worker owning
each affected subscription's manager peer (which executes the replacement
pipeline) -- then drops the dead shard from the epoch roster so subsequent
rounds skip it.  Redeployment placement is deterministic and every process
applies the same fail_peer sequence at the same epoch boundary, so the
surviving processes stay in lock-step agreement about stream ids and
placements.  When more than half the shards are lost the runtime aborts
with a typed :class:`~repro.net.errors.FailoverImpossible` instead of
degrading past quorum -- and never, in any of these paths, hangs.
"""

from __future__ import annotations

import gc
import time
import traceback
from hashlib import sha1
from multiprocessing import get_context
from typing import TYPE_CHECKING, Any, Callable

from repro.net.errors import (
    FailoverImpossible,
    ShardWorkerError,
    WorkerCrashed,
    WorkerFailure,
)
from repro.net.runtime import Runtime, SingleProcessRuntime, apply_control
from repro.net.supervisor import (
    ShardSupervisor,
    SupervisorConfig,
    WorkerFaultInjector,
)
from repro.net.wire import decode_batch, decode_element, encode_batch, encode_element
from repro.streams.item import is_eos

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.p2pm_peer import P2PMSystem
    from repro.net.simnet import Message

#: peer-id -> shard override hook: ``assigner(peer_id, shards)`` may return
#: a shard index or ``None`` to fall back to :func:`shard_of`
ShardAssigner = Callable[[str, int], int | None]


def shard_of(peer_id: str, shards: int) -> int:
    """Deterministic shard of ``peer_id`` among ``shards`` workers.

    SHA-1 based so the assignment is stable across processes and runs
    (builtin ``hash`` is salted per process and would shuffle placement).
    """
    digest = sha1(peer_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


class ShardOutboxes:
    """Concrete shard boundary: buffers messages leaving the local shard.

    Installed on the worker's network as ``network.boundary``; the delivery
    funnel (:meth:`~repro.net.simnet.SimNetwork._deliver_one`) exports every
    popped message whose destination this shard does not own.  Liveness and
    partition state of the *destination* are judged by the owning shard;
    schedule-time semantics (latency, faults, partition capture) were
    already applied in the sender's shard when the message was scheduled.
    """

    __slots__ = ("owned", "assign", "outboxes", "exported")

    def __init__(self, owned: frozenset[str], assign: Callable[[str], int]) -> None:
        self.owned = owned
        self.assign = assign
        self.outboxes: dict[int, list["Message"]] = {}
        self.exported = 0

    def export(self, message: "Message") -> None:
        self.exported += 1
        shard = self.assign(message.destination)
        bucket = self.outboxes.get(shard)
        if bucket is None:
            bucket = self.outboxes[shard] = []
        bucket.append(message)

    def take(self) -> list[tuple[int, tuple]]:
        """Drain the outboxes as ``(destination_shard, wire_batch)`` pairs."""
        if not self.outboxes:
            return []
        out = [
            (shard, encode_batch(messages))
            for shard, messages in sorted(self.outboxes.items())
            if messages
        ]
        self.outboxes.clear()
        return out


class _ResultCollector:
    """Worker-side taps on the delivery streams of owned manager peers.

    Counts every delivered result; ships the items themselves only for
    subscriptions with a parent-side consumer (a result buffer or
    ``on_result`` callbacks attached before the fork).  At bench scale the
    difference matters: counters are a few bytes per collect, items are the
    whole result set re-encoded over a pipe.
    """

    def __init__(self, system: "P2PMSystem", owned: frozenset[str]) -> None:
        #: (manager_peer, sub_id) -> [count, items-or-None]
        self.rows: dict[tuple[str, str], list] = {}
        for peer_id in sorted(owned):
            if not system.has_peer(peer_id):
                continue
            peer = system.peer(peer_id)
            database = peer.manager.database
            for sub_id in database.subscription_ids:
                task = database.get(sub_id).task
                if task is None or task.delivery is None:
                    continue
                # infrastructure subscribers on the delivery stream: the
                # result buffer and the publisher; anything beyond them is a
                # user callback, which needs the items shipped back
                infra = (task.results_buffer is not None) + (task.publisher is not None)
                ship_items = (
                    task.results_buffer is not None
                    or task.delivery.subscriber_count > infra
                )
                row = self.rows[(peer_id, sub_id)] = [0, [] if ship_items else None]
                task.delivery.subscribe(self._tap(row))

    @staticmethod
    def _tap(row: list) -> Callable[[object], None]:
        def tap(item: object) -> None:
            if is_eos(item):
                return
            row[0] += 1
            if row[1] is not None:
                row[1].append(encode_element(item))

        return tap

    def take(self) -> list[tuple[str, str, int, list | None]]:
        """Drain per-subscription deltas since the previous collect."""
        out = []
        for (peer_id, sub_id), row in self.rows.items():
            count, items = row
            if not count:
                continue
            out.append((peer_id, sub_id, count, items))
            row[0] = 0
            if items is not None:
                row[1] = []
        return out


def _worker_main(system: "P2PMSystem", index: int, conn: Any) -> None:
    """Entry point of one forked worker: serve commands over ``conn``.

    The worker inherits the parent's whole object graph via fork and then
    *narrows* it: the heap keeps only events for owned peers (timers stay in
    shard 0 so each fires exactly once system-wide), the boundary redirects
    foreign deliveries, and a local single-process runtime replaces the
    sharded one so ``system.run()``/``system.tick()`` inside this process
    drive the local scheduler directly.
    """
    from repro.net.simnet import Message

    runtime = system.runtime
    assert isinstance(runtime, ShardedRuntime)
    owned = frozenset(runtime.owned_by_shard[index])
    network = system.network
    network.boundary = ShardOutboxes(owned, runtime.shard_for)
    system.runtime = SingleProcessRuntime(system)
    system.runtime.started = True

    def keep(event: object) -> bool:
        if isinstance(event, Message):
            return event.destination in owned
        return index == 0

    network.scheduler.retain(keep)
    collector = _ResultCollector(system, owned)
    # the inherited graph is long-lived shared state: freezing it keeps the
    # cyclic collector from touching (and copying) the parent's COW pages
    gc.freeze()

    errors: list[str] = []
    boundary = network.boundary
    poison_next = False  # injected: reply off-protocol on the next drain
    while True:
        try:
            command = conn.recv()
        except EOFError:
            break
        op = command[0]
        try:
            if op == "drain":
                push = network.scheduler.push
                for batch in command[1]:
                    for message in decode_batch(batch):
                        push(message.deliver_at, message)
                delivered = network.run()
                if poison_next:
                    poison_next = False
                    conn.send(("oops", "injected protocol corruption"))
                else:
                    conn.send(("out", boundary.take(), delivered, errors))
                    errors = []
            elif op == "drive":
                _, peer_id, function, method, args = command
                alerter = system.peer(peer_id).alerter(function)
                if alerter is not None:
                    getattr(alerter, method)(*args)
            elif op == "ctrl":
                _, name, args = command
                if name == "tick":
                    system.tick()
                elif name == "fail_peer":
                    # failover broadcast from the parent: every worker runs
                    # the full oracle chain -- mark the peer down,
                    # re-replicate its index keys, and replay the recovery
                    # redeployment against its own peer mirrors.  The
                    # deployer is deterministic, so each worker converges on
                    # the same new-epoch wiring for the peers it owns (the
                    # redeployed operators at source peers live here, not in
                    # the manager's shard); redundant copies of the
                    # subscribe/unsubscribe control messages the replay
                    # ships cross-shard are idempotent at the receiver.
                    (peer_id,) = args
                    if network.fail_peer(peer_id, notify=True):
                        system.kadop.fail_peer(peer_id)
                        system.recovery.handle_peer_failure(peer_id)
                        network.run()
                else:
                    apply_control(network, name, args)
            elif op == "collect":
                conn.send(("results", collector.take(), errors))
                errors = []
            elif op == "ping":
                conn.send(("pong", index))
            elif op == "hang":
                # injected: a worker stuck in a busy loop / lost to the
                # scheduler; only the supervisor's deadline can notice
                time.sleep(3600.0)
            elif op == "corrupt":
                poison_next = True
            elif op == "stop":
                break
        except Exception:
            err = f"shard {index}: {traceback.format_exc()}"
            # request/reply ops must still reply to keep the protocol in
            # lock-step; fire-and-forget errors ride along on the next reply
            if op == "drain":
                conn.send(("out", [], 0, errors + [err]))
                errors = []
            elif op == "collect":
                conn.send(("results", [], errors + [err]))
                errors = []
            elif op == "ping":
                conn.send(("pong", index))
                errors.append(err)
            else:
                errors.append(err)
    conn.close()


class ShardedRuntime(Runtime):
    """Fork-based sharded backend (see module docstring for the protocol)."""

    name = "sharded"

    def __init__(
        self,
        system: "P2PMSystem",
        shards: int = 2,
        assigner: ShardAssigner | None = None,
        supervise: bool = True,
        supervisor_config: SupervisorConfig | None = None,
    ) -> None:
        super().__init__(system)
        if shards < 2:
            raise ValueError(f"sharded runtime needs shards >= 2, got {shards}")
        self.shards = shards
        self.assigner = assigner
        self.owned_by_shard: list[list[str]] = []
        self._assignments: dict[str, int] = {}
        self._conns: list[Any] = []
        self._procs: list[Any] = []
        #: worker turn deadlines + liveness classification (None = legacy
        #: unsupervised mode, where a loss raises instead of failing over)
        self.supervisor = ShardSupervisor(supervisor_config) if supervise else None
        #: deterministic worker-level fault injection (scenarios, tests)
        self.fault_injector: WorkerFaultInjector | None = None
        #: shards whose worker was lost and failed over; epochs skip them
        self.lost_shards: set[int] = set()
        #: peers transferred through failover, in fail_peer order -- chaos
        #: scenarios drain this to attribute the failures to their tick
        self.failed_over_peers: list[str] = []
        #: a FailoverImpossible abort, re-raised by every later call
        self._aborted: FailoverImpossible | None = None
        #: counters surfaced by :meth:`stats`
        self.rounds = 0
        self.epochs = 0
        self.messages_exchanged = 0
        self.results_harvested = 0
        self.batches_dropped = 0

    # -- shard assignment --------------------------------------------------

    def shard_for(self, peer_id: str) -> int:
        """The shard owning ``peer_id`` (cached; assigner may override)."""
        shard = self._assignments.get(peer_id)
        if shard is None:
            if self.assigner is not None:
                override = self.assigner(peer_id, self.shards)
                shard = (
                    shard_of(peer_id, self.shards)
                    if override is None
                    else int(override) % self.shards
                )
            else:
                shard = shard_of(peer_id, self.shards)
            self._assignments[peer_id] = shard
        return shard

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self.started:
            return
        system = self.system
        # flush pre-start deployment traffic in-process so workers fork with
        # a quiescent network and only their own residual state to filter
        system.network.run()
        self.owned_by_shard = [[] for _ in range(self.shards)]
        for peer_id in system.peer_ids:
            self.owned_by_shard[self.shard_for(peer_id)].append(peer_id)
        ctx = get_context("fork")
        self.started = True  # workers read this runtime as self-describing
        try:
            for index in range(self.shards):
                parent_conn, child_conn = ctx.Pipe()
                # register the parent end first: if the fork below fails,
                # _teardown() still finds (and closes) this pipe
                self._conns.append(parent_conn)
                try:
                    proc = ctx.Process(
                        target=_worker_main,
                        args=(system, index, child_conn),
                        daemon=True,
                        name=f"p2pm-shard-{index}",
                    )
                    proc.start()
                finally:
                    # the parent's copy of the child end is closed on every
                    # path -- including a Process that never started -- so a
                    # mid-start failure leaks no descriptors
                    child_conn.close()
                self._procs.append(proc)
            if self.supervisor is not None and self.supervisor.config.startup_ping:
                # confirm every worker survived the fork and is serving
                # before the first epoch; a startup death is a hard,
                # typed error, not a failover (nothing ran yet)
                for index in range(self.shards):
                    self.supervisor.heartbeat(
                        index, self._procs[index], self._conns[index]
                    )
        except BaseException:
            self.started = False
            self._teardown()
            raise
        # the parent becomes a mirror: workers execute the pipelines, the
        # parent only absorbs harvested results into delivery streams.
        # Disconnect the mirror's publishers so absorption does not
        # re-publish results onto the mirror network (workers forked with
        # the connections intact and keep publishing within their shards).
        self._disconnect_mirror_publishers()

    def shutdown(self) -> None:
        if not self._procs:
            return
        for index, conn in enumerate(self._conns):
            if index in self.lost_shards:
                continue  # already dead; its pipe may be broken
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        self._teardown()

    def _teardown(self) -> None:
        """Reap every worker and close every pipe end; idempotent."""
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=5)
            # join() reaped the exit status; close() releases the process
            # object's sentinel descriptor so nothing leaks into long runs
            proc.close()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._conns = []
        self._procs = []

    # -- execution ---------------------------------------------------------

    def run(self, max_steps: int | None = None) -> int:
        if not self.started:
            return self.system.network.run(max_steps)
        self._check_aborted()
        self.epochs += 1
        lost_at_entry = len(self.lost_shards)
        self._inject_faults()
        delivered = 0
        incoming: list[list] = [[] for _ in range(self.shards)]
        first = True
        while True:
            self.rounds += 1
            # the first round must visit every worker (pending drive/ctrl
            # commands and retained timers live there); later rounds only
            # need the workers that actually have imports to deliver --
            # a worker's heap is empty after its own drain
            active = [
                i
                for i in range(self.shards)
                if i not in self.lost_shards and (first or incoming[i])
            ]
            first = False
            replies, failures = self._exchange(
                {index: ("drain", incoming[index]) for index in active}
            )
            incoming = [[] for _ in range(self.shards)]
            traffic = 0
            dead = self.lost_shards | set(failures)
            for _, outgoing, count, errs in replies:
                self._raise_on(errs)
                delivered += count
                for destination, batch in outgoing:
                    if destination in dead:
                        # in-flight traffic addressed to a shard that died
                        # this round: crash semantics, dropped and counted
                        self.batches_dropped += 1
                        continue
                    incoming[destination].append(batch)
                    traffic += len(batch[1])
            self.messages_exchanged += traffic
            if failures:
                # fail over *between* rounds, so the parent mirror and every
                # surviving worker apply the same fail_peer sequence at the
                # same protocol boundary (pipe FIFO ordering delivers the
                # ctrl before the next drain).  The next round re-visits
                # every survivor: redeployment control traffic is sitting in
                # their boundaries waiting for a drain to ship it.
                self._failover(failures)
                first = True
                continue
            if not traffic:
                break
        self._harvest()
        if len(self.lost_shards) > lost_at_entry:
            self.system.network.stats.epochs_stalled += 1
        return delivered

    def tick(self) -> None:
        if self.started:
            self._check_aborted()
            self._broadcast(("ctrl", "tick", ()))
        self.system._local_tick()

    # -- external drivers --------------------------------------------------

    def control(self, op: str, *args: Any) -> Any:
        # the parent mirror tracks control state too (active_partitions,
        # fault model) so scenario drain logic can query it
        result = apply_control(self.system.network, op, args)
        if self.started:
            self._check_aborted()
            self._broadcast(("ctrl", op, args))
        return result

    def drive(self, peer_id: str, function: str, method: str, args: tuple) -> Any:
        if not self.started:
            alerter = self.system.peer(peer_id).alerter(function)
            if alerter is None:
                return False
            return getattr(alerter, method)(*args)
        self._check_aborted()
        shard = self.shard_for(peer_id)
        if shard in self.lost_shards:
            return None  # the peer died with its worker; callers see it down
        try:
            self._send(shard, ("drive", peer_id, function, method, args))
        except WorkerFailure as failure:
            if self.supervisor is None:
                raise  # unsupervised mode reports, it does not fail over
            self._failover({shard: failure})
        return None

    def inject_worker_fault(
        self, kind: str, shard: int | None = None, epoch: int | None = None
    ) -> None:
        """Arm a deterministic worker fault (``kill``/``hang``/``corrupt``).

        With ``epoch=None`` the fault fires at the start of the next
        :meth:`run`; otherwise when the epoch counter reaches ``epoch``.
        """
        if self.fault_injector is None:
            self.fault_injector = WorkerFaultInjector()
        if epoch is None:
            self.fault_injector.arm(kind, shard)
        else:
            self.fault_injector.at_epoch(epoch, kind, shard)

    # -- capability guards -------------------------------------------------

    def check_mutable(self, verb: str) -> None:
        if self.started:
            raise RuntimeError(
                f"sharded runtime: {verb} is not supported after start_runtime(); "
                "deploy every subscription before starting the workers"
            )

    def check_lifecycle(self, verb: str) -> None:
        if self.started:
            raise RuntimeError(
                f"sharded runtime: {verb} is not supported after start_runtime(); "
                "peer churn needs the single-process backend (or a future "
                "shard-aware membership protocol)"
            )

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        return {
            "shards": self.shards,
            "epochs": self.epochs,
            "rounds": self.rounds,
            "messages_exchanged": self.messages_exchanged,
            "results_harvested": self.results_harvested,
            "peers_per_shard": [len(owned) for owned in self.owned_by_shard],
            "supervised": self.supervisor is not None,
            "workers_lost": sorted(self.lost_shards),
            "peers_failed_over": len(self.failed_over_peers),
            "batches_dropped": self.batches_dropped,
        }

    # -- internals ---------------------------------------------------------

    #: reply tag each request op expects (shape-validated by the supervisor)
    _EXPECT = {"drain": "out", "collect": "results", "ping": "pong"}

    def _exchange(
        self, commands: dict[int, tuple]
    ) -> tuple[list[tuple], dict[int, WorkerFailure]]:
        """Run one request/reply turn per addressed worker, strictly in
        sequence: worker *i* finishes its command before worker *i+1* even
        receives one.

        Sequencing the turns is deliberate.  The shard workers share the
        host's cores with each other, and letting them all drain
        concurrently makes the OS timeslice between them, evicting each
        worker's plan working set from cache several times per round.
        Running the turns back to back keeps exactly one worker hot at a
        time -- the win that makes a large sharded deployment scale -- and
        as a bonus makes pipe deadlock impossible: the worker is always
        blocked in ``recv`` when the parent sends, and the parent only
        sends one command before draining the matching reply.

        Supervised mode returns the turns that ended in a confirmed worker
        loss as ``{shard: WorkerFailure}`` for the caller to fail over;
        unsupervised mode raises the first loss (typed, never a hang on
        EOF -- only a deadline needs the supervisor).
        """
        replies = []
        failures: dict[int, WorkerFailure] = {}
        for index, command in commands.items():
            conn, proc = self._conns[index], self._procs[index]
            if self.supervisor is None:
                try:
                    conn.send(command)
                    replies.append(conn.recv())
                except (EOFError, BrokenPipeError, OSError) as exc:
                    raise WorkerCrashed(
                        index,
                        "pipe closed (unsupervised mode: see the worker's "
                        "stderr for its traceback)",
                    ) from exc
                continue
            try:
                replies.append(
                    self.supervisor.request(
                        index, proc, conn, command, expect=self._EXPECT[command[0]]
                    )
                )
            except WorkerFailure as failure:
                failures[index] = failure
        return replies, failures

    def _send(self, index: int, command: tuple) -> None:
        """Fire-and-forget send to one worker (supervised when enabled)."""
        if self.supervisor is None:
            try:
                self._conns[index].send(command)
            except (BrokenPipeError, OSError) as exc:
                raise WorkerCrashed(
                    index,
                    "pipe closed (unsupervised mode: see the worker's "
                    "stderr for its traceback)",
                ) from exc
        else:
            self.supervisor.send(index, self._procs[index], self._conns[index], command)

    def _broadcast(self, command: tuple) -> None:
        failures: dict[int, WorkerFailure] = {}
        for index in range(self.shards):
            if index in self.lost_shards:
                continue
            try:
                self._send(index, command)
            except WorkerFailure as failure:
                if self.supervisor is None:
                    raise  # unsupervised mode reports, it does not fail over
                failures[index] = failure
        if failures:
            self._failover(failures)

    def _inject_faults(self) -> None:
        """Apply the fault injector's faults due at this epoch, if any."""
        if self.fault_injector is None:
            return
        alive = [i for i in range(self.shards) if i not in self.lost_shards]
        for kind, shard in self.fault_injector.take(self.epochs, alive):
            if kind == "kill":
                WorkerFaultInjector.kill_process(self._procs[shard])
            elif kind == "hang":
                self._conns[shard].send(("hang",))
            elif kind == "corrupt":
                self._conns[shard].send(("corrupt",))

    def _check_aborted(self) -> None:
        if self._aborted is not None:
            raise self._aborted

    def _failover(self, failures: dict[int, WorkerFailure]) -> None:
        """Transfer every peer of the lost shards through oracle fail_peer.

        The parent mirror applies the full chain (network down-marking,
        KadoP re-replication, recovery redeployment -- its handles must keep
        delivering); every surviving worker receives the same fail_peer
        sequence as a control broadcast.  A survivor dying *during* the
        broadcast simply joins the worklist.  When more than half the shards
        are gone the runtime aborts with FailoverImpossible instead.
        """
        system = self.system
        stats = system.network.stats
        queue = sorted(failures)
        self.lost_shards.update(queue)
        while queue:
            if 2 * len(self.lost_shards) > self.shards:
                self._aborted = FailoverImpossible(
                    sorted(self.lost_shards), self.shards
                )
                raise self._aborted
            shard = queue.pop(0)
            stats.worker_restarts += 1
            owned = [
                peer_id
                for peer_id in self.owned_by_shard[shard]
                if system.network.is_alive(peer_id)
            ]
            for peer_id in owned:
                self._mirror_fail_peer(peer_id)
                self.failed_over_peers.append(peer_id)
                stats.peers_failed_over += 1
                for other in range(self.shards):
                    if other in self.lost_shards:
                        continue
                    try:
                        self._send(other, ("ctrl", "fail_peer", (peer_id,)))
                    except WorkerFailure:
                        self.lost_shards.add(other)
                        queue.append(other)
        # the mirror's recovery redeploys scheduled control sends the parent
        # never executes (workers run the authoritative copies) and created
        # fresh, connected publishers; neutralise both
        system.network.scheduler.retain(lambda event: False)
        self._disconnect_mirror_publishers()

    def _mirror_fail_peer(self, peer_id: str) -> None:
        """The oracle fail_peer chain, applied to the parent mirror.

        Bypasses ``system.fail_peer`` deliberately: user-driven lifecycle
        churn stays frozen post-start (check_lifecycle), but failover *is*
        the runtime and must keep the mirror's recovery state truthful.
        """
        system = self.system
        if not system.network.fail_peer(peer_id, notify=True):
            return
        system.kadop.fail_peer(peer_id)
        system.recovery.handle_peer_failure(peer_id)

    def _disconnect_mirror_publishers(self) -> None:
        system = self.system
        for peer_id in system.peer_ids:
            database = system.peer(peer_id).manager.database
            for sub_id in database.subscription_ids:
                task = database.get(sub_id).task
                if task is not None and task.publisher is not None:
                    task.publisher.disconnect()

    def _harvest(self) -> None:
        """Pull result deltas from every worker into the parent's handles.

        Counts update the delivery valves (so ``handle.stats()`` stays
        truthful); shipped items are re-emitted on the parent's delivery
        streams, firing result buffers and ``on_result`` callbacks exactly
        like a local delivery would (the mirror's publishers were
        disconnected at start, so nothing is re-published).  A worker lost
        during harvest forfeits its uncollected deltas (crash semantics)
        and is failed over like any other loss.
        """
        system = self.system
        replies, failures = self._exchange(
            {
                index: ("collect",)
                for index in range(self.shards)
                if index not in self.lost_shards
            }
        )
        for _, rows, errs in replies:
            self._raise_on(errs)
            for manager_peer, sub_id, count, items in rows:
                database = system.peer(manager_peer).manager.database
                task = database.get(sub_id).task
                if task is None:
                    continue
                self.results_harvested += count
                if task.valve is not None:
                    task.valve.items_delivered += count
                if items and task.delivery is not None:
                    emit = task.delivery.emit
                    for data in items:
                        emit(decode_element(data))
        if failures:
            self._failover(failures)

    @staticmethod
    def _raise_on(errors: list[str]) -> None:
        if errors:
            raise ShardWorkerError(errors)


__all__ = ["ShardAssigner", "ShardOutboxes", "ShardedRuntime", "shard_of"]
