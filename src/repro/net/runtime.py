"""Execution runtimes: who drives the event scheduler, and where.

The simulator stack separates three concerns:

* :class:`~repro.net.scheduler.EventScheduler` -- the deterministic
  (time, sequence) event heap;
* :class:`~repro.net.simnet.SimNetwork` -- transport semantics (latency,
  faults, partitions, liveness) layered on one scheduler;
* a :class:`Runtime` -- *execution* semantics: how ``system.run()`` drains
  the scheduler(s), and how external drivers (workloads, chaos schedules)
  reach into the running system.

Two backends ship today:

* ``"single"`` (:class:`SingleProcessRuntime`, the default): everything in
  one process, one scheduler, byte-identical to the pre-runtime behaviour.
  Golden traces and chaos fingerprints are pinned against this backend.
* ``"sharded"`` (:class:`~repro.net.shard.ShardedRuntime`): the peer set is
  partitioned across forked worker processes, one scheduler shard per
  worker, cross-shard messages batched at shard boundaries.

The interface is deliberately transport-shaped -- ``run``, ``tick``,
``control``, ``drive``, ``shutdown`` -- so a third backend that replaces the
simulated transport with real asyncio sockets can slot in behind the same
facade (each peer's scheduler becomes an event loop, ``drive`` becomes an
RPC, ``control`` becomes an admin API).

The runtime operates on the *system* facade (duck-typed: ``network``,
``peer()``, ``tick`` internals) rather than importing the monitor layer, so
``net`` stays below ``monitor`` in the module layering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.p2pm_peer import P2PMSystem

#: The runtime backends ``P2PMSystem(runtime=...)`` accepts.
RUNTIMES = ("single", "sharded")


def apply_control(network: Any, op: str, args: tuple) -> Any:
    """Apply a control operation to one network instance.

    Shared by every backend: the single-process runtime applies it to the
    only network there is; the sharded runtime applies it to the parent's
    mirror (keeping ``active_partitions`` bookkeeping queryable) *and*
    broadcasts it so every worker applies it to its own shard.
    """
    if op == "partition":
        name, groups = args
        return network.partition(name, *groups)
    if op == "heal":
        return network.heal(args[0])
    if op == "faults":
        return network.set_fault_model(args[0])
    raise ValueError(f"unknown control op {op!r}")


class RuntimeError_(RuntimeError):
    """A runtime refused an operation its backend cannot support."""


class Runtime:
    """Base class of execution backends (see module docstring)."""

    #: backend name, matching the ``P2PMSystem(runtime=...)`` argument
    name = "abstract"

    def __init__(self, system: "P2PMSystem") -> None:
        self.system = system
        self.started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Transition from construction to execution.

        Deployment (peer creation, subscription submission) happens before
        ``start()``; the single-process backend makes this a no-op, the
        sharded backend forks its workers here.
        """

    def shutdown(self) -> None:
        """Release backend resources (worker processes, pipes).  Idempotent."""

    # -- execution ---------------------------------------------------------

    def run(self, max_steps: int | None = None) -> int:
        """Deliver pending events; returns how many were delivered."""
        raise NotImplementedError

    def tick(self) -> None:
        """One control round (heartbeats, retransmissions, compile counters)."""
        raise NotImplementedError

    # -- external drivers --------------------------------------------------

    def control(self, op: str, *args: Any) -> Any:
        """Apply a network-level control operation (``partition``, ``heal``,
        ``faults``) wherever the network state lives."""
        raise NotImplementedError

    def drive(self, peer_id: str, function: str, method: str, args: tuple) -> Any:
        """Invoke ``method(*args)`` on the alerter hosting ``function`` at
        ``peer_id``, in whichever process owns that peer's state.

        Returns the method's result on backends that execute synchronously,
        ``None`` on backends that enqueue the call.  Returns ``False`` when
        the peer hosts no such alerter.
        """
        raise NotImplementedError

    # -- capability guards -------------------------------------------------

    def check_mutable(self, verb: str) -> None:
        """Raise when deployment mutation (``verb``) is not allowed now."""

    def check_lifecycle(self, verb: str) -> None:
        """Raise when peer lifecycle churn (fail/revive) is not allowed now."""

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Backend counters (``{}`` for the single-process backend)."""
        return {}


class SingleProcessRuntime(Runtime):
    """Today's deterministic default: one process, one scheduler.

    Every method is a thin delegation to the network / system internals the
    facade called directly before the runtime abstraction existed, so the
    behaviour -- and with it every pinned golden trace -- is unchanged.
    """

    name = "single"

    def start(self) -> None:
        self.started = True

    def run(self, max_steps: int | None = None) -> int:
        return self.system.network.run(max_steps)

    def tick(self) -> None:
        self.system._local_tick()

    def control(self, op: str, *args: Any) -> Any:
        return apply_control(self.system.network, op, args)

    def drive(self, peer_id: str, function: str, method: str, args: tuple) -> Any:
        alerter = self.system.peer(peer_id).alerter(function)
        if alerter is None:
            return False
        return getattr(alerter, method)(*args)


def create_runtime(
    name: str,
    system: "P2PMSystem",
    shards: int | None = None,
    assigner: Any = None,
    supervise: bool = True,
    supervisor_config: Any = None,
) -> Runtime:
    """Instantiate the runtime backend ``name`` for ``system``.

    ``supervise``/``supervisor_config`` configure the sharded backend's
    worker supervision and failover layer (see :mod:`repro.net.supervisor`);
    the single-process backend ignores them.
    """
    if name == "single":
        return SingleProcessRuntime(system)
    if name == "sharded":
        from repro.net.shard import ShardedRuntime

        return ShardedRuntime(
            system,
            shards=shards or 2,
            assigner=assigner,
            supervise=supervise,
            supervisor_config=supervisor_config,
        )
    raise ValueError(f"runtime must be one of {RUNTIMES}, got {name!r}")


__all__ = [
    "RUNTIMES",
    "Runtime",
    "SingleProcessRuntime",
    "apply_control",
    "create_runtime",
]
