"""Fault models for the simulated network.

The paper's setting is a volatile P2P network: peers join, leave and fail
while subscriptions stay alive.  A :class:`FaultModel` describes how the
network misbehaves *per message*; the :class:`~repro.net.simnet.SimNetwork`
consults it at delivery-scheduling time, drawing from its runtime RNG so
that a run is fully reproducible given the same seed.

Fault dimensions:

* **loss** -- a message is silently dropped in transit;
* **duplication** -- a message is delivered more than once (the channel
  layer deduplicates via per-subscriber sequence numbers, so operators
  still see exactly-once);
* **jitter** -- extra, uniformly drawn latency per delivered copy, which
  reorders messages between different links;
* **bandwidth** -- transmission delay proportional to payload size, so
  bulky items arrive later than small control messages.

Named network *partitions* are not part of the per-message model: they are
link-level state managed by :meth:`SimNetwork.partition` /
:meth:`SimNetwork.heal`.  Partitioned messages are held, not lost, and are
rescheduled at heal time -- modelling retransmission by a reliable
transport across a temporary split.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class FaultModel:
    """Per-message fault behaviour applied when a delivery is scheduled.

    Parameters
    ----------
    loss_rate:
        Probability that a message is dropped in transit.
    duplication_rate:
        Probability that a message is delivered twice instead of once.
    jitter:
        Maximum extra latency per delivered copy, drawn uniformly from
        ``[0, jitter]``.  Non-zero jitter reorders messages.
    bandwidth:
        Simulated link bandwidth in payload-weight units per simulated
        time unit; each copy is additionally delayed by ``size / bandwidth``.
        ``None`` means infinite bandwidth.
    """

    loss_rate: float = 0.0
    duplication_rate: float = 0.0
    jitter: float = 0.0
    bandwidth: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        if not 0.0 <= self.duplication_rate <= 1.0:
            raise ValueError("duplication_rate must be in [0, 1]")
        if self.jitter < 0.0:
            raise ValueError("jitter must be non-negative")
        if self.bandwidth is not None and self.bandwidth <= 0.0:
            raise ValueError("bandwidth must be positive")

    def delivery_delays(self, size: int, rng: random.Random) -> list[float] | None:
        """Plan the fate of one message of ``size`` payload-weight units.

        Returns ``None`` when the message is lost, otherwise one extra-latency
        value per delivered copy (one entry normally, two when duplicated).
        Draws happen in a fixed order -- loss, duplication, then jitter per
        copy -- so a fault schedule replayed with the same RNG state yields
        the same plan.
        """
        if self.loss_rate and rng.random() < self.loss_rate:
            return None
        copies = 1
        if self.duplication_rate and rng.random() < self.duplication_rate:
            copies = 2
        transmission = size / self.bandwidth if self.bandwidth else 0.0
        delays: list[float] = []
        for _ in range(copies):
            extra = rng.random() * self.jitter if self.jitter else 0.0
            delays.append(transmission + extra)
        return delays


#: A model with no faults at all: every message arrives exactly once.
PERFECT = FaultModel()
