"""Wire encoding of simulator messages for cross-process shard boundaries.

The sharded runtime (:mod:`repro.net.shard`) moves messages between worker
processes over :mod:`multiprocessing` pipes.  Pickling
:class:`~repro.xmlmodel.tree.Element` instances directly would drag each
item's ``_parent`` back-chain -- and with it whole ancestor trees -- across
the boundary, so payloads are flattened to plain nested tuples first:
``(tag, attrib-or-None, text, children-or-None)``.

Channel fan-out deliberately shares one payload Element across every
subscriber of an item (see PR 4's batched fan-out), so a boundary batch
encodes each distinct payload **once** and references it by index from every
message that carries it.  Decoding restores the sharing: subscribers in the
receiving shard see one payload object per item, exactly like same-process
subscribers do.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.simnet import Message

#: A flattened Element: (tag, attrib or None, text, children or None).
WireElement = tuple[str, dict | None, str | None, list | None]

#: A flattened Message referencing a payload by batch index:
#: (source, destination, kind, payload_index, size, sent_at, deliver_at).
WireMessage = tuple[str, str, str, int, int, float, float]


def encode_element(element: Element) -> WireElement:
    """Flatten an Element tree to nested tuples (no parent links, no caches)."""
    children = element.children
    return (
        element.tag,
        element.attrib or None,
        element.text,
        [encode_element(child) for child in children] if children else None,
    )


def decode_element(data: WireElement) -> Element:
    """Rebuild an Element tree from :func:`encode_element` output."""
    tag, attrib, text, children = data
    return Element.fast_new(
        tag,
        dict(attrib) if attrib else {},
        [decode_element(child) for child in children] if children else [],
        text=text,
    )


def encode_batch(messages: list["Message"]) -> tuple[list[WireElement], list[WireMessage]]:
    """Encode a boundary batch, sharing each distinct payload once.

    Payload identity is object identity (``id``), which is exactly the
    sharing the channel layer produces: one Element per published item, many
    messages pointing at it.  The id-keyed memo is only valid while the
    messages (and with them the payloads) are referenced, which holds for
    the duration of this call.
    """
    memo: dict[int, int] = {}
    payloads: list[WireElement] = []
    rows: list[WireMessage] = []
    for message in messages:
        payload = message.payload
        index = memo.get(id(payload))
        if index is None:
            index = len(payloads)
            memo[id(payload)] = index
            payloads.append(encode_element(payload))
        rows.append(
            (
                message.source,
                message.destination,
                message.kind,
                index,
                message.size,
                message.sent_at,
                message.deliver_at,
            )
        )
    return payloads, rows


def decode_batch(
    batch: tuple[list[WireElement], list[WireMessage]],
) -> list["Message"]:
    """Decode a boundary batch, restoring payload sharing within the batch."""
    from repro.net.simnet import Message

    wire_payloads, rows = batch
    payloads = [decode_element(data) for data in wire_payloads]
    return [
        Message(source, destination, kind, payloads[index], size, sent_at, deliver_at)
        for source, destination, kind, index, size, sent_at, deliver_at in rows
    ]


__all__ = [
    "WireElement",
    "WireMessage",
    "encode_element",
    "decode_element",
    "encode_batch",
    "decode_batch",
]
