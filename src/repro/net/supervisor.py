"""Parent-side supervision of shard worker processes.

PR8's sharded runtime assumed its own substrate never fails: a worker that
is SIGKILLed, OOM-killed or stuck in a busy loop left the parent blocked in
``conn.recv()`` forever, stalling the lock-step epoch protocol and taking
every subscription on the worker's peers down with it.  This module closes
that failure domain:

* :class:`ShardSupervisor` bounds every request/reply worker turn with a
  deadline and a liveness check (process exit code, pipe EOF, reply-shape
  validation) and classifies confirmed losses into the typed errors of
  :mod:`repro.net.errors` -- :class:`~repro.net.errors.WorkerCrashed`,
  :class:`~repro.net.errors.WorkerHung` (the straggler is killed, so a hang
  never wedges shutdown either) and
  :class:`~repro.net.errors.WorkerPoisoned` (a malformed reply means the
  worker's state cannot be trusted; it is killed too).
* :class:`WorkerFaultInjector` schedules deterministic worker-level faults
  (kill / hang / corrupt at a chosen epoch) so chaos scenarios and tests can
  reproduce real process failures byte-for-byte: the same seed and schedule
  always kill the same worker at the same epoch.

The supervisor only *detects and classifies*; the failover itself (oracle
``fail_peer`` per owned peer, recovery redeployment, shard-map
reintegration) lives in :class:`~repro.net.shard.ShardedRuntime`, next to
the epoch protocol it amends.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass
from typing import Any

from repro.net.errors import (
    WorkerCrashed,
    WorkerFailure,
    WorkerHung,
    WorkerPoisoned,
)

#: reply tag expected for each request op, with the tuple arity it must have
REPLY_SHAPES: dict[str, int] = {"out": 4, "results": 3, "pong": 2}


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables of the worker supervision layer.

    ``turn_timeout`` bounds one request/reply worker turn (a full shard
    drain at the far end); the default is generous because a missed deadline
    is treated as a worker loss, not a retry.  ``poll_interval`` is the
    granularity at which the supervisor interleaves pipe polling with
    process liveness checks while waiting.
    """

    turn_timeout: float = 30.0
    poll_interval: float = 0.05
    #: ping every worker right after the fork, so a worker that dies during
    #: startup is reported as a typed error before the first epoch
    startup_ping: bool = True


class ShardSupervisor:
    """Deadline-bounded, liveness-checked request/reply turns with workers."""

    def __init__(self, config: SupervisorConfig | None = None) -> None:
        self.config = config or SupervisorConfig()
        #: shard index -> the classified failure that lost it
        self.lost: dict[int, WorkerFailure] = {}

    # -- the supervised protocol -------------------------------------------

    def send(self, shard: int, proc: Any, conn: Any, command: tuple) -> None:
        """Send one command; a broken pipe is a confirmed crash."""
        try:
            conn.send(command)
        except (BrokenPipeError, OSError) as exc:
            raise self._mark(WorkerCrashed(shard, self._exit_detail(proc))) from exc

    def request(
        self, shard: int, proc: Any, conn: Any, command: tuple, expect: str
    ) -> tuple:
        """One full supervised turn: send, deadline-recv, validate shape."""
        self.send(shard, proc, conn, command)
        reply = self._recv(shard, proc, conn)
        arity = REPLY_SHAPES[expect]
        if (
            not isinstance(reply, tuple)
            or not reply
            or reply[0] != expect
            or len(reply) != arity
        ):
            self._kill(proc)  # the worker is off-protocol: state untrusted
            raise self._mark(
                WorkerPoisoned(
                    shard,
                    f"expected a {expect!r}/{arity} reply, got {reply!r:.200}",
                )
            )
        return reply

    def heartbeat(self, shard: int, proc: Any, conn: Any) -> None:
        """One ping/pong turn confirming the worker is alive and serving."""
        self.request(shard, proc, conn, ("ping",), expect="pong")

    # -- internals ----------------------------------------------------------

    def _recv(self, shard: int, proc: Any, conn: Any) -> Any:
        deadline = time.monotonic() + self.config.turn_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # still alive but silent past the deadline: a hang.  Kill it
                # so the straggler cannot wedge shutdown or wake up later
                # with a stale view of the shard map.
                self._kill(proc)
                raise self._mark(
                    WorkerHung(
                        shard,
                        f"no reply within {self.config.turn_timeout:.1f}s",
                    )
                )
            try:
                if conn.poll(min(self.config.poll_interval, remaining)):
                    return conn.recv()
            except (EOFError, OSError) as exc:
                raise self._mark(
                    WorkerCrashed(shard, self._exit_detail(proc))
                ) from exc
            if not proc.is_alive():
                # the process exited between polls; drain any reply it
                # managed to send before dying, then declare the crash
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                raise self._mark(WorkerCrashed(shard, self._exit_detail(proc)))

    def _mark(self, failure: WorkerFailure) -> WorkerFailure:
        self.lost.setdefault(failure.shard, failure)
        return failure

    @staticmethod
    def _exit_detail(proc: Any) -> str:
        code = proc.exitcode
        if code is None:
            return "pipe closed while the process was still running"
        if code < 0:
            try:
                name = signal.Signals(-code).name
            except ValueError:  # pragma: no cover - unknown signal number
                name = f"signal {-code}"
            return f"process killed by {name}"
        return f"process exited with code {code}"

    @staticmethod
    def _kill(proc: Any) -> None:
        if proc.is_alive():  # pragma: no branch - racing the process exit
            proc.kill()
            proc.join(timeout=5)


class WorkerFaultInjector:
    """Deterministic worker-level fault injection.

    Faults are scheduled against the runtime's epoch counter (every
    ``system.run()`` while started is one epoch) and applied by
    :meth:`~repro.net.shard.ShardedRuntime.run` before the first drain round
    of that epoch.  Kinds:

    * ``kill`` -- SIGKILL the worker process (a real crash, no cleanup);
    * ``hang`` -- make the worker sleep forever, so only the supervisor's
      deadline can notice;
    * ``corrupt`` -- make the worker's next drain reply malformed, so the
      supervisor's shape validation must catch it.

    When a fault names no shard, one is drawn from the alive shards with the
    injector's own seeded RNG -- same seed, same victim, every run.
    """

    KINDS = ("kill", "hang", "corrupt")

    def __init__(
        self,
        schedule: tuple[tuple[int, str, int | None], ...] = (),
        seed: int = 0,
    ) -> None:
        self._rng = random.Random(f"worker-faults:{seed}")
        #: epoch -> [(kind, shard-or-None), ...] still to apply
        self._pending: dict[int, list[tuple[str, int | None]]] = {}
        #: faults armed for whatever epoch starts next
        self._armed: list[tuple[str, int | None]] = []
        #: (epoch, kind, shard) faults actually applied, in order
        self.injected: list[tuple[int, str, int]] = []
        for epoch, kind, shard in schedule:
            self.at_epoch(epoch, kind, shard)

    def at_epoch(self, epoch: int, kind: str, shard: int | None = None) -> None:
        """Schedule ``kind`` against ``shard`` when the runtime enters ``epoch``."""
        if kind not in self.KINDS:
            raise ValueError(f"fault kind must be one of {self.KINDS}, got {kind!r}")
        self._pending.setdefault(epoch, []).append((kind, shard))

    def arm(self, kind: str, shard: int | None = None) -> None:
        """Schedule ``kind`` for the next epoch, whatever its number."""
        if kind not in self.KINDS:
            raise ValueError(f"fault kind must be one of {self.KINDS}, got {kind!r}")
        self._armed.append((kind, shard))

    def take(self, epoch: int, alive: list[int]) -> list[tuple[str, int]]:
        """The faults due at ``epoch``, with unspecified shards resolved."""
        due = self._pending.pop(epoch, [])
        if self._armed:
            due.extend(self._armed)
            self._armed = []
        resolved: list[tuple[str, int]] = []
        for kind, shard in due:
            if shard is None:
                if not alive:  # pragma: no cover - nothing left to break
                    continue
                shard = self._rng.choice(sorted(alive))
            if shard not in alive:
                continue  # already lost: the fault has nothing to do
            resolved.append((kind, shard))
            self.injected.append((epoch, kind, shard))
        return resolved

    @staticmethod
    def kill_process(proc: Any) -> None:
        """SIGKILL ``proc`` -- the real thing, not a cooperative stop."""
        if proc.pid is not None and proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=5)


__all__ = [
    "REPLY_SHAPES",
    "ShardSupervisor",
    "SupervisorConfig",
    "WorkerFaultInjector",
]
