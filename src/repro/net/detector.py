"""Heartbeat/lease failure detector: notice silent peer deaths.

The paper's volatile peers leave *silently* -- no real deployment gets the
synchronous ``fail_peer`` lifecycle callback the simulator can provide.
This module replaces that oracle with the standard distributed-systems
answer: every peer pings a small deterministic neighbor set each tick, and
sustained silence escalates ALIVE -> SUSPECT -> CONFIRMED with a bounded,
seed-deterministic detection latency.

* **Observation ring.** Peers are ordered by ``sha1(seed:peer_id)``; each
  peer pings its ``fanout`` successors.  Any delivered ping or ack counts
  as evidence of the *sender's* liveness, so a peer stays fresh as long as
  at least one of its targets (or observers) is reachable -- with
  ``fanout=3`` a false positive needs three simultaneous failures.
* **Suspicion debounce.** A peer is SUSPECT after ``suspect_after`` silent
  ticks and CONFIRMED only after ``confirm_after``; fresh evidence while
  merely SUSPECT drops it straight back to ALIVE, so transient jitter or a
  lost heartbeat never triggers a redeploy.
* **Sticky confirmation + rejoin handshake.** Once CONFIRMED, stray
  evidence (e.g. pings held behind a partition and released at heal) does
  *not* resurrect the peer: it must send an explicit ``hb.rejoin``, which
  flips it back to ALIVE and fires ``on_rejoin`` -- the detector-mode
  replacement for oracle revive notifications.  A live peer that was
  falsely confirmed (partitioned, not dead) keeps sending rejoins each
  tick, so it reintegrates as soon as connectivity returns.

The detector holds one merged global view (all observers' evidence in one
table) -- a simulation convenience standing in for per-peer views plus a
gossip layer, which keeps confirmations deterministic and cheap to assert.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.xmlmodel.tree import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.peer import Peer
    from repro.net.simnet import Message, SimNetwork

MSG_PING = "hb.ping"
MSG_ACK = "hb.ack"
MSG_REJOIN = "hb.rejoin"

ALIVE = "alive"
SUSPECT = "suspect"
CONFIRMED = "confirmed"


@dataclass(frozen=True)
class DetectorConfig:
    """Tuning knobs trading detection latency against false positives.

    ``suspect_after``/``confirm_after`` are measured in detector ticks of
    silence; the steady-state baseline is one tick (evidence from the
    previous tick's deliveries), so the defaults suspect after one fully
    silent tick and confirm after two -- a detection latency of two ticks
    past the kill, asserted in scenarios as ``detects-within:4``.
    """

    fanout: int = 3
    suspect_after: int = 2
    confirm_after: int = 3


class HeartbeatDetector:
    """Failure detection for every peer attached to one :class:`SimNetwork`."""

    def __init__(
        self,
        network: SimNetwork,
        seed: int = 0,
        config: DetectorConfig | None = None,
    ) -> None:
        self.network = network
        self.seed = seed
        self.config = config or DetectorConfig()
        self.tick_count = 0
        #: peers in sha1(seed:peer_id) order -- the observation ring
        self._ring: list[str] = []
        self._ring_keys: list[str] = []
        self._targets_cache: dict[str, list[str]] | None = None
        self._last_seen: dict[str, int] = {}
        self._status: dict[str, str] = {}
        #: (tick, peer) transition logs, in detection order
        self.suspicions: list[tuple[int, str]] = []
        self.confirmations: list[tuple[int, str]] = []
        self.rejoins: list[tuple[int, str]] = []
        self.on_confirm: Callable[[str], None] | None = None
        self.on_rejoin: Callable[[str], None] | None = None

    # -- membership -------------------------------------------------------- #

    def attach(self, peer: Peer) -> None:
        """Enroll ``peer``: register heartbeat handlers and join the ring."""
        peer_id = peer.peer_id
        if peer_id in self._status:
            raise ValueError(f"peer {peer_id!r} is already attached")
        peer.register_handler(MSG_PING, self._on_ping)
        peer.register_handler(MSG_ACK, self._on_ack)
        peer.register_handler(MSG_REJOIN, self._on_rejoin)
        key = hashlib.sha1(f"{self.seed}:{peer_id}".encode("utf-8")).hexdigest()
        index = bisect.bisect(self._ring_keys, key)
        self._ring_keys.insert(index, key)
        self._ring.insert(index, peer_id)
        self._status[peer_id] = ALIVE
        self._last_seen[peer_id] = self.tick_count
        self._targets_cache = None

    def targets(self, peer_id: str) -> list[str]:
        """The ring successors ``peer_id`` pings (its observation set)."""
        cache = self._targets_cache
        if cache is None:
            cache = self._targets_cache = {}
            ring = self._ring
            count = len(ring)
            fanout = min(self.config.fanout, count - 1)
            for index, pid in enumerate(ring):
                cache[pid] = [
                    ring[(index + step) % count] for step in range(1, fanout + 1)
                ]
        return cache[peer_id]

    # -- queries ----------------------------------------------------------- #

    def status(self, peer_id: str) -> str:
        return self._status[peer_id]

    def suspected_peers(self) -> list[str]:
        """Peers currently SUSPECT (deterministic ring order)."""
        return [pid for pid in self._ring if self._status[pid] == SUSPECT]

    def confirmed_peers(self) -> frozenset[str]:
        """Peers currently CONFIRMED dead."""
        return frozenset(
            pid for pid, status in self._status.items() if status == CONFIRMED
        )

    # -- the per-tick protocol --------------------------------------------- #

    def tick(self) -> None:
        """One detector round: evaluate accumulated evidence, then ping.

        Callers run the network between ticks (the chaos scenarios call
        ``system.tick()`` then ``system.run()``), so evidence evaluated
        here is everything delivered since the previous tick.
        """
        self.tick_count += 1
        self._evaluate()
        self._broadcast()

    def _evaluate(self) -> None:
        config = self.config
        for peer_id in self._ring:
            status = self._status[peer_id]
            if status == CONFIRMED:
                continue
            silence = self.tick_count - self._last_seen[peer_id]
            if status == ALIVE and silence >= config.suspect_after:
                status = self._status[peer_id] = SUSPECT
                self.suspicions.append((self.tick_count, peer_id))
            if status == SUSPECT and silence >= config.confirm_after:
                self._status[peer_id] = CONFIRMED
                self.confirmations.append((self.tick_count, peer_id))
                if self.on_confirm is not None:
                    self.on_confirm(peer_id)

    def _broadcast(self) -> None:
        network = self.network
        stats = network.stats
        payload = Element("hb", {"t": str(self.tick_count)})
        for peer_id in self._ring:
            if not network.is_alive(peer_id):
                continue
            if self._status[peer_id] == CONFIRMED:
                # falsely confirmed but actually alive (e.g. partitioned):
                # keep asking back in until an observer hears the rejoin
                for target in self.targets(peer_id):
                    network.send(peer_id, target, MSG_REJOIN, payload)
                continue
            for target in self.targets(peer_id):
                network.send(peer_id, target, MSG_PING, payload)
                stats.heartbeats_sent += 1

    # -- evidence handlers (run at the receiving peer) ---------------------- #

    def _saw(self, peer_id: str) -> None:
        if self._status.get(peer_id) == CONFIRMED:
            return  # sticky: only an explicit rejoin resurrects a confirmed peer
        self._last_seen[peer_id] = self.tick_count
        if self._status.get(peer_id) == SUSPECT:
            self._status[peer_id] = ALIVE

    def _on_ping(self, message: Message) -> None:
        self._saw(message.source)
        self.network.send(
            message.destination,
            message.source,
            MSG_ACK,
            Element("hb", {"t": str(self.tick_count)}),
        )

    def _on_ack(self, message: Message) -> None:
        self._saw(message.source)

    def _on_rejoin(self, message: Message) -> None:
        peer_id = message.source
        if self._status.get(peer_id) != CONFIRMED:
            self._saw(peer_id)  # duplicate rejoin copies are plain evidence
            return
        self._status[peer_id] = ALIVE
        self._last_seen[peer_id] = self.tick_count
        self.rejoins.append((self.tick_count, peer_id))
        if self.on_rejoin is not None:
            self.on_rejoin(peer_id)
