"""The event-scheduler core of the simulated network.

:class:`EventScheduler` owns the three pieces of state that make a run
deterministic -- the simulated clock, the event heap and the tie-breaking
sequence counter -- and nothing else.  :class:`~repro.net.simnet.SimNetwork`
layers the *transport* semantics (latency, faults, partitions, peer
liveness) on top; execution runtimes (:mod:`repro.net.runtime`) layer the
*drive* semantics (who pops the heap, and where) on top of both.

The split exists for the sharded runtime: each worker process runs one
scheduler over its own shard of the peer set, while the single-process
runtime runs exactly one.  Keeping the heap discipline in one class means
the two backends cannot diverge on ordering rules: events are always
processed in ``(time, sequence)`` order, and the sequence number is unique
per scheduler, so heap entries themselves are never compared.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

#: Heap entries are ``(fire_at, sequence, event)``; the event is opaque to
#: the scheduler (SimNetwork enqueues Messages and Timers).
Entry = tuple[float, int, object]


class EventScheduler:
    """A deterministic (time, sequence)-ordered event heap with a clock."""

    __slots__ = ("now", "queue", "sequence")

    def __init__(self) -> None:
        #: the simulated clock; advances monotonically as events are popped
        self.now = 0.0
        #: heap of (fire_at, sequence, event)
        self.queue: list[Entry] = []
        #: unique per-scheduler tie-breaker (also the total event count)
        self.sequence = 0

    def push(self, fire_at: float, event: object) -> None:
        """Enqueue ``event`` to fire at simulated time ``fire_at``."""
        self.sequence += 1
        heapq.heappush(self.queue, (fire_at, self.sequence, event))

    def __len__(self) -> int:
        return len(self.queue)

    def __bool__(self) -> bool:
        return bool(self.queue)

    def step(self, handler: Callable[[object], None]) -> bool:
        """Pop and dispatch the next event.  Returns False when idle.

        The clock advances to the event's fire time *before* the handler
        runs (never backwards: a same-time tie keeps the current clock).
        """
        if not self.queue:
            return False
        fire_at, _, event = heapq.heappop(self.queue)
        if fire_at > self.now:
            self.now = fire_at
        handler(event)
        return True

    def drain(self, handler: Callable[[object], None], max_steps: int | None = None) -> int:
        """Dispatch events until the heap empties (or ``max_steps`` is hit).

        Handlers may push further events; those are processed too.  Returns
        the number of events dispatched.  The loop stays flat -- one heap
        pop and one handler call per event -- because it brackets every hop
        of the delivery path.
        """
        queue = self.queue
        heappop = heapq.heappop
        dispatched = 0
        while queue:
            if max_steps is not None and dispatched >= max_steps:
                break
            fire_at, _, event = heappop(queue)
            if fire_at > self.now:
                self.now = fire_at
            handler(event)
            dispatched += 1
        return dispatched

    def retain(self, predicate: Callable[[object], bool]) -> int:
        """Keep only entries whose event satisfies ``predicate``.

        Used by sharded workers at startup: the forked heap contains every
        shard's pending events, and each worker keeps only its own.  Returns
        the number of entries dropped.  Existing (fire_at, sequence) keys
        are preserved, so the surviving events keep their relative order.
        """
        kept = [entry for entry in self.queue if predicate(entry[2])]
        dropped = len(self.queue) - len(kept)
        if dropped:
            heapq.heapify(kept)
            self.queue = kept
        return dropped

    def events(self) -> Iterable[object]:
        """The queued events, in arbitrary (heap) order."""
        return (entry[2] for entry in self.queue)


__all__ = ["EventScheduler"]
