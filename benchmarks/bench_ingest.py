#!/usr/bin/env python
"""Subscription-ingestion throughput: the control-plane fast path.

``BENCH_filter.json`` tracks the data plane's micro path and
``BENCH_e2e.json`` the macro delivery path; this suite governs the *control*
plane: what it costs to ingest N overlapping subscriptions (parse ->
compile -> reuse -> place -> deploy).  The Section 5 reuse algorithm is what
makes a community of millions of overlapping subscriptions affordable -- but
only if matching itself is cheap, which is what the indexed
StreamDefinitionDatabase lookups, the KadoP query cache, the interned plan
signatures and ``submit_many`` provide.

Two workload mixes, both heavily overlapping (identical subscriptions
repeat in groups):

* ``meteo`` -- the Figure 1 QoS subscription at five thresholds, cycled;
* ``edos``  -- per-mirror method filters over the Edos mirrors, six
  variants, cycled.

Each (mix, size) is measured twice: ``sequential`` (one ``submit()`` per
subscription) and ``batch`` (one ``submit_many()`` for the lot).  A
differential run against the XPath oracle (indexes and signature cache
disabled) refuses to write a summary whose reuse totals or deployed
operator counts disagree.

Usage::

    PYTHONPATH=src python benchmarks/bench_ingest.py            # full
    PYTHONPATH=src python benchmarks/bench_ingest.py --quick
    PYTHONPATH=src python benchmarks/bench_ingest.py --churn    # + churn soak
    PYTHONPATH=src python benchmarks/bench_ingest.py --quick \
        --output /tmp/bench_ingest.json --compare BENCH_ingest.json

``--compare`` matches rows by ``(mix, subscriptions, mode)`` and fails when
any matched row's ``subs_per_sec`` regressed beyond ``--tolerance``.  Only
rows with at least :data:`GATE_MIN_SUBSCRIPTIONS` subscriptions are gated:
the 100-subscription cells finish in tens of milliseconds, where ordinary
scheduler noise alone exceeds any sane tolerance (they stay in the summary
for trend-watching, ungated).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.monitor.p2pm_peer import P2PMSystem  # noqa: E402

#: Sequential-submit throughput measured immediately before the ingestion
#: fast path landed (PR 5, same machine/workloads).  Kept here so every
#: future BENCH_ingest.json carries its speedup-vs-pre-PR factor; the
#: acceptance criterion for PR 5 was >= 5x subscriptions/sec at the
#: 1k-subscription overlapping workload.
PRE_PR_BASELINE = {
    ("meteo", 100): 319.2,
    ("meteo", 1000): 109.3,
    ("meteo", 5000): 22.6,
    ("edos", 100): 819.4,
    ("edos", 1000): 387.3,
    ("edos", 5000): 135.9,
}

METEO_TEMPLATE = """
for $c1 in outCOM(<p>a.com</p> <p>b.com</p>),
    $c2 in inCOM(<p>meteo.com</p>)
let $duration := $c1.responseTimestamp - $c1.callTimestamp
where
    $duration > {threshold} and
    $c1.callMethod = "GetTemperature" and
    $c1.callee = "meteo.com" and
    $c1.callId = $c2.callId
return
    <incident type="slowAnswer">
        <client>{{$c1.caller}}</client>
        <tstamp>{{$c2.callTimestamp}}</tstamp>
    </incident>
by publish as channel "alertQoS";
"""

EDOS_TEMPLATE = """
for $c in outCOM(<p>{mirror}</p>)
where $c.callMethod = "{method}" and $c.callee = "{mirror}"
return <hit method="{method}"><peer>{{$c.caller}}</peer></hit>
by publish as channel "edos-{short}-{method}";
"""

EDOS_MIRRORS = [f"mirror{k}.edos.org" for k in range(3)]
EDOS_METHODS = ["GetPackage", "QueryIndex"]

#: Smallest row the regression gate compares: smaller cells measure well
#: under 100ms of wall time, where run-to-run variance swamps real
#: regressions and the gate would flake.
GATE_MIN_SUBSCRIPTIONS = 1000


def monitored_peers(mix: str) -> list[str]:
    if mix == "meteo":
        return ["a.com", "b.com", "meteo.com"]
    return list(EDOS_MIRRORS)


def make_texts(mix: str, n: int) -> list[str]:
    """N overlapping subscription texts: distinct variants cycled in order."""
    if mix == "meteo":
        thresholds = [5, 10, 15, 20, 25]
        return [
            METEO_TEMPLATE.format(threshold=thresholds[i % len(thresholds)])
            for i in range(n)
        ]
    texts = []
    for i in range(n):
        mirror = EDOS_MIRRORS[i % len(EDOS_MIRRORS)]
        method = EDOS_METHODS[(i // len(EDOS_MIRRORS)) % len(EDOS_METHODS)]
        texts.append(
            EDOS_TEMPLATE.format(mirror=mirror, method=method, short=f"m{i % 3}")
        )
    return texts


def build_system(mix: str, oracle: bool = False) -> tuple[P2PMSystem, object]:
    """A fresh system; ``oracle`` disables every ingestion fast path."""
    system = P2PMSystem(seed=3)
    for peer_id in monitored_peers(mix):
        system.add_peer(peer_id)
    monitor = system.add_peer("monitor.example")
    if oracle:
        system.stream_db.use_index = False
        system.reuse_cache = None  # type: ignore[assignment]
    return system, monitor


def ingest(
    mix: str, n: int, mode: str, oracle: bool = False
) -> tuple[P2PMSystem, list, float]:
    """Deploy ``n`` subscriptions; returns (system, handles, seconds)."""
    system, monitor = build_system(mix, oracle=oracle)
    texts = make_texts(mix, n)
    sub_ids = [f"{mix}-{i}" for i in range(n)]
    start = time.perf_counter()
    if mode == "batch":
        handles = monitor.subscribe_many(texts, sub_ids=sub_ids)
    else:
        handles = [
            monitor.subscribe(text, sub_id=sub_id)
            for text, sub_id in zip(texts, sub_ids)
        ]
    elapsed = time.perf_counter() - start
    return system, handles, elapsed


def ingest_stats(system: P2PMSystem, handles: list) -> dict:
    reused = sum(h.reuse_report.nodes_reused for h in handles if h.reuse_report)
    considered = sum(h.reuse_report.nodes_considered for h in handles if h.reuse_report)
    return {
        "nodes_reused": reused,
        "nodes_considered": considered,
        "reuse_hit_rate": round(reused / considered, 4) if considered else 0.0,
        "operators_deployed": sum(h.operator_count for h in handles),
        "signature_cache_hits": (
            system.reuse_cache.hits if system.reuse_cache is not None else 0
        ),
        "kadop_query_cache_hit_rate": round(
            system.kadop.query_cache_hits
            / max(system.kadop.query_cache_hits + system.kadop.query_cache_misses, 1),
            4,
        ),
    }


def measure(mix: str, n: int, mode: str) -> dict:
    system, handles, elapsed = ingest(mix, n, mode)
    row = {
        "experiment": "INGEST",
        "mix": mix,
        "subscriptions": n,
        "mode": mode,
        "seconds": round(elapsed, 6),
        "subs_per_sec": round(n / elapsed, 1),
    }
    row.update(ingest_stats(system, handles))
    return row


def oracle_check(mix: str, n: int) -> dict:
    """Fast path vs XPath oracle: reuse totals and operators must agree."""
    fast_system, fast_handles, _ = ingest(mix, n, "batch")
    oracle_system, oracle_handles, _ = ingest(mix, n, "sequential", oracle=True)
    fast = ingest_stats(fast_system, fast_handles)
    oracle = ingest_stats(oracle_system, oracle_handles)
    fast_ops = [h.operator_count for h in fast_handles]
    oracle_ops = [h.operator_count for h in oracle_handles]
    agree = (
        fast["nodes_reused"] == oracle["nodes_reused"]
        and fast["nodes_considered"] == oracle["nodes_considered"]
        and fast_ops == oracle_ops
    )
    problems = fast_system.stream_db.verify_index_coherence()
    return {
        "mix": mix,
        "subscriptions": n,
        "agrees_with_oracle": agree,
        "index_coherent": not problems,
        "fast": {key: fast[key] for key in ("nodes_reused", "nodes_considered")},
        "oracle": {key: oracle[key] for key in ("nodes_reused", "nodes_considered")},
        "operators_deployed": sum(fast_ops),
        "oracle_operators_deployed": sum(oracle_ops),
    }


def churn_soak(waves: int = 4, per_wave: int = 50) -> dict:
    """Ingest under peer churn and verify the reuse indexes stay coherent.

    Between waves one Edos mirror fails abruptly (the DHT re-replicates its
    keys, recovery redeploys spanning subscriptions) and later revives; each
    wave only subscribes against currently-alive mirrors.  After every
    transition the secondary indexes are checked against the document store.
    """
    system, monitor = build_system("edos")
    total = 0
    checks = 0
    for wave in range(waves):
        victim = EDOS_MIRRORS[wave % len(EDOS_MIRRORS)]
        alive = [m for m in EDOS_MIRRORS if m != victim]
        texts = []
        for i in range(per_wave):
            mirror = alive[i % len(alive)]
            method = EDOS_METHODS[i % len(EDOS_METHODS)]
            texts.append(
                EDOS_TEMPLATE.format(
                    mirror=mirror, method=method, short=f"w{wave}-{i % len(alive)}"
                )
            )
        system.fail_peer(victim)
        problems = system.stream_db.verify_index_coherence()
        if problems:
            raise AssertionError(f"index incoherent after failing {victim}: {problems}")
        checks += 1
        monitor.subscribe_many(texts, sub_ids=[f"churn-{wave}-{i}" for i in range(per_wave)])
        total += per_wave
        system.revive_peer(victim)
        problems = system.stream_db.verify_index_coherence()
        if problems:
            raise AssertionError(f"index incoherent after reviving {victim}: {problems}")
        checks += 1
    system.run()
    return {
        "waves": waves,
        "subscriptions": total,
        "coherence_checks": checks,
        "index_coherent": True,
    }


def run(quick: bool = False, churn: bool = False) -> dict:
    sizes = [100, 1000] if quick else [100, 1000, 5000]
    rows: list[dict] = []
    for mix in ("meteo", "edos"):
        for n in sizes:
            for mode in ("sequential", "batch"):
                rows.append(measure(mix, n, mode))
    oracle_n = 1000
    checks = [oracle_check(mix, oracle_n) for mix in ("meteo", "edos")]
    for check in checks:
        if not check["agrees_with_oracle"]:
            raise AssertionError(
                f"ingestion fast path disagrees with the XPath oracle: {check}"
            )
        if not check["index_coherent"]:
            raise AssertionError(f"secondary indexes incoherent: {check}")
    summary: dict = {
        "suite": "ingest",
        "quick": quick,
        "throughput": rows,
        "oracle_check": checks,
        "pre_pr_baseline": {
            f"{mix}_subs_per_sec_at_{n}": rate
            for (mix, n), rate in PRE_PR_BASELINE.items()
        },
    }
    row_1k = next(
        (r for r in rows if r["mix"] == "meteo" and r["subscriptions"] == 1000
         and r["mode"] == "batch"),
        None,
    )
    if row_1k is not None:
        summary["speedup_vs_pre_pr_meteo_1k"] = round(
            row_1k["subs_per_sec"] / PRE_PR_BASELINE[("meteo", 1000)], 2
        )
    if churn:
        summary["churn_soak"] = churn_soak()
    return summary


def compare_to_baseline(summary: dict, baseline: dict, tolerance: float) -> list[str]:
    """Rows matched by (mix, subscriptions, mode); regression when
    ``subs_per_sec`` falls more than ``tolerance`` below the baseline row.
    Rows below :data:`GATE_MIN_SUBSCRIPTIONS` are informational only."""
    problems: list[str] = []
    matched = 0
    baseline_rows = {
        (row["mix"], row["subscriptions"], row["mode"]): row
        for row in baseline.get("throughput", [])
    }
    for row in summary.get("throughput", []):
        if row["subscriptions"] < GATE_MIN_SUBSCRIPTIONS:
            continue
        reference = baseline_rows.get((row["mix"], row["subscriptions"], row["mode"]))
        if reference is None:
            continue
        matched += 1
        floor = reference["subs_per_sec"] * (1.0 - tolerance)
        if row["subs_per_sec"] < floor:
            problems.append(
                f"ingest[{row['mix']},subs={row['subscriptions']},{row['mode']}]: "
                f"{row['subs_per_sec']:.1f} subs/s is below {floor:.1f} "
                f"(baseline {reference['subs_per_sec']:.1f} "
                f"- {tolerance:.0%} tolerance)"
            )
    if matched == 0:
        problems.append(
            "no ingest rows matched the baseline: the regression gate compared "
            "nothing (size mismatch between run and baseline?)"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "--churn",
        action="store_true",
        help="also run the churn soak (index coherence under peer failures)",
    )
    parser.add_argument(
        "--output",
        "--out",
        dest="output",
        default=str(REPO_ROOT / "BENCH_ingest.json"),
        help="path of the JSON summary (default: repo-root BENCH_ingest.json)",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="baseline summary to gate against (e.g. BENCH_ingest.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.4,
        help="allowed fractional regression vs the baseline (default 0.4; "
        "end-to-end control-plane timings are noisy in CI)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(Path(args.compare).read_text()) if args.compare else None
    summary = run(quick=args.quick, churn=args.churn)
    summary["generated_unix"] = round(time.time(), 1)
    out_path = Path(args.output)
    out_path.write_text(json.dumps(summary, indent=2) + "\n")
    for row in summary["throughput"]:
        print(
            f"INGEST {row['mix']:<6} {row['mode']:<10} "
            f"subs={row['subscriptions']:>5}  {row['subs_per_sec']:>8.1f} subs/s  "
            f"reuse {row['reuse_hit_rate']:.1%}  ops={row['operators_deployed']}"
        )
    if "speedup_vs_pre_pr_meteo_1k" in summary:
        print(
            "speedup vs pre-PR baseline at 1k meteo subscriptions: "
            f"{summary['speedup_vs_pre_pr_meteo_1k']}x"
        )
    if "churn_soak" in summary:
        soak = summary["churn_soak"]
        print(
            f"churn soak: {soak['subscriptions']} subscriptions over "
            f"{soak['waves']} failure/revival waves, "
            f"{soak['coherence_checks']} coherence checks passed"
        )
    print(f"wrote {out_path}")
    if baseline is not None:
        problems = compare_to_baseline(summary, baseline, args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}")
            return 1
        print(f"regression gate: within {args.tolerance:.0%} of {args.compare}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
