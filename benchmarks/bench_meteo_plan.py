"""E1 -- the meteo QoS subscription end to end (Figure 1 / Figure 4).

The subscription of Figure 1 is compiled, optimised, placed and deployed
over a.com, b.com, meteo.com and the monitor peer; synthetic SOAP traffic
then flows through the distributed plan.  The benchmark measures end-to-end
monitoring throughput and checks the detected incidents against the
reference semantics computed directly from the generated calls.
"""

import pytest

from repro.algebra.plan import FILTER, JOIN, UNION
from repro.workloads import MeteoScenario

N_CALLS = 400


def test_meteo_deployment_shape(benchmark):
    def run():
        scenario = MeteoScenario(threshold=10.0, slow_fraction=0.15, seed=51)
        scenario.deploy()
        return scenario

    scenario = benchmark.pedantic(run, rounds=1, iterations=1)
    plan = scenario.task.plan
    # the Figure 4 shape: filters at the clients, union at a client, join at the server
    for node in plan.find_all(FILTER):
        assert node.placement in ("a.com", "b.com", "meteo.com")
    assert plan.find_all(UNION)[0].placement in ("a.com", "b.com")
    assert plan.find_all(JOIN)[0].placement == "meteo.com"
    benchmark.extra_info["experiment"] = "E1"
    benchmark.extra_info["peers_involved"] = ",".join(scenario.task.peers_involved())
    benchmark.extra_info["operators"] = scenario.task.operator_count
    benchmark.extra_info["channels"] = len(scenario.task.channels_created)


@pytest.mark.parametrize("slow_fraction", [0.05, 0.2])
def test_meteo_end_to_end_throughput(benchmark, slow_fraction):
    scenario = MeteoScenario(threshold=10.0, slow_fraction=slow_fraction, seed=52)
    scenario.deploy()

    def run():
        scenario.run_traffic(N_CALLS)
        return len(scenario.incidents())

    benchmark.pedantic(run, rounds=1, iterations=1)
    expected = scenario.expected_incidents(scenario.calls)
    assert len(scenario.incidents()) == len(expected)
    benchmark.extra_info["experiment"] = "E1"
    benchmark.extra_info["slow_fraction"] = slow_fraction
    benchmark.extra_info["calls"] = len(scenario.calls)
    benchmark.extra_info["incidents"] = len(scenario.incidents())
    benchmark.extra_info["network_bytes"] = scenario.system.network.stats.total_bytes
