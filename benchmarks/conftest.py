"""Shared workload builders for the benchmark suite.

Each benchmark module reproduces one experiment of EXPERIMENTS.md (E1-E11).
Benchmarks report wall-clock time through pytest-benchmark and attach the
paper-relevant counters (bytes transferred, service calls avoided, operators
deployed, DHT hops, ...) as ``benchmark.extra_info`` so that
``pytest benchmarks/ --benchmark-only`` regenerates every figure of the
reproduction in one run.
"""

from __future__ import annotations

import random

import pytest

from repro.filtering import ComputedCondition, FilterSubscription, SimpleCondition
from repro.workloads import SoapTrafficGenerator
from repro.xmlmodel import Element, XPath, parse_xml


def make_alert_items(n_items: int, seed: int = 0) -> list[Element]:
    """A stream of WS alerts shaped like the meteo workload's."""
    generator = SoapTrafficGenerator(
        clients=["a.com", "b.com", "c.com"],
        servers=["meteo.com", "tele.com"],
        methods=["GetTemperature", "GetHumidity", "GetForecast", "Invoice"],
        slow_fraction=0.2,
        seed=seed,
    )
    from repro.alerters.ws import soap_alert

    return [soap_alert(call, "in") for call in generator.run(n_items)]


def make_subscription_set(
    n_subscriptions: int, seed: int = 0, computed_fraction: float = 0.0
) -> list[FilterSubscription]:
    """Subscriptions mixing simple-only and simple+complex conditions.

    The condition pool is deliberately small so that conditions are shared
    between subscriptions, as the AES algorithm expects in practice.  When
    ``computed_fraction`` is nonzero, that fraction of subscriptions also
    carries a LET-derived :class:`ComputedCondition` over the call/response
    timestamps (a duration threshold), exercising the computed path.
    """
    rng = random.Random(seed)
    methods = ["GetTemperature", "GetHumidity", "GetForecast", "Invoice"]
    callees = ["meteo.com", "tele.com"]
    callers = ["a.com", "b.com", "c.com"]
    paths = ["//Body", "//Envelope/Body", "//param", "//error", "//Body//param"]
    subscriptions = []
    for index in range(n_subscriptions):
        simple = [SimpleCondition("callMethod", "=", rng.choice(methods))]
        if rng.random() < 0.7:
            simple.append(SimpleCondition("callee", "=", rng.choice(callees)))
        if rng.random() < 0.4:
            simple.append(SimpleCondition("caller", "=", rng.choice(callers)))
        complex_queries = []
        if rng.random() < 0.5:
            complex_queries.append(XPath.compile(rng.choice(paths)))
        computed = []
        # guard keeps the rng stream identical to the seed revision when the
        # fraction is 0.0, so seeded workloads stay comparable across PRs
        if computed_fraction and rng.random() < computed_fraction:
            # $duration := responseTimestamp - callTimestamp; $duration > T
            threshold = rng.choice([0.5, 1.0, 2.0, 5.0])
            computed.append(
                ComputedCondition(
                    ((1, "responseTimestamp"), (-1, "callTimestamp")),
                    rng.choice([">", "<="]),
                    threshold,
                )
            )
        subscriptions.append(
            FilterSubscription(f"q{index}", simple, complex_queries, computed)
        )
    return subscriptions


#: Tree patterns of the E2-TREE workload: every subscription carries at
#: least one, so the whole set exercises the tree-pattern fusion path.
TREE_PATHS = [
    "//Body",
    "//Envelope/Body",
    "//param",
    "//error",
    "//Body//param",
    "//Envelope//param",
    "/Envelope/Body/param",
]


def make_tree_subscription_set(
    n_subscriptions: int, seed: int = 0
) -> list[FilterSubscription]:
    """All-complex subscriptions: 1-2 simple conditions plus 1-2 tree patterns.

    Unlike :func:`make_subscription_set` (where half the subscriptions are
    simple-only), every subscription here carries complex queries -- the
    workload the plan compiler used to split back to the interpreter
    wholesale, and the one the tree-pattern fusion rows measure.
    """
    rng = random.Random(seed)
    methods = ["GetTemperature", "GetHumidity", "GetForecast", "Invoice"]
    callees = ["meteo.com", "tele.com"]
    subscriptions = []
    for index in range(n_subscriptions):
        simple = [SimpleCondition("callMethod", "=", rng.choice(methods))]
        if rng.random() < 0.5:
            simple.append(SimpleCondition("callee", "=", rng.choice(callees)))
        complex_queries = [XPath.compile(rng.choice(TREE_PATHS))]
        if rng.random() < 0.3:
            complex_queries.append(XPath.compile(rng.choice(TREE_PATHS)))
        subscriptions.append(
            FilterSubscription(f"t{index}", simple, complex_queries)
        )
    return subscriptions


@pytest.fixture(scope="module")
def alert_items() -> list[Element]:
    return make_alert_items(300, seed=42)
