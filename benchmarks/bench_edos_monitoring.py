"""E10 -- monitoring an Edos-like distribution network (Section 1).

The motivating Edos deployment gathers "statistics about the peers (e.g.,
number, efficiency, reliability) and the usage of the system (e.g., query
rate)".  Two P2PML subscriptions monitor the synthetic Edos network: one
counting failed downloads per mirror, one watching the query traffic; the
monitored numbers are checked against the workload's ground truth.
"""

import pytest

from repro.monitor import P2PMSystem
from repro.workloads import EdosNetwork

N_EVENTS = 600


def build_monitored_edos(n_mirrors=3, n_clients=25, seed=61):
    system = P2PMSystem(seed=seed)
    edos = EdosNetwork(n_mirrors=n_mirrors, n_clients=n_clients, failure_rate=0.15, seed=seed)
    for mirror in edos.mirrors:
        peer = system.add_peer(mirror)
        peer.add_alerter_hook(
            lambda alerter: edos.attach_alerter(alerter)
            if hasattr(alerter, "observe_call")
            else None
        )
    monitor = system.add_peer("monitor.edos.org")
    mirror_args = " ".join(f"<p>{mirror}</p>" for mirror in edos.mirrors)
    failures = monitor.subscribe(
        f"""
        for $c in inCOM({mirror_args})
        where $c.callMethod = "DownloadPackage" and $c.status = "fault"
        return <failure><mirror>{{$c.callee}}</mirror></failure>
        by publish as channel "edosFailures";
        """,
        sub_id="edos-failures",
        max_results=100_000,
    )
    queries = monitor.subscribe(
        f"""
        for $c in inCOM({mirror_args})
        where $c.callMethod = "QueryPackage"
        return <query><client>{{$c.caller}}</client></query>
        by publish as channel "edosQueries";
        """,
        sub_id="edos-queries",
        max_results=100_000,
    )
    system.run()
    return system, edos, failures, queries


def test_edos_statistics_match_ground_truth(benchmark):
    def run():
        system, edos, failures, queries = build_monitored_edos()
        edos.run(N_EVENTS)
        system.run()
        return system, edos, failures, queries

    system, edos, failures, queries = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = edos.reference_statistics()
    assert len(failures.results()) == reference["failed_downloads"]
    assert len(queries.results()) == reference["queries"]
    benchmark.extra_info["experiment"] = "E10"
    benchmark.extra_info["events"] = N_EVENTS
    benchmark.extra_info["failed_downloads"] = len(failures.results())
    benchmark.extra_info["queries_observed"] = len(queries.results())
    benchmark.extra_info["second_subscription_reused_nodes"] = (
        queries.reuse_report.nodes_reused if queries.reuse_report else 0
    )


@pytest.mark.parametrize("n_clients", [10, 50, 100])
def test_edos_monitoring_throughput(benchmark, n_clients):
    system, edos, failures, queries = build_monitored_edos(n_clients=n_clients, seed=62)

    def run():
        edos.run(300)
        system.run()
        return len(failures.results()) + len(queries.results())

    observed = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = "E10"
    benchmark.extra_info["clients"] = n_clients
    benchmark.extra_info["observations"] = observed
