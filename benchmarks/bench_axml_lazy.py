"""E6 -- lazy ActiveXML materialisation avoids external service calls (Section 4).

Claim: because simple conditions are checked before the tree-pattern stage,
items whose simple conditions fail never trigger the Web-service call that
would materialise their intensional content, whereas a naive filter has to
materialise every item.
"""

import pytest

from repro.filtering import FilterOperator, FilterSubscription, NaiveFilter, SimpleCondition
from repro.xmlmodel import Element, XPath, make_service_call, parse_xml
from repro.xmlmodel.axml import ServiceRegistry

N_ITEMS = 400
FAIL_FRACTIONS = [0.5, 0.9, 0.99]


def make_active_items(n_items: int, fail_fraction: float) -> list[Element]:
    """Items carrying an ``sc`` call; a fraction fails the simple conditions."""
    items = []
    for index in range(n_items):
        failing = index < n_items * fail_fraction
        item = Element(
            "root",
            {"attr1": "x", "attr2": "y" if failing else "z", "seq": str(index)},
        )
        item.append(make_service_call("storage", "site"))
        items.append(item)
    return items


def make_registry() -> ServiceRegistry:
    registry = ServiceRegistry()
    registry.register("storage", "site", lambda _: [parse_xml("<c><d>heavy payload</d></c>")])
    return registry


def paper_subscription() -> FilterSubscription:
    return FilterSubscription(
        "paper",
        simple=[SimpleCondition("attr1", "=", "x"), SimpleCondition("attr2", "=", "z")],
        complex_queries=[XPath.compile("//c/d")],
    )


@pytest.mark.parametrize("fail_fraction", FAIL_FRACTIONS)
@pytest.mark.parametrize("strategy", ["lazy", "eager"])
def test_service_calls_avoided(benchmark, strategy, fail_fraction):
    items = make_active_items(N_ITEMS, fail_fraction)
    registry = make_registry()
    if strategy == "lazy":
        filter_op = FilterOperator([paper_subscription()], service_registry=registry)
    else:
        filter_op = NaiveFilter([paper_subscription()], service_registry=registry)

    def run():
        matches = 0
        for item in items:
            matches += len(filter_op.process(item).matched)
        return matches

    matches = benchmark.pedantic(run, rounds=1, iterations=1)
    expected_matches = round(N_ITEMS * (1 - fail_fraction))
    assert matches == expected_matches
    if strategy == "lazy":
        assert registry.calls_performed == expected_matches
    else:
        assert registry.calls_performed == N_ITEMS
    benchmark.extra_info["experiment"] = "E6"
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["fail_fraction"] = fail_fraction
    benchmark.extra_info["service_calls"] = registry.calls_performed
    benchmark.extra_info["items"] = N_ITEMS
