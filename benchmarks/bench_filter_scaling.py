"""E2 -- two-stage Filter vs naive per-subscription evaluation (Section 4, Figure 5).

Claim: checking cheap simple conditions first and running tree-pattern
queries only for the active subscriptions sustains far higher item rates
than evaluating every subscription on every item, and the gap widens with
the number of subscriptions.
"""

import pytest

from repro.filtering import FilterOperator, NaiveFilter

from benchmarks.conftest import make_alert_items, make_subscription_set

SUBSCRIPTION_COUNTS = [10, 100, 1000, 3000]
N_ITEMS = 150


@pytest.mark.parametrize("n_subscriptions", SUBSCRIPTION_COUNTS)
def test_two_stage_filter_throughput(benchmark, n_subscriptions):
    items = make_alert_items(N_ITEMS, seed=1)
    filter_op = FilterOperator(make_subscription_set(n_subscriptions, seed=2))

    def run():
        matches = 0
        for item in items:
            matches += len(filter_op.process(item).matched)
        return matches

    matches = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["experiment"] = "E2"
    benchmark.extra_info["strategy"] = "two-stage"
    benchmark.extra_info["subscriptions"] = n_subscriptions
    benchmark.extra_info["items"] = N_ITEMS
    benchmark.extra_info["matches"] = matches


@pytest.mark.parametrize("n_subscriptions", SUBSCRIPTION_COUNTS)
def test_naive_filter_throughput(benchmark, n_subscriptions):
    items = make_alert_items(N_ITEMS, seed=1)
    naive = NaiveFilter(make_subscription_set(n_subscriptions, seed=2))

    def run():
        matches = 0
        for item in items:
            matches += len(naive.process(item).matched)
        return matches

    matches = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = "E2"
    benchmark.extra_info["strategy"] = "naive"
    benchmark.extra_info["subscriptions"] = n_subscriptions
    benchmark.extra_info["items"] = N_ITEMS
    benchmark.extra_info["matches"] = matches


def test_both_strategies_agree(benchmark):
    """Sanity check folded into the bench suite: identical verdicts."""
    items = make_alert_items(50, seed=3)
    subscriptions = make_subscription_set(200, seed=4)
    fast = FilterOperator(subscriptions)
    naive = NaiveFilter(subscriptions)

    def run():
        agreements = 0
        for item in items:
            if fast.process(item).matched == naive.process(item).matched:
                agreements += 1
        return agreements

    agreements = benchmark.pedantic(run, rounds=1, iterations=1)
    assert agreements == len(items)
