"""E2 -- two-stage Filter vs naive per-subscription evaluation (Section 4, Figure 5).

Claim: checking cheap simple conditions first and running tree-pattern
queries only for the active subscriptions sustains far higher item rates
than evaluating every subscription on every item, and the gap widens with
the number of subscriptions.

The E2-COMPILED rows measure the ``execution_mode="compiled"`` data path
over the same workload: one fused predicate closure per compilable
subscription sharing verdicts through the system-wide
:class:`MaterializedTable`.  The E2-TREE rows measure the tree-pattern
fusion path (:func:`compile_tree_predicate`) over an all-complex workload
-- the subscriptions the compiler used to split back to a per-subscription
interpreted FilterProcessor before fusion covered them.
"""

import pytest

from repro.algebra.expr import intern_signature
from repro.compile import MISS, MaterializedTable
from repro.filtering import FilterOperator, NaiveFilter
from repro.filtering.conditions import compile_simple_predicate
from repro.filtering.yfilter import compile_tree_predicate

from benchmarks.conftest import (
    make_alert_items,
    make_subscription_set,
    make_tree_subscription_set,
)

SUBSCRIPTION_COUNTS = [10, 100, 1000, 3000]
N_ITEMS = 150


def compiled_predicate_set(subscriptions):
    """(interned signature, fused predicate) per compilable subscription.

    Subscriptions carrying complex tree-pattern queries are skipped: the
    PlanCompiler leaves those on the interpreted FilterOperator, so the
    compiled rows measure exactly the set the fused path would own.
    """
    compiled = []
    for subscription in subscriptions:
        if subscription.complex_queries:
            continue
        detail = ";".join(
            f"{c.attribute}{c.op}{c.value!r}" for c in subscription.simple
        )
        computed = ";".join(repr(c) for c in subscription.computed)
        signature = intern_signature(f"filter:{detail}|{computed}")
        compiled.append((signature, compile_simple_predicate(subscription)))
    return compiled


def tree_predicate_set(subscriptions):
    """(interned signature, fused tree predicate) per subscription.

    The compiled-mode data path for complex subscriptions: simple and
    computed conditions inline, tree patterns through a private lazy-DFA.
    The signature mirrors the compiler's (simple detail + complex
    expressions), so identical subscriptions share one table entry.
    """
    compiled = []
    for subscription in subscriptions:
        detail = ";".join(
            f"{c.attribute}{c.op}{c.value!r}" for c in subscription.simple
        )
        complex_part = ";".join(q.expression for q in subscription.complex_queries)
        signature = intern_signature(f"filter:{detail}|{complex_part}")
        compiled.append((signature, compile_tree_predicate(subscription)))
    return compiled


def run_compiled_predicates(items, compiled, table):
    """Evaluate every fused predicate on every item, CSE'd through the table."""
    matches = 0
    for item in items:
        for signature, predicate in compiled:
            verdict = table.get(signature, item)
            if verdict is MISS:
                verdict = table.put(signature, item, predicate(item))
            if verdict:
                matches += 1
    return matches


@pytest.mark.parametrize("n_subscriptions", SUBSCRIPTION_COUNTS)
def test_two_stage_filter_throughput(benchmark, n_subscriptions):
    items = make_alert_items(N_ITEMS, seed=1)
    filter_op = FilterOperator(make_subscription_set(n_subscriptions, seed=2))

    def run():
        matches = 0
        for item in items:
            matches += len(filter_op.process(item).matched)
        return matches

    matches = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["experiment"] = "E2"
    benchmark.extra_info["strategy"] = "two-stage"
    benchmark.extra_info["subscriptions"] = n_subscriptions
    benchmark.extra_info["items"] = N_ITEMS
    benchmark.extra_info["matches"] = matches


@pytest.mark.parametrize("n_subscriptions", SUBSCRIPTION_COUNTS)
def test_naive_filter_throughput(benchmark, n_subscriptions):
    items = make_alert_items(N_ITEMS, seed=1)
    naive = NaiveFilter(make_subscription_set(n_subscriptions, seed=2))

    def run():
        matches = 0
        for item in items:
            matches += len(naive.process(item).matched)
        return matches

    matches = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = "E2"
    benchmark.extra_info["strategy"] = "naive"
    benchmark.extra_info["subscriptions"] = n_subscriptions
    benchmark.extra_info["items"] = N_ITEMS
    benchmark.extra_info["matches"] = matches


@pytest.mark.parametrize("n_subscriptions", SUBSCRIPTION_COUNTS)
def test_compiled_predicate_throughput(benchmark, n_subscriptions):
    items = make_alert_items(N_ITEMS, seed=1)
    subscriptions = make_subscription_set(n_subscriptions, seed=2)
    compiled = compiled_predicate_set(subscriptions)
    table = MaterializedTable()

    def run():
        return run_compiled_predicates(items, compiled, table)

    matches = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["experiment"] = "E2-COMPILED"
    benchmark.extra_info["strategy"] = "compiled"
    benchmark.extra_info["subscriptions"] = n_subscriptions
    benchmark.extra_info["compiled_subscriptions"] = len(compiled)
    benchmark.extra_info["items"] = N_ITEMS
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["cse_hits"] = table.hits


@pytest.mark.parametrize("n_subscriptions", SUBSCRIPTION_COUNTS)
def test_tree_pattern_fused_throughput(benchmark, n_subscriptions):
    items = make_alert_items(N_ITEMS, seed=1)
    subscriptions = make_tree_subscription_set(n_subscriptions, seed=2)
    compiled = tree_predicate_set(subscriptions)
    table = MaterializedTable()

    def run():
        return run_compiled_predicates(items, compiled, table)

    matches = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["experiment"] = "E2-TREE"
    benchmark.extra_info["strategy"] = "tree-fused"
    benchmark.extra_info["subscriptions"] = n_subscriptions
    benchmark.extra_info["items"] = N_ITEMS
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["cse_hits"] = table.hits


def test_tree_predicates_agree_with_extensional_oracle(benchmark):
    """Every fused tree predicate gives the reference extensional verdict."""
    items = make_alert_items(50, seed=3)
    subscriptions = make_tree_subscription_set(200, seed=4)
    compiled = [
        (subscription, compile_tree_predicate(subscription))
        for subscription in subscriptions
    ]

    def run():
        agreements = 0
        for item in items:
            for subscription, predicate in compiled:
                if predicate(item) == subscription.matches_extensionally(item):
                    agreements += 1
        return agreements

    agreements = benchmark.pedantic(run, rounds=1, iterations=1)
    assert agreements == len(items) * len(compiled)


def test_compiled_predicates_agree_with_naive(benchmark):
    """The fused closures give the naive oracle's verdict per subscription."""
    items = make_alert_items(50, seed=3)
    subscriptions = make_subscription_set(200, seed=4)
    compilable = [s for s in subscriptions if not s.complex_queries]
    naive = NaiveFilter(compilable)
    compiled = compiled_predicate_set(subscriptions)
    assert len(compiled) == len(compilable)
    table = MaterializedTable()

    def run():
        return run_compiled_predicates(items, compiled, table)

    matches = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = sum(len(naive.process(item).matched) for item in items)
    assert matches == expected


def test_both_strategies_agree(benchmark):
    """Sanity check folded into the bench suite: identical verdicts."""
    items = make_alert_items(50, seed=3)
    subscriptions = make_subscription_set(200, seed=4)
    fast = FilterOperator(subscriptions)
    naive = NaiveFilter(subscriptions)

    def run():
        agreements = 0
        for item in items:
            if fast.process(item).matched == naive.process(item).matched:
                agreements += 1
        return agreements

    agreements = benchmark.pedantic(run, rounds=1, iterations=1)
    assert agreements == len(items)
