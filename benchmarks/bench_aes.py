"""E3 -- AES hash-tree vs linear scan for conjunctions of simple conditions (Figure 6).

Claim ([15], used by Section 4): matching the simple-condition part of a
document against the subscription set through the hash-tree costs roughly
the same regardless of how many subscriptions are registered, whereas a
linear scan grows linearly.
"""

import pytest

from repro.filtering import AESFilter, ConditionRegistry, PreFilter

from benchmarks.conftest import make_alert_items, make_subscription_set

SUBSCRIPTION_COUNTS = [10, 100, 1000, 5000]
N_ITEMS = 200


def build(n_subscriptions):
    registry = ConditionRegistry()
    subscriptions = make_subscription_set(n_subscriptions, seed=7)
    aes = AESFilter(registry)
    aes.add_subscriptions(subscriptions)
    prefilter = PreFilter(registry)
    items = make_alert_items(N_ITEMS, seed=8)
    satisfied = [prefilter.satisfied_conditions(item) for item in items]
    return subscriptions, aes, satisfied


@pytest.mark.parametrize("n_subscriptions", SUBSCRIPTION_COUNTS)
def test_aes_hash_tree_matching(benchmark, n_subscriptions):
    subscriptions, aes, satisfied = build(n_subscriptions)

    def run():
        total = 0
        for conditions in satisfied:
            match = aes.match(conditions)
            total += len(match.simple_matches) + len(match.active_complex)
        return total

    total = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["experiment"] = "E3"
    benchmark.extra_info["strategy"] = "aes-hash-tree"
    benchmark.extra_info["subscriptions"] = n_subscriptions
    benchmark.extra_info["matches"] = total
    benchmark.extra_info["tree_nodes"] = aes.node_count()


@pytest.mark.parametrize("n_subscriptions", SUBSCRIPTION_COUNTS)
def test_linear_scan_matching(benchmark, n_subscriptions):
    subscriptions, aes, satisfied = build(n_subscriptions)
    registry = ConditionRegistry()
    # pre-compute each subscription's condition-id set for a fair linear scan
    id_sets = [set(sub.condition_ids(registry)) for sub in subscriptions]

    def run():
        total = 0
        for conditions in satisfied:
            satisfied_set = set(conditions)
            for ids in id_sets:
                if ids <= satisfied_set:
                    total += 1
        return total

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = "E3"
    benchmark.extra_info["strategy"] = "linear-scan"
    benchmark.extra_info["subscriptions"] = n_subscriptions
