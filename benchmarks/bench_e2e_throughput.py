#!/usr/bin/env python
"""End-to-end delivery throughput: publish -> channel fan-out -> SimNetwork -> proxy.

``BENCH_filter.json`` tracks the filter micro-path; this suite governs the
*macro* path the ROADMAP's "fast as the hardware allows" goal actually needs:
every published item fans out through a :class:`~repro.net.channel.Channel`,
is scheduled and delivered by :class:`~repro.net.simnet.SimNetwork`, lands in
a :class:`~repro.net.channel.RemoteChannelProxy` and reaches a per-subscriber
callback.  Measured at 100/1k/10k subscribers, with a perfect network and
with a fault model (loss + duplication + jitter + finite bandwidth), and
written to ``BENCH_e2e.json`` for the CI regression gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_e2e_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_e2e_throughput.py --quick
    PYTHONPATH=src python benchmarks/bench_e2e_throughput.py --quick \
        --output /tmp/bench_e2e.json --compare BENCH_e2e.json --tolerance 0.4

``--compare`` matches fan-out rows by ``(subscribers, faults)`` and pipeline
rows by ``(subscribers, mode)``, failing when any matched row's
``deliveries_per_sec`` regressed beyond ``--tolerance``.

The PIPELINE experiment deploys real subscriptions (filter -> restructure
plans over one alerter feed, reuse disabled so every subscription runs its
own plan) and measures publish -> deliver throughput in both execution
modes; the ``compile_speedup_*`` summary entries track the compiled-mode
gain the plan compiler is gated on.  The PIPELINE-JOIN experiment does the
same over self-join plans, exercising stateful-consumer fusion (the fused
filter pipeline pushing straight into the JOIN's probe closure).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.monitor import P2PMSystem  # noqa: E402
from repro.net.faults import FaultModel  # noqa: E402
from repro.net.peer import Peer  # noqa: E402
from repro.net.simnet import SimNetwork  # noqa: E402
from repro.workloads.chaos_feed import CHAOS_FUNCTION  # noqa: E402
from repro.xmlmodel.tree import Element  # noqa: E402

#: Macro-path throughput measured immediately before the delivery fast path
#: landed (PR 4, same machine/workload).  Kept here so every future
#: BENCH_e2e.json carries its speedup-vs-pre-PR factor; the acceptance
#: criterion for PR 4 was >= 5x deliveries/sec at 1,000 subscribers.
PRE_PR_BASELINE = {
    "deliveries_per_sec_at_1k_subscribers_perfect": 22175.9,
    "deliveries_per_sec_at_1k_subscribers_faulty": 20410.9,
    "deliveries_per_sec_at_10k_subscribers_perfect": 16736.2,
}

#: PIPELINE-JOIN throughput measured immediately before stateful-consumer
#: fusion landed (PR 9: compiled pipelines always emitted into the JOIN's
#: input stream; same machine/workload, best-of-rounds).  Keyed by
#: (subscribers, mode) so both modes carry their speedup-vs-pre-fusion.
PRE_FUSION_JOIN_BASELINE = {
    (300, "interpreted"): 23091.1,
    (300, "compiled"): 28457.9,
    (1000, "interpreted"): 20901.4,
    (1000, "compiled"): 24194.1,
}

#: The fault model used by every "faults" row: mild loss and duplication,
#: jitter that reorders, and a finite bandwidth so item size matters.
BENCH_FAULTS = FaultModel(
    loss_rate=0.02, duplication_rate=0.02, jitter=0.002, bandwidth=200_000
)


def make_item(n: int) -> Element:
    """One published item: a small alert tree (3 levels, ~200 weight units)."""
    return Element(
        "alert",
        {"type": "slowAnswer", "n": str(n)},
        [
            Element("call", {"callId": str(n % 97), "caller": "http://a.com"}),
            Element("body", {"sev": str(n % 5)}, text="x" * 80),
        ],
    )


def build_fanout(
    n_subscribers: int, seed: int, fault_model: FaultModel | None
) -> tuple[SimNetwork, object, list]:
    """A publisher peer, one channel, ``n_subscribers`` remote proxies."""
    network = SimNetwork(seed=seed)
    publisher = Peer("pub", network)
    stream = publisher.create_stream("s")
    publisher.publish_channel("ch", stream)
    proxies = []
    for i in range(n_subscribers):
        peer = Peer(f"sub{i}", network)
        proxies.append(peer.subscribe_channel("pub", "ch"))
    network.run()  # settle the subscribe handshakes on the perfect network
    network.set_fault_model(fault_model)
    counters = [0] * n_subscribers

    def make_sink(index: int):
        def sink(item: object) -> None:
            counters[index] += 1

        return sink

    for index, proxy in enumerate(proxies):
        proxy.subscribe(make_sink(index))
    return network, stream, counters


def measure(
    n_subscribers: int,
    n_items: int,
    rounds: int,
    fault_model: FaultModel | None,
    seed: int = 11,
) -> dict:
    """Best-of-``rounds`` publish+drain timing for one fan-out size."""
    network, stream, counters = build_fanout(n_subscribers, seed, fault_model)
    # keep (elapsed, delivered) as a pair so the reported rate's numerator
    # and denominator always come from the same round (delivery counts vary
    # round-to-round under a faulty network)
    best_elapsed = float("inf")
    best_delivered = 0
    next_n = 0
    for _ in range(rounds):
        items = [make_item(next_n + i) for i in range(n_items)]
        next_n += n_items
        before = sum(counters)
        start = time.perf_counter()
        stream.emit_many(items)
        network.run()
        elapsed = time.perf_counter() - start
        delivered = sum(counters) - before
        if delivered / elapsed > (
            best_delivered / best_elapsed if best_elapsed < float("inf") else 0.0
        ):
            best_elapsed = elapsed
            best_delivered = delivered
    return {
        "experiment": "E2E",
        "subscribers": n_subscribers,
        "items": n_items,
        "faults": fault_model is not None,
        "best_seconds": round(best_elapsed, 6),
        "items_per_sec": round(n_items / best_elapsed, 1),
        "deliveries_per_sec": round(best_delivered / best_elapsed, 1),
        "deliveries": best_delivered,
        "network_messages": network.stats.total_messages,
    }


def build_shard_workload(
    runtime: str,
    n_subscribers: int,
    shards: int,
    seed: int = 11,
    supervise: bool = True,
) -> tuple[P2PMSystem, list]:
    """One source peer feeding ``n_subscribers`` plans spread over ``shards``
    manager peers.

    The topology is identical for both runtimes -- ``shards`` manager peers,
    subscriptions round-robined across them, ``placement_mode="manager"`` so
    each pipeline runs whole at its manager -- and only the execution
    backend differs.  The shard assigner pins the source to shard 0 and
    manager ``m{j}`` to shard ``j % shards``, so under the sharded runtime
    every worker owns an equal slice of the plans and all cross-shard
    traffic is the source fan-out.  Plans run compiled: the SHARD rows
    measure how the *runtime* scales the fast path, not interpreter
    overhead.
    """

    def pin(peer_id: str, n: int) -> int | None:
        if peer_id == "src":
            return 0
        if peer_id.startswith("m"):
            return int(peer_id[1:]) % n
        return None

    kwargs: dict = {
        "seed": seed,
        "placement_mode": "manager",
        "execution_mode": "compiled",
    }
    if runtime == "sharded":
        kwargs.update(
            runtime="sharded",
            shards=shards,
            shard_assigner=pin,
            supervise=supervise,
        )
    system = P2PMSystem(**kwargs)
    source = system.add_peer("src")
    source.get_or_create_alerter(CHAOS_FUNCTION)
    managers = [system.add_peer(f"m{j}") for j in range(shards)]
    per_manager: list[tuple[list[str], list[str]]] = [([], []) for _ in range(shards)]
    for k in range(n_subscribers):
        texts, ids = per_manager[k % shards]
        texts.append(
            f'for $x in {CHAOS_FUNCTION}(<p>src</p>) '
            f'where $x.kind = "chaos" and $x.n >= {k % 10} '
            "return <seen><src>{$x.source}</src><n>{$x.n}</n></seen>"
        )
        ids.append(f"b{k}")
    handles = []
    for manager, (texts, ids) in zip(managers, per_manager):
        handles.extend(manager.subscribe_many(texts, sub_ids=ids, reuse=False))
    system.run()
    return system, handles


def measure_shard(
    runtime: str,
    n_subscribers: int,
    shards: int,
    n_items: int,
    rounds: int,
    seed: int = 11,
    supervise: bool = True,
) -> dict:
    """Best-of-``rounds`` emit+deliver timing for one runtime backend.

    Deliveries are read from the per-subscription delivery valves -- the
    single-process runtime increments them in-process, the sharded runtime
    through its result harvest -- so both backends are counted by the same
    instrument.

    The ``sharded`` row runs with the supervisor on (the production
    default), so the baseline compare gates supervision overhead for free.
    ``supervise=False`` produces a ``sharded-raw`` row -- a label the
    baseline never carries, so the gate skips it -- whose only job is the
    ``supervision_overhead_*`` summary entries.
    """
    system, handles = build_shard_workload(
        runtime, n_subscribers, shards, seed, supervise=supervise
    )
    system.start_runtime()
    valves = [handle.task.valve for handle in handles]

    def delivered_total() -> int:
        return sum(valve.items_delivered for valve in valves)

    best_elapsed = float("inf")
    best_delivered = 0
    next_n = 10  # past every threshold, so each item passes all filters
    try:
        # one unmeasured epoch: pays the copy-on-write page faults the fork
        # workers owe on first touch of the plan graph (and warms caches for
        # the single-process runtime), so the timed rounds measure steady state
        system.drive_alerter("src", CHAOS_FUNCTION, "emit_numbered", next_n)
        system.run()
        next_n += 1
        for _ in range(rounds):
            before = delivered_total()
            start = time.perf_counter()
            for i in range(n_items):
                system.drive_alerter(
                    "src", CHAOS_FUNCTION, "emit_numbered", next_n + i
                )
            system.run()
            elapsed = time.perf_counter() - start
            next_n += n_items
            delivered = delivered_total() - before
            if delivered / elapsed > (
                best_delivered / best_elapsed if best_elapsed < float("inf") else 0.0
            ):
                best_elapsed = elapsed
                best_delivered = delivered
    finally:
        system.shutdown()
    return {
        "experiment": "SHARD",
        "subscribers": n_subscribers,
        "runtime": runtime if supervise else f"{runtime}-raw",
        "supervised": supervise and runtime == "sharded",
        "shards": shards if runtime == "sharded" else 0,
        "items": n_items,
        "best_seconds": round(best_elapsed, 6),
        "items_per_sec": round(n_items / best_elapsed, 1),
        "deliveries_per_sec": round(best_delivered / best_elapsed, 1),
        "deliveries": best_delivered,
    }


def build_pipeline_workload(
    mode: str, n_subscribers: int, seed: int = 11
) -> tuple[P2PMSystem, object, list[int]]:
    """One peer, one alerter feed, ``n_subscribers`` deployed plan pipelines.

    Subscriptions share one restructure template (so compiled mode's CSE
    table gets system-wide hits) while cycling through 10 distinct filter
    thresholds (so the compiled-plan cache sees both hits and misses);
    ``reuse=False`` keeps every subscription on its own plan -- the benchmark
    measures per-plan execution, which is exactly what compilation fuses.
    """
    system = P2PMSystem(seed=seed, execution_mode=mode)
    peer = system.add_peer("bench")
    texts = [
        f'for $x in {CHAOS_FUNCTION}(<p>bench</p>) '
        f'where $x.kind = "chaos" and $x.n >= {k % 10} '
        "return <seen><src>{$x.source}</src><n>{$x.n}</n></seen>"
        for k in range(n_subscribers)
    ]
    handles = peer.subscribe_many(
        texts, sub_ids=[f"b{k}" for k in range(n_subscribers)], reuse=False
    )
    counters = [0] * n_subscribers

    def make_sink(index: int):
        def sink(item: object) -> None:
            counters[index] += 1

        return sink

    for index, handle in enumerate(handles):
        handle.on_result(make_sink(index))
    system.run()
    alerter = peer.alerter(CHAOS_FUNCTION)
    return system, alerter, counters


def measure_pipeline(
    mode: str, n_subscribers: int, n_items: int, rounds: int, seed: int = 11
) -> dict:
    """Best-of-``rounds`` publish+deliver timing through deployed plans."""
    system, alerter, counters = build_pipeline_workload(mode, n_subscribers, seed)
    best_elapsed = float("inf")
    best_delivered = 0
    next_n = 10  # past every threshold, so each item passes all filters
    for _ in range(rounds):
        before = sum(counters)
        start = time.perf_counter()
        for i in range(n_items):
            alerter.emit_numbered(next_n + i)
        system.run()
        elapsed = time.perf_counter() - start
        next_n += n_items
        delivered = sum(counters) - before
        if delivered / elapsed > (
            best_delivered / best_elapsed if best_elapsed < float("inf") else 0.0
        ):
            best_elapsed = elapsed
            best_delivered = delivered
    return {
        "experiment": "PIPELINE",
        "subscribers": n_subscribers,
        "mode": mode,
        "items": n_items,
        "best_seconds": round(best_elapsed, 6),
        "items_per_sec": round(n_items / best_elapsed, 1),
        "deliveries_per_sec": round(best_delivered / best_elapsed, 1),
        "deliveries": best_delivered,
    }


def build_join_workload(
    mode: str, n_subscribers: int, seed: int = 11
) -> tuple[P2PMSystem, object, list[int]]:
    """``n_subscribers`` self-join plans over one alerter feed.

    Each subscription joins the chaos feed with itself on the item number
    ($x.n = $y.n), so every emitted item probes a windowed JOIN whose build
    side just stored it.  In compiled mode the filter pipeline feeding the
    probe side fuses straight into the JOIN's probe closure (stateful-
    consumer fusion); ``reuse=False`` keeps each subscription on its own
    plan, as in the PIPELINE workload.
    """
    system = P2PMSystem(seed=seed, execution_mode=mode)
    peer = system.add_peer("bench")
    texts = [
        f'for $x in {CHAOS_FUNCTION}(<p>bench</p>), '
        f'$y in {CHAOS_FUNCTION}(<p>bench</p>) '
        f'where $x.kind = "chaos" and $x.n >= {k % 10} and $x.n = $y.n '
        "return <pair><n>{$x.n}</n><m>{$y.n}</m></pair>"
        for k in range(n_subscribers)
    ]
    handles = peer.subscribe_many(
        texts, sub_ids=[f"j{k}" for k in range(n_subscribers)], reuse=False
    )
    counters = [0] * n_subscribers

    def make_sink(index: int):
        def sink(item: object) -> None:
            counters[index] += 1

        return sink

    for index, handle in enumerate(handles):
        handle.on_result(make_sink(index))
    system.run()
    alerter = peer.alerter(CHAOS_FUNCTION)
    return system, alerter, counters


def measure_join(
    mode: str, n_subscribers: int, n_items: int, rounds: int, seed: int = 11
) -> dict:
    """Best-of-``rounds`` publish+deliver timing through JOIN plans."""
    system, alerter, counters = build_join_workload(mode, n_subscribers, seed)
    best_elapsed = float("inf")
    best_delivered = 0
    next_n = 10  # past every threshold, so each item passes all filters
    for _ in range(rounds):
        before = sum(counters)
        start = time.perf_counter()
        for i in range(n_items):
            alerter.emit_numbered(next_n + i)
        system.run()
        elapsed = time.perf_counter() - start
        next_n += n_items
        delivered = sum(counters) - before
        if delivered / elapsed > (
            best_delivered / best_elapsed if best_elapsed < float("inf") else 0.0
        ):
            best_elapsed = elapsed
            best_delivered = delivered
    row = {
        "experiment": "PIPELINE-JOIN",
        "subscribers": n_subscribers,
        "mode": mode,
        "items": n_items,
        "best_seconds": round(best_elapsed, 6),
        "items_per_sec": round(n_items / best_elapsed, 1),
        "deliveries_per_sec": round(best_delivered / best_elapsed, 1),
        "deliveries": best_delivered,
    }
    pre_fusion = PRE_FUSION_JOIN_BASELINE.get((n_subscribers, mode))
    if pre_fusion:
        row["pre_fusion_deliveries_per_sec"] = pre_fusion
        row["speedup_vs_pre_fusion"] = round(
            row["deliveries_per_sec"] / pre_fusion, 2
        )
    return row


#: Worker-process count for every sharded SHARD row (kept constant across
#: subscriber sizes so the 1k -> 10k scaling comparison is apples-to-apples).
#: Sized so the fleet is deliberately *under*-utilised at 1k subscribers:
#: the per-wake fixed cost (pipe turn + cache refill) dominates there and
#: amortises away at 10k, which is what makes the sharded deliveries/s curve
#: rise with subscriber count while the single-process curve stays flat.
SHARD_WORKERS = 40


def run(quick: bool = False, only: str | None = None) -> dict:
    if quick:
        matrix = [(100, 100, 2), (1000, 25, 2)]
        pipeline_matrix = [(1000, 25, 2)]
        join_matrix = [(300, 25, 2)]
        # same items-per-epoch as the full 1k row: the sharded rate is
        # sensitive to per-epoch amortisation, and the quick row gates
        # against the full baseline
        shard_matrix = [(1000, 10, 2)]
    else:
        matrix = [(100, 200, 3), (1000, 50, 3), (10000, 10, 1)]
        pipeline_matrix = [(1000, 50, 3), (10000, 10, 1)]
        join_matrix = [(300, 50, 3), (1000, 10, 2)]
        shard_matrix = [(1000, 10, 3), (10000, 10, 2)]
    rows: list[dict] = []
    if only in (None, "e2e"):
        for n_subscribers, n_items, rounds in matrix:
            for fault_model in (None, BENCH_FAULTS):
                rows.append(measure(n_subscribers, n_items, rounds, fault_model))
    if only in (None, "pipeline"):
        for n_subscribers, n_items, rounds in pipeline_matrix:
            for mode in ("interpreted", "compiled"):
                rows.append(measure_pipeline(mode, n_subscribers, n_items, rounds))
        for n_subscribers, n_items, rounds in join_matrix:
            for mode in ("interpreted", "compiled"):
                rows.append(measure_join(mode, n_subscribers, n_items, rounds))
    if only in (None, "shard"):
        for n_subscribers, n_items, rounds in shard_matrix:
            for runtime, supervise in (
                ("single", True),
                ("sharded", True),
                ("sharded", False),
            ):
                rows.append(
                    measure_shard(
                        runtime,
                        n_subscribers,
                        SHARD_WORKERS,
                        n_items,
                        rounds,
                        supervise=supervise,
                    )
                )
    summary: dict = {"suite": "e2e", "quick": quick, "throughput": rows}
    baseline = PRE_PR_BASELINE.get("deliveries_per_sec_at_1k_subscribers_perfect")
    row_1k = next(
        (r for r in rows if r["subscribers"] == 1000 and row_is_fanout(r) and not r["faults"]),
        None,
    )
    if baseline and row_1k is not None:
        summary["pre_pr_baseline"] = PRE_PR_BASELINE
        summary["speedup_vs_pre_pr_1k"] = round(
            row_1k["deliveries_per_sec"] / baseline, 2
        )
    for size in (1000, 10000):
        by_mode = {
            row["mode"]: row["deliveries_per_sec"]
            for row in rows
            if row.get("experiment") == "PIPELINE" and row["subscribers"] == size
        }
        if "interpreted" in by_mode and "compiled" in by_mode:
            summary[f"compile_speedup_{size // 1000}k"] = round(
                by_mode["compiled"] / by_mode["interpreted"], 2
            )
    for size in (300, 1000):
        by_mode = {
            row["mode"]: row["deliveries_per_sec"]
            for row in rows
            if row.get("experiment") == "PIPELINE-JOIN"
            and row["subscribers"] == size
        }
        if "interpreted" in by_mode and "compiled" in by_mode:
            summary[f"join_compile_speedup_{size}"] = round(
                by_mode["compiled"] / by_mode["interpreted"], 2
            )
    # the sharded runtime's reason to exist: deliveries/s must *rise* with
    # subscriber count (fixed epoch overhead amortised, per-worker working
    # set bounded) while the single-process rate falls
    for runtime in ("single", "sharded"):
        by_size = {
            row["subscribers"]: row["deliveries_per_sec"]
            for row in rows
            if row.get("experiment") == "SHARD" and row["runtime"] == runtime
        }
        if 1000 in by_size and 10000 in by_size:
            summary[f"shard_scaling_{runtime}"] = round(
                by_size[10000] / by_size[1000], 2
            )
    # what the per-epoch deadline guard costs: fraction of the raw
    # (unsupervised) sharded rate lost when the supervisor bounds every
    # worker turn -- kept near zero by polling only while a turn is open
    for n_subscribers, _items, _rounds in shard_matrix:
        rates = {
            row["runtime"]: row["deliveries_per_sec"]
            for row in rows
            if row.get("experiment") == "SHARD"
            and row["subscribers"] == n_subscribers
            and row["runtime"] in ("sharded", "sharded-raw")
        }
        if "sharded" in rates and "sharded-raw" in rates and rates["sharded-raw"]:
            summary[f"supervision_overhead_{n_subscribers // 1000}k"] = round(
                1.0 - rates["sharded"] / rates["sharded-raw"], 3
            )
    return summary


def row_is_fanout(row: dict) -> bool:
    return row.get("experiment", "E2E") == "E2E"


def _row_key(row: dict) -> tuple:
    """Fan-out rows match on (subscribers, faults); pipeline rows on
    (subscribers, execution mode); shard rows on (subscribers, runtime)."""
    if row_is_fanout(row):
        return ("E2E", row["subscribers"], row["faults"])
    if row.get("experiment") == "SHARD":
        return ("SHARD", row["subscribers"], row["runtime"])
    # PIPELINE and PIPELINE-JOIN rows both match on (experiment,
    # subscribers, mode) -- the experiment tag keeps them apart
    return (row.get("experiment", "PIPELINE"), row["subscribers"], row["mode"])


def compare_to_baseline(summary: dict, baseline: dict, tolerance: float) -> list[str]:
    """Rows matched by :func:`_row_key`; regression when deliveries/sec
    falls more than ``tolerance`` below the baseline row."""
    problems: list[str] = []
    matched = 0
    baseline_rows = {
        _row_key(row): row for row in baseline.get("throughput", [])
    }
    for row in summary.get("throughput", []):
        reference = baseline_rows.get(_row_key(row))
        if reference is None:
            continue
        matched += 1
        floor = reference["deliveries_per_sec"] * (1.0 - tolerance)
        if row["deliveries_per_sec"] < floor:
            if row_is_fanout(row):
                label = f"subs={row['subscribers']},faults={row['faults']}"
            elif row.get("experiment") == "SHARD":
                label = f"subs={row['subscribers']},runtime={row['runtime']}"
            else:
                label = f"subs={row['subscribers']},mode={row['mode']}"
            problems.append(
                f"e2e[{label}]: "
                f"{row['deliveries_per_sec']:.1f} deliveries/s is below "
                f"{floor:.1f} (baseline {reference['deliveries_per_sec']:.1f} "
                f"- {tolerance:.0%} tolerance)"
            )
    if matched == 0:
        problems.append(
            "no e2e rows matched the baseline: the regression gate compared "
            "nothing (size mismatch between run and baseline?)"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "--only",
        choices=("e2e", "pipeline", "shard"),
        default=None,
        help="run a single experiment family instead of the full suite",
    )
    parser.add_argument(
        "--output",
        "--out",
        dest="output",
        default=str(REPO_ROOT / "BENCH_e2e.json"),
        help="path of the JSON summary (default: repo-root BENCH_e2e.json)",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="baseline summary to gate against (e.g. BENCH_e2e.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.4,
        help="allowed fractional regression vs the baseline (default 0.4; "
        "macro timings are noisier than the filter micro-bench)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(Path(args.compare).read_text()) if args.compare else None
    summary = run(quick=args.quick, only=args.only)
    summary["generated_unix"] = round(time.time(), 1)
    out_path = Path(args.output)
    out_path.write_text(json.dumps(summary, indent=2) + "\n")
    for row in summary["throughput"]:
        if row_is_fanout(row):
            label = "faulty " if row["faults"] else "perfect"
            prefix = "E2E"
        elif row.get("experiment") == "SHARD":
            label = f"{row['runtime']:<11}"
            prefix = "SHRD"
        else:
            label = f"{row['mode']:<11}"
            prefix = "JOIN" if row.get("experiment") == "PIPELINE-JOIN" else "PIPE"
        print(
            f"{prefix} {label} subs={row['subscribers']:>6}  "
            f"{row['items_per_sec']:>9.1f} items/s  "
            f"{row['deliveries_per_sec']:>11.1f} deliveries/s"
        )
    if "speedup_vs_pre_pr_1k" in summary:
        print(f"speedup vs pre-PR baseline at 1k subscribers: "
              f"{summary['speedup_vs_pre_pr_1k']}x")
    for key in (
        "compile_speedup_1k",
        "compile_speedup_10k",
        "join_compile_speedup_300",
        "join_compile_speedup_1000",
        "shard_scaling_single",
        "shard_scaling_sharded",
    ):
        if key in summary:
            print(f"{key.replace('_', ' ')}: {summary[key]}x")
    for key in ("supervision_overhead_1k", "supervision_overhead_10k"):
        if key in summary:
            print(f"{key.replace('_', ' ')}: {summary[key]:.1%}")
    print(f"wrote {out_path}")
    if baseline is not None:
        problems = compare_to_baseline(summary, baseline, args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}")
            return 1
        print(f"regression gate: within {args.tolerance:.0%} of {args.compare}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
