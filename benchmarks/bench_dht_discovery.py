"""E8 -- DHT-backed Stream Definition Database scales with peers and streams (Section 5).

Claim: implementing the Stream Definition Database over a DHT (KadoP) avoids
a central bottleneck: discovery queries touch O(log n) peers, storage is
spread over all peers, and the cost stays flat as the number of declared
streams grows.
"""

import pytest

from repro.algebra.plan import ALERTER, PlanNode
from repro.dht import ChordRing
from repro.dht.kadop import KadopIndex
from repro.monitor import StreamDefinitionDatabase

PEER_COUNTS = [16, 64, 256, 1024]
N_STREAMS = 400
N_QUERIES = 60


def build_database(n_peers: int) -> StreamDefinitionDatabase:
    ring = ChordRing()
    for index in range(n_peers):
        ring.join(f"peer{index}.example")
    db = StreamDefinitionDatabase(KadopIndex(ring))
    for index in range(N_STREAMS):
        peer = f"peer{index % n_peers}.example"
        kind = "inCOM" if index % 2 == 0 else "outCOM"
        node = PlanNode(ALERTER, {"alerter": kind, "peer": peer, "var": "c"}, placement=peer)
        db.publish_node(node, peer, f"{kind}-{index}", [])
    return db


@pytest.mark.parametrize("n_peers", PEER_COUNTS)
def test_discovery_query_cost(benchmark, n_peers):
    db = build_database(n_peers)
    ring = db.index.ring

    def run():
        before_lookups, before_hops = ring.lookup_count, ring.total_hops
        results = 0
        for index in range(N_QUERIES):
            peer = f"peer{index % n_peers}.example"
            results += len(db.find_alerter_streams(peer, "inCOM"))
        return results, ring.lookup_count - before_lookups, ring.total_hops - before_hops

    results, lookups, hops = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["experiment"] = "E8"
    benchmark.extra_info["peers"] = n_peers
    benchmark.extra_info["streams"] = N_STREAMS
    benchmark.extra_info["hops_per_lookup"] = round(hops / max(lookups, 1), 2)
    benchmark.extra_info["results"] = results


@pytest.mark.parametrize("n_peers", [64])
def test_storage_is_spread_over_peers(benchmark, n_peers):
    def run():
        db = build_database(n_peers)
        return db.index.ring.storage_distribution()

    distribution = benchmark.pedantic(run, rounds=1, iterations=1)
    occupied = [count for count in distribution.values() if count > 0]
    benchmark.extra_info["experiment"] = "E8"
    benchmark.extra_info["peers"] = n_peers
    benchmark.extra_info["peers_storing_data"] = len(occupied)
    benchmark.extra_info["max_keys_on_one_peer"] = max(occupied)
    # no central bottleneck: many peers hold part of the database
    assert len(occupied) > n_peers // 4
