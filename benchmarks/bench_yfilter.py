"""E4 -- shared-prefix NFA (YFilterSigma) vs per-query path matching (Section 4, [8]).

Claim: grouping path queries by their common prefixes in one NFA makes the
per-document matching cost grow sub-linearly with the number of registered
queries, unlike evaluating every XPath separately.
"""

import random

import pytest

from repro.filtering import YFilterSigma
from repro.xmlmodel import XPath

from benchmarks.conftest import make_alert_items

QUERY_COUNTS = [10, 100, 500, 2000]
N_ITEMS = 100

_TAGS = ["Envelope", "Header", "Body", "param", "GetTemperature", "error", "alert"]


def make_path_queries(n_queries: int, seed: int = 0) -> list[str]:
    rng = random.Random(seed)
    queries = []
    for _ in range(n_queries):
        depth = rng.randint(1, 4)
        steps = [rng.choice(_TAGS) for _ in range(depth)]
        separators = [rng.choice(["/", "//"]) for _ in range(depth)]
        queries.append("".join(sep + step for sep, step in zip(separators, steps)))
    return queries


@pytest.mark.parametrize("n_queries", QUERY_COUNTS)
def test_yfilter_nfa_matching(benchmark, n_queries):
    items = make_alert_items(N_ITEMS, seed=5)
    nfa = YFilterSigma()
    for index, query in enumerate(make_path_queries(n_queries, seed=6)):
        nfa.add_query(f"q{index}", query)

    def run():
        total = 0
        for item in items:
            total += len(nfa.match(item))
        return total

    total = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["experiment"] = "E4"
    benchmark.extra_info["strategy"] = "yfilter-nfa"
    benchmark.extra_info["queries"] = n_queries
    benchmark.extra_info["matches"] = total
    benchmark.extra_info["nfa_states"] = nfa.states_created


@pytest.mark.parametrize("n_queries", QUERY_COUNTS)
def test_per_query_xpath_matching(benchmark, n_queries):
    items = make_alert_items(N_ITEMS, seed=5)
    compiled = [XPath.compile(query) for query in make_path_queries(n_queries, seed=6)]

    def run():
        total = 0
        for item in items:
            for query in compiled:
                if query.matches(item):
                    total += 1
        return total

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = "E4"
    benchmark.extra_info["strategy"] = "per-query-xpath"
    benchmark.extra_info["queries"] = n_queries
    benchmark.extra_info["matches"] = total


def test_nfa_and_xpath_agree(benchmark):
    items = make_alert_items(30, seed=9)
    queries = make_path_queries(100, seed=10)
    nfa = YFilterSigma()
    compiled = {}
    for index, query in enumerate(queries):
        nfa.add_query(f"q{index}", query)
        compiled[f"q{index}"] = XPath.compile(query)

    def run():
        mismatches = 0
        for item in items:
            nfa_result = nfa.match(item)
            xpath_result = {qid for qid, query in compiled.items() if query.matches(item)}
            if nfa_result != xpath_result:
                mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mismatches == 0
