"""E11 -- stateful Duplicate-removal and Group operators under load (Sections 2-3).

``return distinct`` relies on Duplicate-removal; the Edos statistics rely on
Group.  The benchmark measures their per-item cost on duplicate-heavy
streams and checks the aggregates they produce.
"""

import pytest

from repro.algebra import DuplicateRemovalOperator, GroupOperator, ValueRef
from repro.streams import Stream, collect
from repro.xmlmodel import Element

N_ITEMS = 5000
DISTINCT_VALUES = [10, 1000]


@pytest.mark.parametrize("distinct_values", DISTINCT_VALUES)
def test_duplicate_removal_throughput(benchmark, distinct_values):
    items = [
        Element("alert", {"peer": f"peer{i % distinct_values}", "kind": "download"})
        for i in range(N_ITEMS)
    ]

    def run():
        source = Stream("s")
        dedup = DuplicateRemovalOperator()
        dedup.connect(source)
        out = collect(dedup.output)
        for item in items:
            source.emit(item)
        return len(out)

    distinct = benchmark.pedantic(run, rounds=3, iterations=1)
    assert distinct == distinct_values
    benchmark.extra_info["experiment"] = "E11"
    benchmark.extra_info["operator"] = "duplicate-removal"
    benchmark.extra_info["items"] = N_ITEMS
    benchmark.extra_info["distinct"] = distinct


def test_group_operator_counts(benchmark):
    items = [
        Element("alert", {"mirror": f"mirror{i % 3}.edos.org"}) for i in range(N_ITEMS)
    ]

    def run():
        source = Stream("s")
        group = GroupOperator(key=ValueRef.attribute("item", "mirror"))
        group.connect(source)
        for item in items:
            source.emit(item)
        source.close()
        return group.counts

    counts = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sum(counts.values()) == N_ITEMS
    assert len(counts) == 3
    benchmark.extra_info["experiment"] = "E11"
    benchmark.extra_info["operator"] = "group"
    benchmark.extra_info["groups"] = len(counts)
