#!/usr/bin/env python
"""Run the filter benchmarks and write a ``BENCH_filter.json`` summary.

This is the perf-trajectory tracker for the compiled filtering engine: it
measures the two-stage :class:`FilterOperator` (experiment E2) and the
lazy-DFA :class:`YFilterSigma` (experiment E4) at several subscription /
query counts, records items/sec together with the engine's cache counters,
and writes one JSON document so successive PRs can be compared with a diff.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # full run
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick    # smoke run
    PYTHONPATH=src python benchmarks/run_benchmarks.py --output /tmp/bench.json
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick \
        --compare BENCH_filter.json --tolerance 0.25              # CI gate

The quick mode is wired into the test suite (see
``tests/test_filter_differential.py``) so a broken benchmark harness fails
CI rather than being discovered at release time.  A differential check
against the naive oracle runs in both modes; the script refuses to write a
summary whose numbers come from a filter that disagrees with the oracle.

``--compare`` is the CI regression gate: rows of the fresh run are matched
against the baseline summary by experiment and subscription/query count,
and the script exits non-zero when any matched row's ``items_per_sec``
regressed by more than ``--tolerance`` (a fraction; 0.25 = 25%).  Quick
mode measures the same 100/1000 sizes the committed baseline records, so
the gate works on the smoke run too.

``--suite e2e`` delegates to :mod:`benchmarks.bench_e2e_throughput` (the
macro publish->deliver->process path, ``BENCH_e2e.json``) and ``--suite
ingest`` to :mod:`benchmarks.bench_ingest` (the control-plane subscription
ingestion path, ``BENCH_ingest.json``), both with the same
``--quick/--output/--compare/--tolerance`` contract; the default suite
stays ``filter`` so existing CI invocations are unchanged.  ``--suite
shard`` runs only the e2e suite's SHARD rows -- the single-process vs
sharded runtime scaling comparison -- writing to a scratch file by default
so the committed full-suite baseline is never clobbered.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.conftest import make_alert_items, make_subscription_set  # noqa: E402
from benchmarks.bench_filter_scaling import (  # noqa: E402
    compiled_predicate_set,
    run_compiled_predicates,
    tree_predicate_set,
)
from benchmarks.conftest import make_tree_subscription_set  # noqa: E402
from benchmarks.bench_yfilter import make_path_queries  # noqa: E402
from repro.compile import MaterializedTable  # noqa: E402
from repro.filtering import FilterOperator, NaiveFilter, YFilterSigma  # noqa: E402


#: Seed-implementation throughput measured before the compiled engine landed
#: (PR 1, same machine/workloads: 150 alert items, warmless loop).  Kept here
#: so every future BENCH_filter.json carries its speedup-vs-seed factor.
SEED_BASELINE = {
    "filter_items_per_sec_at_10k_subscriptions": 650.4,
    "yfilter_items_per_sec_at_10k_queries": 4514.7,
}

#: E2-TREE throughput measured immediately before tree-pattern fusion landed
#: (PR 9 compiled mode split every complex-query FILTER back to one
#: interpreted per-subscription FilterProcessor; same machine, 150 alert
#: items, best-of-rounds).  The fused rows carry their speedup vs these.
TREE_PRE_FUSION_BASELINE = {100: 3836.9, 1000: 385.0, 10000: 29.8}


def _rate(count: int, seconds: float) -> float:
    return count / seconds if seconds > 0 else float("inf")


def _hit_rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


def bench_filter_scaling(
    subscription_counts: list[int], n_items: int, rounds: int
) -> list[dict]:
    """E2: two-stage FilterOperator throughput vs number of subscriptions."""
    results = []
    items = make_alert_items(n_items, seed=1)
    for n_subscriptions in subscription_counts:
        build_start = time.perf_counter()
        filter_op = FilterOperator(make_subscription_set(n_subscriptions, seed=2))
        build_seconds = time.perf_counter() - build_start
        filter_op.process_batch(items)  # warm the mask/DFA/value caches
        filter_op.reset_counters()
        best = float("inf")
        matches = 0
        for _ in range(rounds):
            start = time.perf_counter()
            matches = sum(len(r.matched) for r in filter_op.process_batch(items))
            best = min(best, time.perf_counter() - start)
        results.append(
            {
                "experiment": "E2",
                "subscriptions": n_subscriptions,
                "items": n_items,
                "build_seconds": round(build_seconds, 6),
                "best_seconds": round(best, 6),
                "items_per_sec": round(_rate(n_items, best), 1),
                "matches": matches,
                "mask_cache_hit_rate": round(
                    _hit_rate(filter_op.mask_cache_hits, filter_op.mask_cache_misses), 4
                ),
                "prefilter_cache_hit_rate": round(
                    _hit_rate(
                        filter_op.prefilter.cache_hits, filter_op.prefilter.cache_misses
                    ),
                    4,
                ),
                "aes_cache_hit_rate": round(
                    _hit_rate(
                        filter_op.aes.match_cache_hits, filter_op.aes.match_cache_misses
                    ),
                    4,
                ),
            }
        )
    return results


def bench_compiled_filter(
    subscription_counts: list[int], n_items: int, rounds: int
) -> list[dict]:
    """E2-COMPILED: fused predicate closures CSE'd through MaterializedTable.

    The ``execution_mode="compiled"`` data path over the E2 workload: one
    fused closure per compilable subscription (complex tree-pattern queries
    split to the interpreter, as in the PlanCompiler's fallback rules),
    sharing per-item verdicts across identical signatures.
    """
    results = []
    items = make_alert_items(n_items, seed=1)
    for n_subscriptions in subscription_counts:
        subscriptions = make_subscription_set(n_subscriptions, seed=2)
        build_start = time.perf_counter()
        compiled = compiled_predicate_set(subscriptions)
        build_seconds = time.perf_counter() - build_start
        table = MaterializedTable()
        run_compiled_predicates(items, compiled, table)  # warm + intern
        table.hits = table.misses = 0
        best = float("inf")
        matches = 0
        for _ in range(rounds):
            start = time.perf_counter()
            matches = run_compiled_predicates(items, compiled, table)
            best = min(best, time.perf_counter() - start)
        results.append(
            {
                "experiment": "E2-COMPILED",
                "subscriptions": n_subscriptions,
                "compiled_subscriptions": len(compiled),
                "items": n_items,
                "build_seconds": round(build_seconds, 6),
                "best_seconds": round(best, 6),
                "items_per_sec": round(_rate(n_items, best), 1),
                "matches": matches,
                "cse_hit_rate": round(_hit_rate(table.hits, table.misses), 4),
            }
        )
    return results


def bench_tree_filter(
    subscription_counts: list[int], n_items: int, rounds: int
) -> list[dict]:
    """E2-TREE: fused tree-pattern predicates over an all-complex workload.

    Every subscription carries tree-pattern queries, so before this fusion
    existed the whole set ran on interpreted per-subscription
    FilterProcessors -- the :data:`TREE_PRE_FUSION_BASELINE` numbers.
    """
    results = []
    items = make_alert_items(n_items, seed=1)
    for n_subscriptions in subscription_counts:
        subscriptions = make_tree_subscription_set(n_subscriptions, seed=2)
        build_start = time.perf_counter()
        compiled = tree_predicate_set(subscriptions)
        build_seconds = time.perf_counter() - build_start
        table = MaterializedTable()
        run_compiled_predicates(items, compiled, table)  # warm the lazy DFAs
        table.hits = table.misses = 0
        best = float("inf")
        matches = 0
        for _ in range(rounds):
            start = time.perf_counter()
            matches = run_compiled_predicates(items, compiled, table)
            best = min(best, time.perf_counter() - start)
        row = {
            "experiment": "E2-TREE",
            "subscriptions": n_subscriptions,
            "items": n_items,
            "build_seconds": round(build_seconds, 6),
            "best_seconds": round(best, 6),
            "items_per_sec": round(_rate(n_items, best), 1),
            "matches": matches,
            "cse_hit_rate": round(_hit_rate(table.hits, table.misses), 4),
        }
        pre_fusion = TREE_PRE_FUSION_BASELINE.get(n_subscriptions)
        if pre_fusion:
            row["pre_fusion_items_per_sec"] = pre_fusion
            row["speedup_vs_pre_fusion"] = round(row["items_per_sec"] / pre_fusion, 2)
        results.append(row)
    return results


def bench_yfilter(query_counts: list[int], n_items: int, rounds: int) -> list[dict]:
    """E4: lazy-DFA YFilterSigma throughput vs number of path queries."""
    results = []
    items = make_alert_items(n_items, seed=5)
    for n_queries in query_counts:
        nfa = YFilterSigma()
        build_start = time.perf_counter()
        for index, query in enumerate(make_path_queries(n_queries, seed=6)):
            nfa.add_query(f"q{index}", query)
        build_seconds = time.perf_counter() - build_start
        for item in items:  # warm the DFA
            nfa.match(item)
        nfa.reset_counters()
        best = float("inf")
        matches = 0
        for _ in range(rounds):
            start = time.perf_counter()
            matches = sum(len(nfa.match(item)) for item in items)
            best = min(best, time.perf_counter() - start)
        results.append(
            {
                "experiment": "E4",
                "queries": n_queries,
                "items": n_items,
                "build_seconds": round(build_seconds, 6),
                "best_seconds": round(best, 6),
                "items_per_sec": round(_rate(n_items, best), 1),
                "matches": matches,
                "nfa_states": nfa.states_created,
                "dfa_states": nfa.dfa_state_count,
                "dfa_cache_hit_rate": round(
                    _hit_rate(nfa.dfa_cache_hits, nfa.dfa_cache_misses), 4
                ),
            }
        )
    return results


def bench_naive_reference(n_subscriptions: int, n_items: int) -> dict:
    """Single naive-oracle measurement, for the E2 speedup denominator."""
    items = make_alert_items(n_items, seed=1)
    naive = NaiveFilter(make_subscription_set(n_subscriptions, seed=2))
    start = time.perf_counter()
    matches = sum(len(r.matched) for r in naive.process_batch(items))
    seconds = time.perf_counter() - start
    return {
        "experiment": "E2",
        "strategy": "naive",
        "subscriptions": n_subscriptions,
        "items": n_items,
        "best_seconds": round(seconds, 6),
        "items_per_sec": round(_rate(n_items, seconds), 1),
        "matches": matches,
    }


def differential_check(n_subscriptions: int, n_items: int) -> int:
    """Assert FilterOperator ≡ naive oracle; returns the items compared."""
    items = make_alert_items(n_items, seed=3)
    subscriptions = make_subscription_set(n_subscriptions, seed=4, computed_fraction=0.3)
    fast = FilterOperator(subscriptions)
    naive = NaiveFilter(subscriptions)
    for item in items:
        fast_matched = fast.process(item).matched
        naive_matched = naive.process(item).matched
        if fast_matched != naive_matched:
            raise AssertionError(
                f"filter/oracle disagreement on {item.attrib}: "
                f"{fast_matched[:5]}... vs {naive_matched[:5]}..."
            )
    return len(items)


def run(quick: bool = False) -> dict:
    if quick:
        # the two smallest sizes of the full run, so --compare can match
        # quick-mode rows against the committed full-run baseline; several
        # best-of rounds keep the gate's rate measurements out of noise range
        subscription_counts = [100, 1000]
        query_counts = [100, 1000]
        n_items, rounds = 60, 5
        naive_subs, naive_items = 200, 10
        diff_subs, diff_items = 150, 25
    else:
        subscription_counts = [100, 1000, 10000]
        query_counts = [100, 1000, 10000]
        n_items, rounds = 150, 3
        naive_subs, naive_items = 1000, 50
        diff_subs, diff_items = 500, 100

    checked = differential_check(diff_subs, diff_items)
    summary = {
        "suite": "filter",
        "quick": quick,
        "differential_check": {
            "subscriptions": diff_subs,
            "items": checked,
            "agrees_with_naive_oracle": True,
        },
        "filter_scaling": bench_filter_scaling(subscription_counts, n_items, rounds),
        "compiled_filter": bench_compiled_filter(subscription_counts, n_items, rounds),
        "tree_filter": bench_tree_filter(subscription_counts, n_items, rounds),
        "yfilter": bench_yfilter(query_counts, n_items, rounds),
        "naive_reference": bench_naive_reference(naive_subs, naive_items),
    }
    if not quick:
        summary["seed_baseline"] = SEED_BASELINE
        filter_10k = next(
            (r for r in summary["filter_scaling"] if r["subscriptions"] == 10000), None
        )
        yfilter_10k = next(
            (r for r in summary["yfilter"] if r["queries"] == 10000), None
        )
        if filter_10k is not None:
            summary["speedup_vs_seed_filter_10k"] = round(
                filter_10k["items_per_sec"]
                / SEED_BASELINE["filter_items_per_sec_at_10k_subscriptions"],
                2,
            )
        if yfilter_10k is not None:
            summary["speedup_vs_seed_yfilter_10k"] = round(
                yfilter_10k["items_per_sec"]
                / SEED_BASELINE["yfilter_items_per_sec_at_10k_queries"],
                2,
            )
    return summary


def compare_to_baseline(summary: dict, baseline: dict, tolerance: float) -> list[str]:
    """Match rows by experiment and size; return regression descriptions.

    A row regresses when its ``items_per_sec`` falls more than ``tolerance``
    (a fraction) below the baseline's matching row.  Rows present in only
    one summary are ignored; having *no* matching row at all is reported as
    an error so a misconfigured gate cannot silently pass.
    """
    problems: list[str] = []
    matched = 0
    for list_name, size_key in (
        ("filter_scaling", "subscriptions"),
        ("compiled_filter", "subscriptions"),
        ("tree_filter", "subscriptions"),
        ("yfilter", "queries"),
    ):
        baseline_rows = {
            row[size_key]: row for row in baseline.get(list_name, [])
        }
        for row in summary.get(list_name, []):
            reference = baseline_rows.get(row[size_key])
            if reference is None:
                continue
            matched += 1
            floor = reference["items_per_sec"] * (1.0 - tolerance)
            if row["items_per_sec"] < floor:
                problems.append(
                    f"{list_name}[{size_key}={row[size_key]}]: "
                    f"{row['items_per_sec']:.1f} items/s is below "
                    f"{floor:.1f} (baseline {reference['items_per_sec']:.1f} "
                    f"- {tolerance:.0%} tolerance)"
                )
    if matched == 0:
        problems.append(
            "no benchmark rows matched the baseline: the regression gate "
            "compared nothing (size mismatch between run and baseline?)"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=("filter", "e2e", "ingest", "shard"),
        default="filter",
        help="which benchmark suite to run (default: filter); 'shard' runs "
        "only the e2e suite's runtime-scaling rows (single vs sharded)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument(
        "--output",
        "--out",
        dest="output",
        default=None,
        help="path of the JSON summary (default: repo-root BENCH_filter.json "
        "or BENCH_e2e.json, per --suite)",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="baseline summary to gate against (e.g. BENCH_filter.json); "
        "exits 1 on any items_per_sec regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional regression vs the baseline "
        "(default 0.25 for the filter suite, 0.4 for e2e and ingest)",
    )
    args = parser.parse_args(argv)
    if args.suite in ("e2e", "ingest", "shard"):
        if args.suite in ("e2e", "shard"):
            from benchmarks.bench_e2e_throughput import main as suite_main
        else:
            from benchmarks.bench_ingest import main as suite_main

        forwarded: list[str] = []
        if args.suite == "shard":
            forwarded += ["--only", "shard"]
            if not args.output:
                # a shard-only summary must not clobber the committed
                # full-suite BENCH_e2e.json baseline
                import tempfile

                args.output = str(
                    Path(tempfile.gettempdir()) / "bench_e2e_shard.json"
                )
        if args.quick:
            forwarded.append("--quick")
        if args.output:
            forwarded += ["--output", args.output]
        if args.compare:
            forwarded += ["--compare", args.compare]
        if args.tolerance is not None:
            forwarded += ["--tolerance", str(args.tolerance)]
        return suite_main(forwarded)
    if args.output is None:
        args.output = str(REPO_ROOT / "BENCH_filter.json")
    if args.tolerance is None:
        args.tolerance = 0.25
    # read the baseline before any output is written: --output may point at
    # the baseline file itself, and a gate comparing a run to its own freshly
    # written summary could never fail
    baseline = json.loads(Path(args.compare).read_text()) if args.compare else None
    summary = run(quick=args.quick)
    summary["generated_unix"] = round(time.time(), 1)
    out_path = Path(args.output)
    out_path.write_text(json.dumps(summary, indent=2) + "\n")
    for row in summary["filter_scaling"]:
        print(
            f"E2 filter  subs={row['subscriptions']:>6}  "
            f"{row['items_per_sec']:>9.1f} items/s  "
            f"mask-cache {row['mask_cache_hit_rate']:.0%}"
        )
    for row in summary["compiled_filter"]:
        print(
            f"E2 compiled subs={row['subscriptions']:>6}  "
            f"{row['items_per_sec']:>9.1f} items/s  "
            f"cse {row['cse_hit_rate']:.0%}"
        )
    for row in summary["tree_filter"]:
        speedup = row.get("speedup_vs_pre_fusion")
        suffix = f"  {speedup:.1f}x pre-fusion" if speedup else ""
        print(
            f"E2 tree    subs={row['subscriptions']:>6}  "
            f"{row['items_per_sec']:>9.1f} items/s  "
            f"cse {row['cse_hit_rate']:.0%}{suffix}"
        )
    for row in summary["yfilter"]:
        print(
            f"E4 yfilter qrys={row['queries']:>6}  "
            f"{row['items_per_sec']:>9.1f} items/s  "
            f"dfa-cache {row['dfa_cache_hit_rate']:.0%}"
        )
    print(f"wrote {out_path}")
    if baseline is not None:
        problems = compare_to_baseline(summary, baseline, args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}")
            return 1
        print(f"regression gate: within {args.tolerance:.0%} of {args.compare}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
