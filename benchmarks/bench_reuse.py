"""E7 -- stream reuse reduces deployed operators and network traffic (Section 5, Figure 7).

Claim: when overlapping subscriptions arrive, detecting that existing streams
(including joined streams) already compute parts of the new plan saves CPU
(fewer operators) and network traffic, at the cost of a few Stream Definition
Database queries per subscription.
"""

import pytest

from repro.workloads import MeteoScenario

SUBSCRIPTION_COUNTS = [2, 10, 25]
N_CALLS = 150


def run_overlapping(n_subscriptions: int, reuse: bool):
    scenario = MeteoScenario(threshold=10.0, slow_fraction=0.2, seed=41)
    tasks = [scenario.deploy(reuse=reuse)]
    for index in range(1, n_subscriptions):
        tasks.append(
            scenario.monitor.subscribe(
                scenario.subscription_text(),
                sub_id=f"meteo-qos-{index}",
                reuse=reuse,
                max_results=10_000,
            )
        )
    scenario.system.run()
    deployment_messages = scenario.system.network.stats.total_messages
    scenario.system.network.stats.reset()
    scenario.run_traffic(N_CALLS)
    return scenario, tasks, deployment_messages


@pytest.mark.parametrize("n_subscriptions", SUBSCRIPTION_COUNTS)
@pytest.mark.parametrize("reuse", [True, False], ids=["reuse", "no-reuse"])
def test_overlapping_subscriptions(benchmark, n_subscriptions, reuse):
    def run():
        return run_overlapping(n_subscriptions, reuse)

    scenario, tasks, deployment_messages = benchmark.pedantic(run, rounds=1, iterations=1)
    # every subscription keeps producing the same incidents
    reference = len(tasks[0].results())
    assert reference > 0
    assert all(len(task.results()) == reference for task in tasks)

    total_operators = sum(task.operator_count for task in tasks)
    reused_nodes = sum(
        task.reuse_report.nodes_reused for task in tasks if task.reuse_report is not None
    )
    benchmark.extra_info["experiment"] = "E7"
    benchmark.extra_info["strategy"] = "reuse" if reuse else "no-reuse"
    benchmark.extra_info["subscriptions"] = n_subscriptions
    benchmark.extra_info["operators_deployed"] = total_operators
    benchmark.extra_info["nodes_reused"] = reused_nodes
    benchmark.extra_info["runtime_messages"] = scenario.system.network.stats.total_messages
    benchmark.extra_info["runtime_bytes"] = scenario.system.network.stats.total_bytes
    benchmark.extra_info["deployment_messages"] = deployment_messages


def test_reuse_saves_operators_and_traffic(benchmark):
    def run():
        _, with_reuse, _ = run_overlapping(10, True)
        _, without_reuse, _ = run_overlapping(10, False)
        return with_reuse, without_reuse

    with_reuse, without_reuse = benchmark.pedantic(run, rounds=1, iterations=1)
    ops_with = sum(task.operator_count for task in with_reuse)
    ops_without = sum(task.operator_count for task in without_reuse)
    assert ops_with < ops_without
    benchmark.extra_info["experiment"] = "E7"
    benchmark.extra_info["operators_with_reuse"] = ops_with
    benchmark.extra_info["operators_without_reuse"] = ops_without
    benchmark.extra_info["savings_factor"] = round(ops_without / max(ops_with, 1), 2)
