"""E9 -- the history index makes the stream Join cheap per item (Section 3.1).

Claim: "For each new tree t in one of the input streams, the history of the
other stream is searched ... An index over that history is used to speed up
the search."  We compare the indexed JoinOperator against an unindexed
variant that scans the whole history of the other side for every item.
"""

import pytest

from repro.algebra import JoinOperator, ValueRef, get_binding, make_tuple_item
from repro.algebra.operators import Operator
from repro.streams import Stream
from repro.xmlmodel import Element

HISTORY_SIZES = [100, 1000, 5000]


class UnindexedJoin(Operator):
    """Baseline join that scans the full opposite history per item."""

    name = "UnindexedJoin"
    stateless = False

    def __init__(self, left_var, right_var, predicate, output=None):
        super().__init__(output)
        self.left_var = left_var
        self.right_var = right_var
        self.predicate = predicate
        self._history = [[], []]

    def _key(self, side, item):
        var = self.left_var if side == 0 else self.right_var
        binding = get_binding(item, var)
        return tuple(
            (pair[side]).value(binding) for pair in self.predicate
        )

    def on_item(self, index, item):
        self._history[index].append(item)
        other = 1 - index
        key = self._key(index, item)
        for candidate in self._history[other]:
            if self._key(other, candidate) == key:
                left, right = (item, candidate) if index == 0 else (candidate, item)
                binding = get_binding(left, self.left_var)
                binding.update(get_binding(right, self.right_var))
                self.emit(make_tuple_item(binding))


def make_call_pairs(n_pairs):
    """Out-call / in-call alert pairs sharing callIds."""
    outs = [Element("alert", {"callId": str(i), "caller": "a.com"}) for i in range(n_pairs)]
    ins = [Element("alert", {"callId": str(i), "server": "meteo.com"}) for i in range(n_pairs)]
    return outs, ins


def run_join(join_operator, outs, ins):
    left, right = Stream("out"), Stream("in")
    join_operator.connect(left).connect(right)
    produced = []
    join_operator.output.subscribe(lambda item: produced.append(item))
    for item in outs:
        left.emit(item)
    for item in ins:
        right.emit(item)
    return len(produced)


@pytest.mark.parametrize("history", HISTORY_SIZES)
def test_indexed_join(benchmark, history):
    outs, ins = make_call_pairs(history)

    def run():
        join = JoinOperator(
            "c1", "c2",
            [(ValueRef.attribute("c1", "callId"), ValueRef.attribute("c2", "callId"))],
        )
        return run_join(join, outs, ins)

    matches = benchmark.pedantic(run, rounds=3, iterations=1)
    assert matches == history
    benchmark.extra_info["experiment"] = "E9"
    benchmark.extra_info["strategy"] = "indexed"
    benchmark.extra_info["history"] = history


@pytest.mark.parametrize("history", [size for size in HISTORY_SIZES if size <= 1000])
def test_unindexed_join(benchmark, history):
    outs, ins = make_call_pairs(history)

    def run():
        join = UnindexedJoin(
            "c1", "c2",
            [(ValueRef.attribute("c1", "callId"), ValueRef.attribute("c2", "callId"))],
        )
        return run_join(join, outs, ins)

    matches = benchmark.pedantic(run, rounds=1, iterations=1)
    assert matches == history
    benchmark.extra_info["experiment"] = "E9"
    benchmark.extra_info["strategy"] = "unindexed"
    benchmark.extra_info["history"] = history


def test_window_bounds_state(benchmark):
    """Future-work note of Section 7: bounding the stateful operators' storage."""
    outs, ins = make_call_pairs(2000)

    def run():
        join = JoinOperator(
            "c1", "c2",
            [(ValueRef.attribute("c1", "callId"), ValueRef.attribute("c2", "callId"))],
            window=100,
        )
        run_join(join, outs, ins)
        return join.history_size(0), join.history_size(1)

    left_size, right_size = benchmark.pedantic(run, rounds=1, iterations=1)
    assert left_size <= 100 and right_size <= 100
    benchmark.extra_info["experiment"] = "E9"
    benchmark.extra_info["strategy"] = "windowed"
    benchmark.extra_info["bounded_history"] = max(left_size, right_size)
