#!/usr/bin/env python
"""Benchmark recovery latency under peer churn.

For several source counts, deploys one chaos-feed subscription spanning all
sources, then repeatedly fails the peer currently hosting the plan's union
operator and revives it again, measuring:

* ``failover_ms`` -- wall-clock cost of ``fail_peer`` (ledger scan, orphan
  detection, teardown, replan, redeployment on survivors);
* ``restore_ms`` -- wall-clock cost of ``revive_peer`` (full-coverage
  redeployment);
* ``delivery_gap_ticks`` -- ticks with no delivery from surviving sources
  after a failure (0 means monitoring never skipped a beat);
* ``detection_latency_ticks`` -- in detector mode, ticks from the (silent)
  kill until the heartbeat detector confirms the death.  Oracle mode learns
  of the failure synchronously, so its detection latency is always 0.

Each size is measured twice -- once with the legacy failure oracle and once
with heartbeat failure detection -- so the cost of dropping the oracle
(silent kills, detection windows) is visible side by side.

Usage::

    PYTHONPATH=src python benchmarks/bench_churn.py            # full run
    PYTHONPATH=src python benchmarks/bench_churn.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_churn.py --out /tmp/churn.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.algebra.plan import UNION  # noqa: E402
from repro.monitor import P2PMSystem  # noqa: E402
from repro.workloads import ChaosFeedWorkload  # noqa: E402
from repro.workloads.chaos_feed import CHAOS_FUNCTION  # noqa: E402


def _union_host(handle) -> str:
    unions = handle.plan.find_all(UNION)
    assert unions and unions[0].placement
    return str(unions[0].placement)


def bench_churn(
    n_sources: int,
    churn_events: int,
    seed: int = 0,
    failure_mode: str = "oracle",
) -> dict:
    """One measurement: repeated fail/revive of the union-hosting peer."""
    system = P2PMSystem(seed=seed, failure_mode=failure_mode)
    sources = [f"s{i}" for i in range(n_sources)]
    for source in sources:
        system.add_peer(source)
    monitor = system.add_peer("monitor")
    peers = " ".join(f"<p>{source}</p>" for source in sources)
    handle = monitor.subscribe(
        f'for $x in {CHAOS_FUNCTION}({peers}) where $x.kind = "chaos" '
        "return <seen><src>{$x.source}</src><n>{$x.n}</n></seen>",
        sub_id="churn-bench",
    )
    system.run()

    received: list[tuple[str, int]] = []
    handle.on_result(
        lambda item: received.append((item.find("src").text, int(item.find("n").text)))
    )
    workload = ChaosFeedWorkload(sources)

    failover_ms: list[float] = []
    restore_ms: list[float] = []
    delivery_gaps: list[int] = []
    detection_latencies: list[int] = []
    detector = system.detector
    tick = 0
    # detector mode needs a few ticks for confirmation + redeploy before
    # delivery resumes; oracle redeploys synchronously inside fail_peer
    probe_budget = 10 if detector is not None else 5

    def run_ticks(count: int) -> None:
        nonlocal tick
        for _ in range(count):
            system.tick()  # heartbeats + retransmissions (no-op on oracle)
            system.run()
            workload.tick(system, tick)
            system.run()
            tick += 1

    run_ticks(3)  # warm-up traffic
    for _ in range(churn_events):
        victim = _union_host(handle)
        killed_at = detector.tick_count if detector is not None else 0
        start = time.perf_counter()
        system.fail_peer(victim)  # silent in detector mode
        failover_ms.append((time.perf_counter() - start) * 1000.0)
        system.run()

        # how many ticks pass before surviving sources deliver again?
        fail_tick = tick
        gap = probe_budget
        for probe in range(probe_budget):
            run_ticks(1)
            if any(n >= fail_tick for _, n in received):
                gap = probe
                break
        delivery_gaps.append(gap)
        if detector is not None:
            confirmed_at = max(
                t for t, peer in detector.confirmations if peer == victim
            )
            detection_latencies.append(confirmed_at - killed_at)

        start = time.perf_counter()
        system.revive_peer(victim)  # silent in detector mode: rejoin handshake
        restore_ms.append((time.perf_counter() - start) * 1000.0)
        system.run()
        run_ticks(3)

    return {
        "experiment": "churn",
        "failure_mode": failure_mode,
        "sources": n_sources,
        "churn_events": churn_events,
        "alerts_delivered": len(received),
        "duplicates": len(received) - len(set(received)),
        "failover_ms_median": round(statistics.median(failover_ms), 3),
        "failover_ms_max": round(max(failover_ms), 3),
        "restore_ms_median": round(statistics.median(restore_ms), 3),
        "restore_ms_max": round(max(restore_ms), 3),
        "delivery_gap_ticks_max": max(delivery_gaps),
        "detection_latency_ticks_median": (
            int(statistics.median(detection_latencies)) if detection_latencies else 0
        ),
        "detection_latency_ticks_max": (
            max(detection_latencies) if detection_latencies else 0
        ),
        "recoveries": system.recovery.recoveries,
        "final_status": handle.status,
    }


def run(quick: bool = False) -> dict:
    if quick:
        source_counts = [3]
        churn_events = 2
    else:
        source_counts = [3, 8, 16]
        churn_events = 10
    rows = [
        bench_churn(n, churn_events, failure_mode=mode)
        for n in source_counts
        for mode in ("oracle", "detector")
    ]
    return {"suite": "churn", "quick": quick, "results": rows}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI smoke runs")
    parser.add_argument("--out", default=None, help="optional path of a JSON summary")
    args = parser.parse_args(argv)
    summary = run(quick=args.quick)
    summary["generated_unix"] = round(time.time(), 1)
    for row in summary["results"]:
        print(
            f"churn sources={row['sources']:>3}  "
            f"mode {row['failure_mode']:<8}  "
            f"failover {row['failover_ms_median']:>7.2f} ms  "
            f"restore {row['restore_ms_median']:>7.2f} ms  "
            f"gap {row['delivery_gap_ticks_max']} ticks  "
            f"detect {row['detection_latency_ticks_max']} ticks  "
            f"dups {row['duplicates']}"
        )
        if row["duplicates"] or row["final_status"] != "deployed":
            print(f"  UNEXPECTED: {row}")
            return 1
    if args.out:
        Path(args.out).write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
