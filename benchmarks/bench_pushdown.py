"""E5 -- selection push-down saves communication (Sections 3.3-3.4, Figure 4).

Claim: placing filters next to the alerters ("the selections were pushed as
much as possible to the proximity of the sources to save on communications")
transfers far fewer bytes between peers than shipping every alert to the
join/monitor peer and filtering there.
"""

import pytest

from repro.workloads import MeteoScenario

N_CALLS = 300
SLOW_FRACTIONS = [0.05, 0.3]


def run_scenario(push_selections: bool, slow_fraction: float):
    scenario = MeteoScenario(threshold=10.0, slow_fraction=slow_fraction, seed=31)
    scenario.deploy(push_selections=push_selections, reuse=False)
    scenario.system.network.stats.reset()  # measure traffic, not deployment
    scenario.run_traffic(N_CALLS)
    stats = scenario.system.network.stats
    return scenario, stats


@pytest.mark.parametrize("slow_fraction", SLOW_FRACTIONS)
@pytest.mark.parametrize("push", [True, False], ids=["pushed", "central"])
def test_pushdown_communication(benchmark, push, slow_fraction):
    def run():
        return run_scenario(push, slow_fraction)

    scenario, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = scenario.expected_incidents(scenario.calls)
    assert len(scenario.incidents()) == len(expected)
    benchmark.extra_info["experiment"] = "E5"
    benchmark.extra_info["strategy"] = "pushed" if push else "central"
    benchmark.extra_info["slow_fraction"] = slow_fraction
    benchmark.extra_info["bytes_transferred"] = stats.total_bytes
    benchmark.extra_info["messages"] = stats.total_messages
    benchmark.extra_info["incidents"] = len(scenario.incidents())


def test_pushdown_reduces_bytes(benchmark):
    """The headline comparison: pushed plans ship fewer bytes than central ones."""

    def run():
        _, pushed = run_scenario(True, 0.1)
        _, central = run_scenario(False, 0.1)
        return pushed.total_bytes, central.total_bytes

    pushed_bytes, central_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert pushed_bytes < central_bytes
    benchmark.extra_info["experiment"] = "E5"
    benchmark.extra_info["pushed_bytes"] = pushed_bytes
    benchmark.extra_info["central_bytes"] = central_bytes
    benchmark.extra_info["savings_factor"] = round(central_bytes / max(pushed_bytes, 1), 2)
