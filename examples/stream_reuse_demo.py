"""Stream reuse (Section 5): overlapping subscriptions share deployed streams.

A first subscription deploys alerters, filters, a union and a join for the
meteo QoS task.  A second, identical subscription is then submitted by the
same monitor office: the Reuse algorithm maps its whole plan (minus the
publisher) onto the already-running streams, so almost nothing new is
deployed.  A third, partially overlapping subscription reuses just the
alerter streams.

Run with:  python examples/stream_reuse_demo.py
"""

from repro.workloads import MeteoScenario


def describe(name, task):
    report = task.reuse_report
    print(f"{name}:")
    print(f"  plan nodes reused   : {report.nodes_reused}/{report.nodes_considered}"
          f"  (queries to the Stream Definition DB: {report.queries_issued})")
    print(f"  new operators       : {task.operator_count}")
    print(f"  peers involved      : {', '.join(task.peers_involved())}")
    for kind, stream, provider in report.reused:
        print(f"    reused {kind:12s} -> {stream} (served by {provider})")
    print()


def main() -> None:
    scenario = MeteoScenario(threshold=10.0, slow_fraction=0.2, seed=29)

    first = scenario.deploy()
    print("First subscription (nothing to reuse yet):")
    print(f"  new operators       : {first.operator_count}")
    print(f"  streams declared    : {scenario.system.stream_db.streams_published}")
    print()

    second = scenario.monitor.subscribe(scenario.subscription_text(), sub_id="meteo-qos-bis")
    scenario.system.run()
    describe("Second, identical subscription", second)

    third = scenario.monitor.subscribe(
        """
        for $c in outCOM(<p>a.com</p>)
        where $c.callMethod = "GetHumidity"
        return <humidity-call caller="{$c.caller}"/>
        by publish as channel "humidity";
        """,
        sub_id="humidity-watch",
    )
    scenario.system.run()
    describe("Third, partially overlapping subscription", third)

    scenario.run_traffic(300)
    print("After 300 monitored calls:")
    print(f"  incidents seen by subscription 1: {len(first.results)}")
    print(f"  incidents seen by subscription 2: {len(second.results)} (same stream, reused)")
    print(f"  humidity calls seen by subscription 3: {len(third.results)}")


if __name__ == "__main__":
    main()
