"""Stream reuse (Section 5): overlapping subscriptions share deployed streams.

A first subscription deploys alerters, filters, a union and a join for the
meteo QoS task.  A second, identical subscription is then submitted by the
same monitor office: the Reuse algorithm maps its whole plan (minus the
publisher) onto the already-running streams, so almost nothing new is
deployed.  A third, partially overlapping subscription reuses just the
alerter streams.

Because reuse shares streams between subscriptions, cancellation is
reference-counted: cancelling the first subscription leaves the streams the
second one depends on running; only when the last subscriber cancels is
everything torn down and retracted from the Stream Definition Database.

Run with:  python examples/stream_reuse_demo.py
"""

from repro.workloads import MeteoScenario


def describe(name, handle):
    report = handle.reuse_report
    print(f"{name}:")
    print(f"  plan nodes reused   : {report.nodes_reused}/{report.nodes_considered}"
          f"  (queries to the Stream Definition DB: {report.queries_issued})")
    print(f"  new operators       : {handle.operator_count}")
    print(f"  peers involved      : {', '.join(handle.peers_involved())}")
    for kind, stream, provider in report.reused:
        print(f"    reused {kind:12s} -> {stream} (served by {provider})")
    print()


def main() -> None:
    scenario = MeteoScenario(threshold=10.0, slow_fraction=0.2, seed=29)

    first = scenario.deploy()
    print("First subscription (nothing to reuse yet):")
    print(f"  new operators       : {first.operator_count}")
    print(f"  streams declared    : {scenario.system.stream_db.streams_published}")
    print()

    second = scenario.monitor.subscribe(
        scenario.subscription_text(), sub_id="meteo-qos-bis", max_results=10_000
    )
    scenario.system.run()
    describe("Second, identical subscription", second)

    third = scenario.monitor.subscribe(
        """
        for $c in outCOM(<p>a.com</p>)
        where $c.callMethod = "GetHumidity"
        return <humidity-call caller="{$c.caller}"/>
        by publish as channel "humidity";
        """,
        sub_id="humidity-watch",
        max_results=10_000,
    )
    scenario.system.run()
    describe("Third, partially overlapping subscription", third)

    scenario.run_traffic(300)
    print("After 300 monitored calls:")
    print(f"  incidents seen by subscription 1: {len(first.results())}")
    print(f"  incidents seen by subscription 2: {len(second.results())} (same stream, reused)")
    print(f"  humidity calls seen by subscription 3: {len(third.results())}")

    # reference-counted teardown: the first cancel must not disturb the
    # second subscription, which reuses the first one's streams
    first.cancel()
    scenario.run_traffic(150)
    print("\nAfter cancelling subscription 1 and 150 more calls:")
    print(f"  subscription 1 (cancelled): {len(first.results())} (frozen)")
    print(f"  subscription 2 (reusing its streams): {len(second.results())} (still growing)")

    second.cancel()
    third.cancel()
    db = scenario.system.stream_db
    print("\nAfter cancelling every subscription:")
    print(f"  stream descriptions left : {len(db.all_stream_descriptions())}")
    print(f"  descriptions retracted   : {db.descriptions_retracted}")
    print(f"  resource ledger          : {scenario.system.resources}")


if __name__ == "__main__":
    main()
