"""Web surveillance: monitor RSS feeds and Web pages of a community portal.

Two monitored sites publish an RSS feed and a set of Web pages.  The monitor
subscribes to both kinds of changes; additions to the feed are mailed to the
operations team and page changes are republished as an RSS feed (the
publication forms of Section 3.1).

Run with:  python examples/rss_monitoring.py
"""

from repro.monitor import P2PMSystem
from repro.workloads import RSSFeedSimulator, WebPageSimulator
from repro.xmlmodel import pretty_xml


def main() -> None:
    system = P2PMSystem(seed=3)
    portal = system.add_peer("portal.community.org")
    wiki = system.add_peer("wiki.community.org")
    monitor = system.add_peer("watchdog.community.org")

    # monitored content
    feed = RSSFeedSimulator("http://portal.community.org/rss", initial_entries=6, seed=3)
    portal.register_feed(feed.feed_url, feed.snapshot)
    pages = WebPageSimulator("wiki.community.org", n_pages=4, change_rate=0.5, seed=3)
    for url in pages.urls:
        wiki.register_feed(url, pages.source_for(url))

    # subscription 1: new portal entries, mailed to the team
    news = monitor.subscribe(
        """
        for $x in rssFeed(<p>portal.community.org</p>)
        where $x.kind = "add"
        return <announcement>{$x.entry}</announcement>
        by email "team@community.org";
        """,
        sub_id="portal-news",
    )
    # subscription 2: any change on the wiki pages, republished as RSS
    edits = monitor.subscribe(
        """
        for $p in webPage(<p>wiki.community.org</p>)
        return <page-changed crawl="{$p.crawl}">{$p.url}</page-changed>
        by rss "wikiChanges";
        """,
        sub_id="wiki-edits",
        max_results=500,
    )
    system.run()

    # drive the monitored systems for a few rounds
    rss_alerter = portal.alerter("rssFeed")
    page_alerter = wiki.alerter("webpage")  # keyword-like names are lower-cased
    rss_alerter.poll()
    page_alerter.crawl()
    for _ in range(3):
        feed.tick()
        pages.tick()
        rss_alerter.poll()
        page_alerter.crawl()

    system.run()  # deliver the first rounds while the subscription is live

    # the operations team goes off-shift: pause the mail subscription;
    # changes keep being detected and delivered, nothing is mailed until
    # resume() flushes what the valve retained
    news.pause()
    for _ in range(3):
        feed.tick()
        pages.tick()
        rss_alerter.poll()
        page_alerter.crawl()
    system.run()
    mailed_while_paused = len(news.publisher.outbox)
    held = news.stats()["items_pending"]
    news.resume()
    system.run()

    print(f"Portal additions mailed: {len(news.publisher.outbox)} "
          f"(mailed before pause: {mailed_while_paused}, held while paused: {held})")
    for email in news.publisher.outbox[:3]:
        print(f"  to {email.recipient}: {email.subject}")

    print(f"\nWiki changes observed: {len(edits.results())}")
    print("Latest entries of the generated RSS feed:")
    generated = edits.publisher.feed()
    for item in generated.find("channel").findall("item")[:3]:
        print("  " + pretty_xml(item).strip().replace("\n", " ")[:110])


if __name__ == "__main__":
    main()
