"""The paper's running example (Figure 1 / Figure 4): meteo QoS monitoring.

Two client peers (a.com, b.com) call the GetTemperature service of
meteo.com.  The monitor office subscribes to detect calls slower than 10
seconds; the subscription is compiled into a distributed plan whose filters
run at the clients, whose join runs at meteo.com, and whose result is
published on channel #alertQoS at the monitor peer.

Run with:  python examples/meteo_qos.py
"""

from repro.workloads import MeteoScenario
from repro.xmlmodel import pretty_xml


def main() -> None:
    scenario = MeteoScenario(threshold=10.0, slow_fraction=0.15, seed=7)

    print("P2PML subscription submitted at monitor.meteo.com:")
    print(scenario.subscription_text())

    handle = scenario.deploy()
    print("Distributed monitoring plan (operator @ peer):")
    print(handle.plan.describe())
    print("\nChannels created:", ", ".join(handle.channels_created))

    calls = scenario.run_traffic(500)
    expected = scenario.expected_incidents(calls)
    incidents = scenario.incidents()

    print(f"\nGenerated {len(calls)} SOAP calls; "
          f"{len(expected)} were slow GetTemperature calls to meteo.com.")
    print(f"The deployed task detected {len(incidents)} incidents:")
    for incident in incidents[:5]:
        print("  " + pretty_xml(incident).strip().replace("\n", " "))
    if len(incidents) > 5:
        print(f"  ... and {len(incidents) - 5} more")

    stats = scenario.system.network.stats
    print(f"\nNetwork traffic: {stats.total_messages} messages, {stats.total_bytes} bytes")
    print("Busiest peer:", stats.busiest_peer())

    sub_stats = handle.stats()
    print(f"\nSubscription stats: status={sub_stats['status']}, "
          f"delivered={sub_stats['items_delivered']}, "
          f"operators={sub_stats['operators']} on {len(sub_stats['peers'])} peers")


if __name__ == "__main__":
    main()
