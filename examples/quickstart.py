"""Quickstart: monitor an RSS feed with a three-line P2PML subscription.

Run with:  python examples/quickstart.py
"""

from repro.monitor import P2PMSystem
from repro.workloads import RSSFeedSimulator
from repro.xmlmodel import pretty_xml


def main() -> None:
    # 1. A tiny monitoring deployment: the monitored site and a monitor peer.
    #    execution_mode="compiled" runs deployed plans as fused pipeline
    #    closures (docs/PERFORMANCE.md); results are identical to the
    #    default interpreted mode, item for item.
    system = P2PMSystem(seed=1, execution_mode="compiled")
    site = system.add_peer("news.example.org")
    monitor = system.add_peer("monitor.example.org")

    # 2. The monitored system: an RSS feed that changes over time.
    feed = RSSFeedSimulator("http://news.example.org/rss", initial_entries=4, seed=1)
    site.register_feed(feed.feed_url, feed.snapshot)

    # 3. A P2PML subscription: tell me about every new entry.  subscribe()
    #    returns a SubscriptionHandle; max_results opts into a bounded
    #    result buffer readable via handle.results().
    handle = monitor.subscribe(
        """
        for $x in rssFeed(<p>news.example.org</p>)
        where $x.kind = "add"
        return <fresh-entry feed="{$x.feed}">{$x.entry}</fresh-entry>
        by publish as channel "freshNews";
        """,
        sub_id="fresh-news",
        max_results=100,
    )
    system.run()  # deliver the deployment messages

    print(f"Deployed monitoring plan ({handle.sub_id}, status={handle.status}):")
    print(handle.plan.describe())

    # 4. Drive the monitored system: the alerter polls the feed as it evolves.
    alerter = site.alerter("rssFeed")
    alerter.poll()  # baseline snapshot
    for _ in range(8):
        feed.tick()
        alerter.poll()
    system.run()  # deliver the channel messages to the monitor

    # 5. The results arrived at the monitor peer on channel #freshNews.
    results = handle.results()
    print(f"\n{len(results)} new entries detected:")
    for item in results:
        print("  " + pretty_xml(item).strip().replace("\n", " "))

    # The compile counters show what the plan compiler fused for this
    # subscription (handle.stats()["compile"] is system-wide).
    compile_stats = handle.stats()["compile"]
    print(f"\nCompiled execution: {compile_stats['segments_fused']} segment(s) fused, "
          f"{compile_stats['stages_fused']} stage(s), "
          f"{compile_stats['pipelines_active']} pipeline(s) active")

    # 6. The handle drives the whole lifecycle: cancelling tears down the
    #    operators, closes the streams and retracts the advertisements.
    handle.cancel()
    print(f"\nAfter cancel: status={handle.status}, "
          f"stream descriptions left: {len(system.stream_db.all_stream_descriptions())}")


if __name__ == "__main__":
    main()
