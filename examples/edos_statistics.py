"""Monitoring an Edos-like software distribution network (Section 1).

Mirrors serve package queries and downloads to client peers.  Three
subscriptions gather the statistics the paper mentions: failed downloads
(reliability), downloads per mirror (efficiency/load) and query traffic
(usage).  The monitored numbers are compared with the workload's own ground
truth at the end.

Run with:  python examples/edos_statistics.py
"""

from repro.algebra import GroupOperator, ValueRef
from repro.monitor import P2PMSystem
from repro.p2pml import SubscriptionBuilder
from repro.workloads import EdosNetwork


def main() -> None:
    system = P2PMSystem(seed=11)
    edos = EdosNetwork(n_mirrors=3, n_clients=30, failure_rate=0.1, seed=11)
    for mirror in edos.mirrors:
        peer = system.add_peer(mirror)
        peer.add_alerter_hook(
            lambda alerter: edos.attach_alerter(alerter)
            if hasattr(alerter, "observe_call")
            else None
        )
    monitor = system.add_peer("monitor.edos.org")
    mirror_args = " ".join(f"<p>{mirror}</p>" for mirror in edos.mirrors)

    failures = monitor.subscribe(
        f"""
        for $c in inCOM({mirror_args})
        where $c.callMethod = "DownloadPackage" and $c.status = "fault"
        return <failed-download mirror="{{$c.callee}}" client="{{$c.caller}}"/>
        by publish as channel "edosFailures";
        """,
        sub_id="edos-failures",
        max_results=10_000,
    )
    downloads = monitor.subscribe(
        f"""
        for $c in inCOM({mirror_args})
        where $c.callMethod = "DownloadPackage"
        return <download mirror="{{$c.callee}}"/>
        by publish as channel "edosDownloads";
        """,
        sub_id="edos-downloads",
        max_results=10_000,
    )
    # the third subscription is built programmatically: the fluent builder
    # compiles to the same AST (and thus the same plans) as P2PML text
    queries = monitor.subscribe(
        SubscriptionBuilder()
        .for_var("c", "inCOM", *edos.mirrors)
        .where("$c.callMethod", "=", '"QueryPackage"')
        .returns('<query client="{$c.caller}"/>')
        .by_channel("edosQueries"),
        sub_id="edos-queries",
        max_results=10_000,
    )
    system.run()

    # aggregate downloads per mirror with a Group operator at the monitor
    per_mirror = GroupOperator(key=ValueRef.attribute("item", "mirror"))
    per_mirror.connect(downloads.output_stream)

    print("Running the distribution network (1000 events)...")
    edos.run(1000)
    system.run()

    reference = edos.reference_statistics()
    print("\nMonitored statistics vs ground truth:")
    print(f"  failed downloads : {len(failures.results()):4d}  (ground truth {reference['failed_downloads']})")
    print(f"  downloads        : {len(downloads.results()):4d}  (ground truth {reference['downloads']})")
    print(f"  package queries  : {len(queries.results()):4d}  (ground truth {reference['queries']})")
    print("\nDownloads per mirror (Group operator):")
    for mirror, count in sorted(per_mirror.counts.items()):
        truth = reference["downloads_per_mirror"].get(mirror, 0)
        print(f"  {mirror:22s} {count:4d}  (ground truth {truth})")

    print("\nStream reuse across the three subscriptions:")
    for task in (failures, downloads, queries):
        report = task.reuse_report
        print(f"  {task.sub_id:16s} reused {report.nodes_reused} plan node(s), "
              f"deployed {task.operator_count} new operator(s)")


if __name__ == "__main__":
    main()
