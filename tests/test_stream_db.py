"""Tests for the Stream Definition Database and operator placement/optimisation."""

import pytest

from repro.algebra.plan import ALERTER, FILTER, JOIN, PUBLISH, RESTRUCTURE, UNION, PlanNode
from repro.filtering import FilterSubscription, SimpleCondition
from repro.monitor import StreamDefinitionDatabase, optimize_plan, place_plan
from repro.monitor.stream_db import operator_spec
from repro.p2pml import compile_text


def alerter_node(peer="a.com", kind="outCOM"):
    return PlanNode(ALERTER, {"alerter": kind, "peer": peer, "var": "c1"}, placement=peer)


def filter_node(child, value="GetTemperature"):
    sub = FilterSubscription("f", [SimpleCondition("callMethod", "=", value)])
    return PlanNode(FILTER, {"subscription": sub, "var": "c1"}, [child])


METEO = """
for $c1 in outCOM(<p>a.com</p> <p>b.com</p>),
    $c2 in inCOM(<p>meteo.com</p>)
let $duration := $c1.responseTimestamp - $c1.callTimestamp
where $duration > 10 and $c1.callMethod = "GetTemperature" and
      $c1.callee = "meteo.com" and $c1.callId = $c2.callId
return <incident type="slowAnswer"><client>{$c1.caller}</client></incident>
by publish as channel "alertQoS";
"""


class TestStreamDefinitionDatabase:
    def test_publish_and_find_alerter_stream(self):
        db = StreamDefinitionDatabase()
        node = alerter_node()
        db.publish_node(node, "a.com", "outCOM", [])
        found = db.find_alerter_streams("a.com", "outCOM")
        assert len(found) == 1
        assert found[0].qualified_id == "outCOM@a.com"
        assert found[0].is_channel
        assert db.find_alerter_streams("a.com", "inCOM") == []
        assert db.find_alerter_streams("b.com", "outCOM") == []

    def test_find_operator_stream_requires_spec_and_operands(self):
        db = StreamDefinitionDatabase()
        source = alerter_node()
        db.publish_node(source, "a.com", "outCOM", [])
        filt = filter_node(source)
        db.publish_node(filt, "a.com", "f1", [("a.com", "outCOM")])
        found = db.find_operator_streams("Filter", operator_spec(filt), [("a.com", "outCOM")])
        assert len(found) == 1
        # a different filter spec does not match
        other = filter_node(source, value="GetHumidity")
        assert db.find_operator_streams("Filter", operator_spec(other), [("a.com", "outCOM")]) == []
        # wrong operand does not match
        assert db.find_operator_streams("Filter", operator_spec(filt), [("b.com", "outCOM")]) == []

    def test_operand_sets_must_match_exactly(self):
        db = StreamDefinitionDatabase()
        join = PlanNode(JOIN, {"left_var": "a", "right_var": "b", "predicate": []},
                        [alerter_node(), alerter_node("b.com")])
        db.publish_node(join, "b.com", "j1", [("a.com", "s1"), ("b.com", "s2")])
        spec = operator_spec(join)
        assert len(db.find_operator_streams("Join", spec, [("a.com", "s1"), ("b.com", "s2")])) == 1
        # a single operand is a strict subset: not an exact match
        assert db.find_operator_streams("Join", spec, [("a.com", "s1")]) == []

    def test_replicas(self):
        db = StreamDefinitionDatabase()
        db.publish_replica("a.com", "s1", "cache.com", "s1-copy")
        assert db.find_replicas("a.com", "s1") == [("cache.com", "s1-copy")]
        assert db.find_replicas("a.com", "other") == []

    def test_describe_rejects_non_stream_nodes(self):
        from repro.xmlmodel import Element

        db = StreamDefinitionDatabase()
        from repro.algebra.plan import EXISTING

        existing = PlanNode(EXISTING, {"peer": "p", "stream_id": "s"})
        with pytest.raises(ValueError):
            db.describe_node(existing, "p", "s", [])
        with pytest.raises(ValueError):
            db.publish_stream(Element("NotAStream"))

    def test_all_stream_descriptions(self):
        db = StreamDefinitionDatabase()
        db.publish_node(alerter_node(), "a.com", "outCOM", [])
        db.publish_node(alerter_node("b.com"), "b.com", "outCOM", [])
        assert len(db.all_stream_descriptions()) == 2


class TestOptimizer:
    def test_pushes_filters_through_union(self):
        plan = compile_text(METEO, "m")
        optimized = optimize_plan(plan)
        union = optimized.find_all(UNION)[0]
        assert all(child.kind == FILTER for child in union.children)

    def test_can_disable_pushdown(self):
        plan = compile_text(METEO, "m")
        unoptimized = optimize_plan(plan, push_selections=False)
        union = unoptimized.find_all(UNION)[0]
        assert all(child.kind == ALERTER for child in union.children)

    def test_original_plan_untouched(self):
        plan = compile_text(METEO, "m")
        before = plan.describe()
        optimize_plan(plan)
        assert plan.describe() == before


class TestPlacement:
    def test_meteo_plan_placement(self):
        plan = optimize_plan(compile_text(METEO, "m"))
        place_plan(plan, manager_peer="monitor.com")
        assert plan.unplaced_nodes() == []
        # alerters at the monitored peers
        for node in plan.find_all(ALERTER):
            assert node.placement == node.params["peer"]
        # filters placed with their sources
        for node in plan.find_all(FILTER):
            assert node.placement == node.children[0].placement
        # the union runs at one of the two client peers
        assert plan.find_all(UNION)[0].placement in ("a.com", "b.com")
        # the join runs at one of its two inputs' peers
        join = plan.find_all(JOIN)[0]
        assert join.placement in (join.children[0].placement, join.children[1].placement)
        # the publisher runs at the subscription manager
        assert plan.placement == "monitor.com"

    def test_join_prefers_less_loaded_peer(self):
        plan = optimize_plan(compile_text(METEO, "m"))
        # pretend meteo.com is already very busy
        load = {"meteo.com": 100}
        place_plan(plan, manager_peer="monitor.com", load=load)
        join = plan.find_all(JOIN)[0]
        assert join.placement != "meteo.com"

    def test_restructure_follows_child(self):
        plan = optimize_plan(compile_text(METEO, "m"))
        place_plan(plan, manager_peer="monitor.com")
        restructure = plan.find_all(RESTRUCTURE)[0]
        assert restructure.placement == restructure.children[0].placement

    def test_local_alerter_placed_at_manager(self):
        plan = compile_text(
            "for $e in outCOM(<p>local</p>) return $e by channel X", "local-task"
        )
        place_plan(plan, manager_peer="a.com")
        assert plan.find_all(ALERTER)[0].placement == "a.com"
