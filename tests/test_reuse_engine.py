"""Unit tests for the Reuse engine and related monitor pieces."""

import pytest

from repro.algebra.plan import ALERTER, EXISTING, FILTER, JOIN, PUBLISH, PlanNode
from repro.filtering import FilterSubscription, SimpleCondition
from repro.monitor import P2PMSystem, ReuseEngine, StreamDefinitionDatabase
from repro.monitor.stream_db import operator_spec
from repro.net import SimNetwork, Peer


def alerter(peer="a.com", kind="outCOM"):
    return PlanNode(ALERTER, {"alerter": kind, "peer": peer, "var": "c1"}, placement=peer)


def filter_over(child, value="GetTemperature"):
    sub = FilterSubscription("f", [SimpleCondition("callMethod", "=", value)])
    return PlanNode(FILTER, {"subscription": sub, "var": "c1"}, [child])


class TestReuseEngine:
    def test_nothing_to_reuse_on_empty_database(self):
        engine = ReuseEngine(StreamDefinitionDatabase())
        plan = PlanNode(PUBLISH, {"mode": "local", "target": "t"}, [filter_over(alerter())])
        rewritten, report = engine.apply(plan)
        assert report.nodes_reused == 0
        assert rewritten.count(EXISTING) == 0
        assert report.savings_ratio == 0.0

    def test_alerter_reused_when_declared(self):
        db = StreamDefinitionDatabase()
        db.publish_node(alerter(), "a.com", "outCOM", [])
        engine = ReuseEngine(db)
        plan = PlanNode(PUBLISH, {"mode": "local", "target": "t"}, [filter_over(alerter())])
        rewritten, report = engine.apply(plan)
        assert report.nodes_reused == 1
        existing = rewritten.find_all(EXISTING)
        assert len(existing) == 1
        assert existing[0].params["peer"] == "a.com"
        assert existing[0].params["stream_id"] == "outCOM"

    def test_whole_subtree_reused_when_filter_also_exists(self):
        db = StreamDefinitionDatabase()
        db.publish_node(alerter(), "a.com", "outCOM", [])
        the_filter = filter_over(alerter())
        db.publish_node(the_filter, "a.com", "f1", [("a.com", "outCOM")])
        engine = ReuseEngine(db)
        plan = PlanNode(PUBLISH, {"mode": "local", "target": "t"}, [filter_over(alerter())])
        rewritten, report = engine.apply(plan)
        # the filter subtree collapses to a single EXISTING node
        assert rewritten.children[0].kind == EXISTING
        assert rewritten.children[0].params["stream_id"] == "f1"
        assert report.nodes_reused == 2

    def test_different_filter_spec_not_reused(self):
        db = StreamDefinitionDatabase()
        db.publish_node(alerter(), "a.com", "outCOM", [])
        db.publish_node(filter_over(alerter()), "a.com", "f1", [("a.com", "outCOM")])
        engine = ReuseEngine(db)
        plan = PlanNode(
            PUBLISH, {"mode": "local", "target": "t"},
            [filter_over(alerter(), value="GetHumidity")],
        )
        rewritten, _ = engine.apply(plan)
        # the alerter is reused but the (different) filter is not
        assert rewritten.children[0].kind == FILTER
        assert rewritten.children[0].children[0].kind == EXISTING

    def test_join_reuse_requires_both_operands(self):
        db = StreamDefinitionDatabase()
        db.publish_node(alerter(), "a.com", "outCOM", [])
        engine = ReuseEngine(db)
        join = PlanNode(
            JOIN,
            {"left_var": "c1", "right_var": "c2", "predicate": []},
            [alerter(), alerter("meteo.com", "inCOM")],
        )
        plan = PlanNode(PUBLISH, {"mode": "local", "target": "t"}, [join])
        rewritten, report = engine.apply(plan)
        assert rewritten.children[0].kind == JOIN
        assert report.nodes_reused == 1  # only the declared alerter

    def test_replica_selection_prefers_close_provider(self):
        db = StreamDefinitionDatabase()
        db.publish_node(alerter(), "a.com", "outCOM", [])
        db.publish_replica("a.com", "outCOM", "near.com", "copy-1")
        network = SimNetwork(seed=1)
        Peer("a.com", network, coordinates=(0.9, 0.9))
        Peer("near.com", network, coordinates=(0.11, 0.1))
        Peer("consumer.com", network, coordinates=(0.1, 0.1))
        engine = ReuseEngine(db, network=network, consumer_peer="consumer.com")
        plan = PlanNode(PUBLISH, {"mode": "local", "target": "t"}, [alerter()])
        rewritten, _ = engine.apply(plan)
        existing = rewritten.find_all(EXISTING)[0]
        assert existing.params["provider_peer"] == "near.com"
        assert existing.params["provider_stream_id"] == "copy-1"
        # the canonical identity still points at the original stream
        assert existing.params["peer"] == "a.com"

    def test_replica_of_unknown_peer_is_skipped(self):
        db = StreamDefinitionDatabase()
        db.publish_node(alerter(), "a.com", "outCOM", [])
        db.publish_replica("a.com", "outCOM", "gone.com", "copy-1")
        network = SimNetwork(seed=1)
        Peer("a.com", network)
        Peer("consumer.com", network)
        engine = ReuseEngine(db, network=network, consumer_peer="consumer.com")
        plan = PlanNode(PUBLISH, {"mode": "local", "target": "t"}, [alerter()])
        rewritten, _ = engine.apply(plan)
        assert rewritten.find_all(EXISTING)[0].params["provider_peer"] == "a.com"

    def test_operator_spec_stability(self):
        assert operator_spec(filter_over(alerter())) == operator_spec(filter_over(alerter("b.com")))
        assert operator_spec(filter_over(alerter())) != operator_spec(
            filter_over(alerter(), value="Other")
        )


class TestP2PMSystemBasics:
    def test_duplicate_peer_rejected(self):
        system = P2PMSystem()
        system.add_peer("a.com")
        with pytest.raises(ValueError):
            system.add_peer("a.com")

    def test_unknown_peer_lookup(self):
        system = P2PMSystem()
        with pytest.raises(KeyError):
            system.peer("ghost")
        assert not system.has_peer("ghost")

    def test_peers_join_the_kadop_ring(self):
        system = P2PMSystem()
        system.add_peer("a.com")
        system.add_peer("b.com")
        assert "a.com" in system.kadop.ring
        assert system.peer_ids == ["a.com", "b.com"]

    def test_unknown_alerter_kind_rejected(self):
        system = P2PMSystem()
        peer = system.add_peer("a.com")
        with pytest.raises(ValueError):
            peer.get_or_create_alerter("teleport")

    def test_rss_alerter_requires_registered_feed(self):
        system = P2PMSystem()
        peer = system.add_peer("a.com")
        with pytest.raises(ValueError):
            peer.get_or_create_alerter("rssFeed")

    def test_alerter_hook_applies_to_existing_alerters(self):
        system = P2PMSystem()
        peer = system.add_peer("a.com")
        created = peer.get_or_create_alerter("outCOM")
        seen = []
        peer.add_alerter_hook(seen.append)
        assert created in seen
