"""Tests for the reliable control-plane RPC layer.

Covers the client/server stack in isolation (retries, idempotency keys,
the per-destination circuit breaker, typed failures) and the end-to-end
acceptance criterion: a lossy control plane never silently drops or
double-executes a deployment -- every submit either deploys fully or
raises a typed :class:`~repro.net.errors.RpcError`.
"""

import pytest

from repro.monitor import P2PMSystem
from repro.net.errors import CircuitOpen, RpcError, RpcRemoteError, RpcTimeout
from repro.net.faults import FaultModel
from repro.net.peer import Peer
from repro.net.rpc import CircuitBreaker, RetryPolicy, RpcEndpoint
from repro.net.simnet import SimNetwork
from repro.workloads import ChaosFeedWorkload
from repro.workloads.chaos_feed import CHAOS_FUNCTION
from repro.xmlmodel.tree import Element


def build_pair(seed=0, fault_model=None, policy=None):
    network = SimNetwork(seed=seed, fault_model=fault_model)
    a = Peer("a", network)
    b = Peer("b", network)
    client = RpcEndpoint(a, policy)
    server = RpcEndpoint(b, policy)
    return network, client, server


def echo_counter(server):
    """Register an ``echo`` method that counts its executions."""
    executions = []

    def echo(params, source):
        executions.append(source)
        return Element("echoed", {"text": params.attrib.get("text", "")})

    server.register("echo", echo)
    return executions


class TestRoundTrip:
    def test_call_completes_with_result(self):
        network, client, server = build_pair()
        executions = echo_counter(server)
        call = client.call("b", "echo", Element("args", {"text": "hi"}))
        assert not call.done and client.in_flight == 1
        network.run()
        assert call.done and client.in_flight == 0
        result = call.value()
        assert result is not None and result.attrib["text"] == "hi"
        assert executions == ["a"]

    def test_call_sync_pumps_the_network(self):
        network, client, server = build_pair()
        echo_counter(server)
        result = client.call_sync("b", "echo", Element("args", {"text": "x"}))
        assert result is not None and result.attrib["text"] == "x"

    def test_remote_exception_travels_back_typed(self):
        network, client, server = build_pair()

        def boom(params, source):
            raise ValueError("broken handler")

        server.register("boom", boom)
        with pytest.raises(RpcRemoteError, match="broken handler"):
            client.call_sync("b", "boom")
        # a response arrived, so the link is healthy: breaker stays closed
        assert client.breaker("b").state == CircuitBreaker.CLOSED

    def test_unknown_method_is_a_remote_error(self):
        network, client, server = build_pair()
        with pytest.raises(RpcRemoteError, match="unknown method"):
            client.call_sync("b", "nope")

    def test_value_before_completion_raises(self):
        network, client, server = build_pair()
        echo_counter(server)
        call = client.call("b", "echo")
        with pytest.raises(RuntimeError, match="in flight"):
            call.value()
        network.run()


class TestRetries:
    def test_retries_survive_heavy_loss_without_reexecution(self):
        network, client, server = build_pair(
            seed=3, fault_model=FaultModel(loss_rate=0.5)
        )
        executions = []
        server.register(
            "tag", lambda params, source: executions.append(params.attrib["n"])
        )
        succeeded = []
        for n in range(20):
            try:
                client.call_sync("b", "tag", Element("args", {"n": str(n)}))
            except RpcTimeout:
                continue
            succeeded.append(str(n))
        # at 50% loss most calls need retries, yet the handler ran at most
        # once per call: retries reuse the correlation id and the receiver
        # replays its cached response for duplicates.  At-least-once means
        # a timed-out call may still have executed (its response was lost),
        # so executions can exceed successes -- but never repeat
        assert network.stats.rpc_retries > 0
        assert len(set(executions)) == len(executions)
        assert set(succeeded) <= set(executions)

    def test_duplicated_requests_execute_once(self):
        network, client, server = build_pair(
            seed=5, fault_model=FaultModel(duplication_rate=1.0)
        )
        executions = echo_counter(server)
        result = client.call_sync("b", "echo", Element("args", {"text": "once"}))
        assert result is not None
        assert executions == ["a"]

    def test_exhausted_retries_raise_typed_timeout(self):
        network, client, server = build_pair(
            policy=RetryPolicy(max_attempts=3, base_timeout=0.01)
        )
        network.fail_peer("b", notify=False)
        with pytest.raises(RpcTimeout) as info:
            client.call_sync("b", "echo")
        assert info.value.destination == "b"
        assert info.value.attempts == 3
        assert network.stats.rpc_timeouts == 1
        assert isinstance(info.value, RpcError)


class TestCircuitBreaker:
    def test_repeated_timeouts_open_then_cooldown_half_opens(self):
        policy = RetryPolicy(max_attempts=2, base_timeout=0.01)
        network, client, server = build_pair(policy=policy)
        echo_counter(server)
        network.fail_peer("b", notify=False)
        for _ in range(3):
            with pytest.raises(RpcTimeout):
                client.call_sync("b", "echo")
        assert client.breaker("b").state == CircuitBreaker.OPEN
        assert client.open_circuits() == ["b"]
        with pytest.raises(CircuitOpen):
            client.call("b", "echo")
        assert network.stats.rpc_rejected == 1
        # after the cooldown one half-open probe goes through; the revived
        # destination answers and the circuit closes again
        network.revive_peer("b", notify=False)
        network.advance(CircuitBreaker().cooldown + 0.01)
        result = client.call_sync("b", "echo", Element("args", {"text": "probe"}))
        assert result is not None
        assert client.breaker("b").state == CircuitBreaker.CLOSED
        assert client.open_circuits() == []

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=1.0)
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.record_failure(0.0) is True  # newly opened
        assert not breaker.allow(0.5)
        assert breaker.allow(1.5)  # half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.record_failure(1.5) is True  # re-opened
        assert not breaker.allow(1.6)


class TestPartitionRetry:
    """Satellite: an RPC retried across a held partition must not
    double-execute after the heal releases every held copy."""

    def run_once(self, seed=11):
        network = SimNetwork(seed=seed)
        network.record_events = True
        a = Peer("a", network)
        b = Peer("b", network)
        client = RpcEndpoint(a, RetryPolicy(max_attempts=4, base_timeout=0.02))
        server = RpcEndpoint(b)
        executions = echo_counter(server)
        network.partition("cut", ["a"], ["b"])
        with pytest.raises(RpcTimeout):
            # every attempt's request is *held* by the partition, not lost;
            # the deadline timers still fire, so the call times out typed
            client.call_sync("b", "echo", Element("args", {"text": "held"}))
        assert executions == []
        released = network.heal("cut")
        assert released >= 4  # all four request copies were held
        network.run()
        return network, executions

    def test_held_retries_execute_at_most_once_after_heal(self):
        network, executions = self.run_once()
        # the heal delivered every retry copy; idempotency keys collapse
        # them into at most one execution
        assert len(executions) == 1

    def test_partition_retry_is_deterministic(self):
        first, _ = self.run_once()
        second, _ = self.run_once()
        assert first.trace_fingerprint() == second.trace_fingerprint()


class TestLossyControlPlaneSoak:
    """Acceptance: a 10%-lossy control plane deploys 1k overlapping
    subscriptions with zero silent losses -- every submit either deploys
    fully or raises a typed RPC error."""

    def test_thousand_subscriptions_deploy_or_fail_typed(self):
        # publish_replicas=False keeps 1k *identical* subscriptions from
        # daisy-chaining replica relays (each sub reusing its predecessor's
        # replica advertisement), which is reuse-engine behaviour unrelated
        # to the control plane under test here
        system = P2PMSystem(seed=17, reliable_control=True, publish_replicas=False)
        sources = [f"s{i}" for i in range(4)]
        for source in sources:
            system.add_peer(source)
        monitor = system.add_peer("monitor")
        system.network.set_fault_model(FaultModel(loss_rate=0.1, jitter=0.01))
        peers = " ".join(f"<p>{source}</p>" for source in sources)
        text = (
            f'for $x in {CHAOS_FUNCTION}({peers}) where $x.kind = "chaos" '
            "return <seen><src>{$x.source}</src><n>{$x.n}</n></seen>"
        )
        deployed, failed = [], []
        for n in range(1000):
            try:
                handle = monitor.subscribe(text, sub_id=f"soak-{n}")
            except RpcError as exc:
                failed.append((n, exc))
            else:
                deployed.append(handle)
            system.run()
        assert len(deployed) + len(failed) == 1000
        # loss this mild should almost never exhaust a 6-attempt budget;
        # whatever does fail must have failed *typed*, before deploying
        assert len(deployed) >= 990
        for handle in deployed:
            assert handle.status == "deployed"
        # no silent partial deployment: everything that reported success
        # actually delivers end to end
        sample = deployed[:: max(1, len(deployed) // 10)]
        received = [[] for _ in sample]
        for bucket, handle in zip(received, sample):
            handle.on_result(bucket.append)
        system.network.set_fault_model(None)
        workload = ChaosFeedWorkload(sources)
        workload.tick(system, 0)
        system.run()
        for bucket in received:
            assert len(bucket) == len(sources)
        counters = deployed[0].stats()["reliability"]
        assert counters["rpc_calls"] >= 1000
