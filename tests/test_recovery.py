"""Tests for self-healing deployments: orphan detection, redeployment, revival."""

import pytest

from repro.algebra.plan import UNION
from repro.monitor import (
    DEPLOYED,
    PAUSED,
    RECOVERING,
    P2PMSystem,
    SubscriptionStateError,
)
from repro.workloads import ChaosFeedWorkload
from repro.workloads.chaos_feed import CHAOS_FUNCTION


def build_system(n_sources: int = 3, seed: int = 1):
    system = P2PMSystem(seed=seed)
    sources = [f"s{i}" for i in range(n_sources)]
    for source in sources:
        system.add_peer(source)
    monitor = system.add_peer("monitor")
    return system, sources, monitor


def subscription_text(sources) -> str:
    peers = " ".join(f"<p>{source}</p>" for source in sources)
    return (
        f'for $x in {CHAOS_FUNCTION}({peers}) where $x.kind = "chaos" '
        "return <seen><src>{$x.source}</src><n>{$x.n}</n></seen>"
    )


def deploy(system, sources, monitor, sub_id="chaos", **options):
    handle = monitor.subscribe(subscription_text(sources), sub_id=sub_id, **options)
    system.run()
    return handle


def union_host(handle) -> str:
    return handle.plan.find_all(UNION)[0].placement


def collect_results(handle):
    received = []
    handle.on_result(
        lambda item: received.append((item.find("src").text, int(item.find("n").text)))
    )
    return received


class TestOrphanDetection:
    def test_orphaned_resources_name_the_failed_peers_streams(self):
        system, sources, monitor = build_system()
        handle = deploy(system, sources, monitor)
        victim = union_host(handle)
        orphans = system.recovery.orphaned_resources(victim)
        assert orphans, "the union host owns deployed streams"
        assert all(
            (len(key) == 2 and key[0] == victim) or (key[0] == "proxy" and victim in key)
            for key in orphans
        )

    def test_affected_subscriptions_found_via_ledger_closure(self):
        system, sources, monitor = build_system()
        handle = deploy(system, sources, monitor)
        victim = union_host(handle)
        assert system.recovery.affected_subscriptions(victim) == ["chaos"]
        # a peer hosting nothing affects nothing
        outsider = next(s for s in sources if s != victim)
        system.add_peer("idle")
        assert system.recovery.affected_subscriptions("idle") == []
        # every source peer hosts its alerter + filter branch
        assert system.recovery.affected_subscriptions(outsider) == ["chaos"]


class TestFailover:
    def test_union_host_failure_redeploys_on_survivors(self):
        system, sources, monitor = build_system()
        handle = deploy(system, sources, monitor)
        received = collect_results(handle)
        victim = union_host(handle)
        observed_statuses = []
        handle.on_recovery(lambda event: observed_statuses.append((event.outcome, handle.status)))

        system.fail_peer(victim)
        system.run()

        # the RECOVERING state was observable while redeployment ran
        assert ("recovering", RECOVERING) in observed_statuses
        assert ("degraded", DEPLOYED) in observed_statuses
        assert handle.status == DEPLOYED
        assert victim not in handle.peers_involved()
        assert union_host(handle) != victim

        workload = ChaosFeedWorkload(sources)
        workload.tick(system, 0)
        system.run()
        survivors = {s for s in sources if s != victim}
        assert set(received) == {(s, 0) for s in survivors}

    def test_revival_restores_full_coverage(self):
        system, sources, monitor = build_system()
        handle = deploy(system, sources, monitor)
        received = collect_results(handle)
        victim = union_host(handle)
        system.fail_peer(victim)
        system.run()
        system.revive_peer(victim)
        system.run()
        assert handle.status == DEPLOYED
        assert victim in handle.peers_involved()
        workload = ChaosFeedWorkload(sources)
        workload.tick(system, 7)
        system.run()
        assert set(received) == {(s, 7) for s in sources}
        assert system.recovery.pending_sources == {}

    def test_all_sources_down_waits_then_recovers(self):
        system, sources, monitor = build_system(n_sources=2)
        handle = deploy(system, sources, monitor)
        received = collect_results(handle)
        for source in sources:
            system.fail_peer(source)
        system.run()
        assert handle.status == RECOVERING
        assert set(system.recovery.pending_sources["chaos"]) == set(sources)
        system.revive_peer(sources[0])
        system.run()
        assert handle.status == DEPLOYED  # degraded: one source back
        system.revive_peer(sources[1])
        system.run()
        workload = ChaosFeedWorkload(sources)
        workload.tick(system, 3)
        system.run()
        assert set(received) == {(s, 3) for s in sources}

    def test_delivery_callbacks_survive_redeployment(self):
        """on_result subscribers attach once and keep firing after recovery."""
        system, sources, monitor = build_system()
        handle = deploy(system, sources, monitor)
        received = collect_results(handle)
        workload = ChaosFeedWorkload(sources)
        workload.tick(system, 0)
        system.run()
        before = len(received)
        victim = union_host(handle)
        system.fail_peer(victim)
        system.run()
        system.revive_peer(victim)
        system.run()
        workload.tick(system, 1)
        system.run()
        assert len(received) == before + len(sources)
        assert len(received) == len(set(received))

    def test_result_buffer_survives_redeployment(self):
        system, sources, monitor = build_system()
        handle = deploy(system, sources, monitor, max_results=100)
        workload = ChaosFeedWorkload(sources)
        workload.tick(system, 0)
        system.run()
        assert len(handle.results()) == len(sources)
        victim = union_host(handle)
        system.fail_peer(victim)
        system.run()
        workload.tick(system, 1)
        system.run()
        results = handle.results()
        # pre-failure results retained, post-failure results appended
        assert {(r.find("src").text, r.find("n").text) for r in results} >= {
            (s, "0") for s in sources
        }
        assert any(r.find("n").text == "1" for r in results)

    def test_publisher_subscription_recovers_without_double_publication(self):
        system, sources, monitor = build_system()
        text = subscription_text(sources).replace(
            "return <seen><src>{$x.source}</src><n>{$x.n}</n></seen>",
            "return <seen><src>{$x.source}</src><n>{$x.n}</n></seen> "
            'by publish as channel "chaosAlerts"',
        )
        handle = monitor.subscribe(text, sub_id="chaos")
        system.run()
        old_publisher = handle.publisher
        assert old_publisher is not None
        victim = union_host(handle)
        system.fail_peer(victim)
        system.run()
        new_publisher = handle.publisher
        assert new_publisher is not None and new_publisher is not old_publisher
        workload = ChaosFeedWorkload(sources)
        workload.tick(system, 4)
        system.run()
        survivors = [s for s in sources if s != victim]
        # each surviving source's alert published exactly once, by the new
        # publisher only
        assert new_publisher.items_published == len(survivors)
        assert old_publisher.items_published == 0
        assert monitor.net.channels.publishes("chaosAlerts")

    def test_paused_subscription_recovers_paused(self):
        system, sources, monitor = build_system()
        handle = deploy(system, sources, monitor)
        received = collect_results(handle)
        handle.pause()
        victim = union_host(handle)
        system.fail_peer(victim)
        system.run()
        assert handle.status == PAUSED
        workload = ChaosFeedWorkload(sources)
        workload.tick(system, 2)
        system.run()
        assert received == []  # still paused
        handle.resume()
        survivors = {s for s in sources if s != victim}
        assert set(received) == {(s, 2) for s in survivors}


class TestLifecycleInteraction:
    def test_cancel_while_waiting(self):
        system, sources, monitor = build_system(n_sources=2)
        handle = deploy(system, sources, monitor)
        for source in sources:
            system.fail_peer(source)
        assert handle.status == RECOVERING
        assert handle.cancel() is True
        system.revive_peer(sources[0])
        system.run()
        assert handle.status == "cancelled"
        assert "chaos" not in system.recovery.pending_sources

    def test_resume_while_recovering_raises(self):
        system, sources, monitor = build_system(n_sources=2)
        handle = deploy(system, sources, monitor)
        for source in sources:
            system.fail_peer(source)
        assert handle.is_recovering
        with pytest.raises(SubscriptionStateError):
            handle.resume()

    def test_is_active_covers_recovering(self):
        system, sources, monitor = build_system(n_sources=2)
        handle = deploy(system, sources, monitor)
        for source in sources:
            system.fail_peer(source)
        assert handle.is_active
        assert monitor.manager.active_subscriptions() == ["chaos"]

    def test_unaffected_subscription_left_alone(self):
        system, sources, monitor = build_system()
        handle = deploy(system, sources, monitor)
        other_sources = sources[:1]
        other = deploy(system, other_sources, monitor, sub_id="narrow")
        # fail a peer only the wide subscription spans
        wide_only = next(s for s in sources[1:] if s not in other.peers_involved())
        events_before = len(system.recovery.events)
        system.fail_peer(wide_only)
        system.run()
        assert handle.status == DEPLOYED
        assert other.status == DEPLOYED
        touched = {e.sub_id for e in system.recovery.events[events_before:]}
        assert touched == {"chaos"}

    def test_co_subscriber_keeps_receiving_through_peer_failure(self):
        """Recovery of one subscription must not break an overlapping one."""
        system, sources, monitor = build_system()
        wide = deploy(system, sources, monitor)
        narrow = deploy(system, sources[:2], monitor, sub_id="narrow", reuse=False)
        wide_received = collect_results(wide)
        narrow_received = collect_results(narrow)
        victim = sources[2]  # only the wide subscription spans s2
        if union_host(narrow) == victim:  # pragma: no cover - topology guard
            pytest.skip("placement put the narrow union on the wide-only peer")
        system.fail_peer(victim)
        system.run()
        workload = ChaosFeedWorkload(sources)
        workload.tick(system, 5)
        system.run()
        survivors = {s for s in sources if s != victim}
        assert set(wide_received) == {(s, 5) for s in survivors}
        assert set(narrow_received) == {(s, 5) for s in sources[:2] if s in survivors}


class TestReviewRegressions:
    def test_pause_survives_a_waiting_recovery_round(self):
        """A paused subscription must stay paused through waiting -> revival."""
        system, sources, monitor = build_system(n_sources=2)
        handle = deploy(system, sources, monitor)
        received = collect_results(handle)
        handle.pause()
        for source in sources:
            system.fail_peer(source)
        system.run()
        assert handle.status == RECOVERING  # waiting: nothing deployable
        system.revive_peer(sources[0])
        system.run()
        assert handle.status == PAUSED  # recovered, but the pause held
        workload = ChaosFeedWorkload(sources)
        workload.tick(system, 1)
        system.run()
        assert received == []
        handle.resume()
        assert received == [(sources[0], 1)]

    def test_manager_peer_failure_abandons_until_its_revival(self):
        system, sources, monitor = build_system()
        handle = deploy(system, sources, monitor)
        received = collect_results(handle)
        system.fail_peer("monitor")
        # a source failing while the manager is down must not redeploy from it
        system.fail_peer(sources[0])
        events = [e.outcome for e in system.recovery.events]
        assert "abandoned" in events
        assert "monitor" in system.recovery.pending_sources["chaos"]
        system.revive_peer(sources[0])
        system.run()
        # still driven by a dead manager: nothing redeployed yet
        assert "monitor" in system.recovery.pending_sources.get("chaos", set())
        system.revive_peer("monitor")
        system.run()
        assert handle.status == DEPLOYED
        workload = ChaosFeedWorkload(sources)
        workload.tick(system, 9)
        system.run()
        assert set(received) == {(s, 9) for s in sources}

    def test_unsubscriber_still_works_after_recovery_handover(self):
        system, sources, monitor = build_system()
        handle = deploy(system, sources, monitor)
        received = []
        unsubscribe = handle.on_result(lambda item: received.append(item))
        victim = union_host(handle)
        system.fail_peer(victim)
        system.run()
        unsubscribe()  # callback was moved to the replacement delivery stream
        workload = ChaosFeedWorkload(sources)
        workload.tick(system, 2)
        system.run()
        assert received == []
