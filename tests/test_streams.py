"""Tests for the push-based Stream abstraction."""

import pytest

from repro.streams import EOS, Stream, StreamClosedError, collect, is_eos
from repro.xmlmodel import Element


class TestEOS:
    def test_singleton(self):
        from repro.streams.item import EndOfStream

        assert EndOfStream() is EOS
        assert is_eos(EOS)
        assert not is_eos(Element("a"))
        assert repr(EOS) == "EOS"


class TestStream:
    def test_qualified_id(self):
        assert Stream("s1", "p1").qualified_id == "s1@p1"
        assert Stream("s1").qualified_id == "s1@local"

    def test_emit_delivers_to_all_subscribers(self):
        stream = Stream("s", "p")
        seen_a, seen_b = [], []
        stream.subscribe(seen_a.append)
        stream.subscribe(seen_b.append)
        item = Element("alert")
        stream.emit(item)
        assert seen_a == [item]
        assert seen_b == [item]

    def test_emit_rejects_non_element(self):
        with pytest.raises(TypeError):
            Stream("s").emit("not xml")  # type: ignore[arg-type]

    def test_close_sends_eos_and_blocks_emit(self):
        stream = Stream("s")
        seen = []
        stream.subscribe(seen.append)
        stream.close()
        assert seen == [EOS]
        assert stream.closed
        with pytest.raises(StreamClosedError):
            stream.emit(Element("a"))

    def test_double_close_is_idempotent(self):
        stream = Stream("s")
        seen = []
        stream.subscribe(seen.append)
        stream.close()
        stream.close()
        assert seen == [EOS]

    def test_unsubscribe(self):
        stream = Stream("s")
        seen = []
        unsubscribe = stream.subscribe(seen.append)
        stream.emit(Element("one"))
        unsubscribe()
        unsubscribe()  # second call is a no-op
        stream.emit(Element("two"))
        assert len(seen) == 1
        assert stream.subscriber_count == 0

    def test_stats_counting(self):
        stream = Stream("s")
        stream.emit(Element("a", {"k": "v"}))
        stream.emit(Element("b"))
        assert stream.stats.items == 2
        assert stream.stats.bytes > 0

    def test_history_kept_only_when_requested(self):
        plain = Stream("s")
        plain.emit(Element("a"))
        assert plain.history == []
        hist = Stream("s", keep_history=True)
        hist.emit(Element("a"))
        assert len(hist.history) == 1

    def test_emit_many(self):
        stream = Stream("s")
        seen = collect(stream)
        stream.emit_many([Element("a"), Element("b"), Element("c")])
        assert [e.tag for e in seen] == ["a", "b", "c"]

    def test_emit_many_on_closed_stream_raises(self):
        stream = Stream("s")
        stream.close()
        with pytest.raises(StreamClosedError):
            stream.emit_many([Element("a")])

    def test_emit_many_stops_when_subscriber_closes_mid_batch(self):
        """Nothing may be delivered after the EOS marker a mid-batch close sends."""
        stream = Stream("s")
        seen = []

        def closer(item):
            seen.append(item)
            if not is_eos(item) and item.tag == "a":
                stream.close()

        stream.subscribe(closer)
        with pytest.raises(StreamClosedError):
            stream.emit_many([Element("a"), Element("b"), Element("c")])
        # the close's EOS is the last thing the subscriber saw
        assert [("EOS" if is_eos(item) else item.tag) for item in seen] == ["a", "EOS"]

    def test_emit_many_mid_batch_close_matches_per_item_fanout(self):
        """Every subscriber still receives the item that triggered the close."""

        def build(emitter):
            stream = Stream("s")
            closer_seen, other_seen = [], []

            def closer(item):
                closer_seen.append(item)
                if not is_eos(item) and item.tag == "a":
                    stream.close()

            stream.subscribe(closer)
            stream.subscribe(lambda item: other_seen.append(item))
            with pytest.raises(StreamClosedError):
                emitter(stream, [Element("a"), Element("b")])
            return (
                [("EOS" if is_eos(i) else i.tag) for i in closer_seen],
                [("EOS" if is_eos(i) else i.tag) for i in other_seen],
            )

        def per_item(stream, items):
            for item in items:
                stream.emit(item)

        assert build(per_item) == build(lambda s, items: s.emit_many(items))

    def test_emit_many_batch_subscribers_are_batch_atomic(self):
        """Pin the documented contract: a batch subscriber consumes its whole
        burst in one call, so a close it performs takes effect only after it
        returns — later subscribers then receive nothing."""
        stream = Stream("s")
        batch_seen = []
        item_seen = []

        def plain(item):  # close() still routes EOS through the raw callback
            batch_seen.append("EOS" if is_eos(item) else f"item:{item.tag}")

        def batch_handler(items):
            for item in items:
                batch_seen.append(item.tag)
                if item.tag == "a":
                    stream.close()

        plain.batch = batch_handler
        stream.subscribe(plain)
        stream.subscribe(lambda item: item_seen.append(item))
        with pytest.raises(StreamClosedError):
            stream.emit_many([Element("a"), Element("b")])
        # atomic: the handler finishes its burst despite the close (whose
        # EOS fires through the raw callback mid-handler)
        assert batch_seen == ["a", "EOS", "b"]
        assert [("EOS" if is_eos(i) else i.tag) for i in item_seen] == ["EOS"]

    def test_push_routes_items_and_eos(self):
        upstream = Stream("up")
        downstream = Stream("down")
        upstream.subscribe(downstream.push)
        seen = collect(downstream)
        upstream.emit(Element("x"))
        upstream.close()
        assert [e.tag for e in seen] == ["x"]
        assert downstream.closed

    def test_collect_ignores_eos(self):
        stream = Stream("s")
        seen = collect(stream)
        stream.emit(Element("a"))
        stream.close()
        assert len(seen) == 1

    def test_repr_mentions_state(self):
        stream = Stream("s", "p")
        assert "open" in repr(stream)
        stream.close()
        assert "closed" in repr(stream)
