"""Tests for the push-based Stream abstraction."""

import pytest

from repro.streams import EOS, Stream, StreamClosedError, collect, is_eos
from repro.xmlmodel import Element


class TestEOS:
    def test_singleton(self):
        from repro.streams.item import EndOfStream

        assert EndOfStream() is EOS
        assert is_eos(EOS)
        assert not is_eos(Element("a"))
        assert repr(EOS) == "EOS"


class TestStream:
    def test_qualified_id(self):
        assert Stream("s1", "p1").qualified_id == "s1@p1"
        assert Stream("s1").qualified_id == "s1@local"

    def test_emit_delivers_to_all_subscribers(self):
        stream = Stream("s", "p")
        seen_a, seen_b = [], []
        stream.subscribe(seen_a.append)
        stream.subscribe(seen_b.append)
        item = Element("alert")
        stream.emit(item)
        assert seen_a == [item]
        assert seen_b == [item]

    def test_emit_rejects_non_element(self):
        with pytest.raises(TypeError):
            Stream("s").emit("not xml")  # type: ignore[arg-type]

    def test_close_sends_eos_and_blocks_emit(self):
        stream = Stream("s")
        seen = []
        stream.subscribe(seen.append)
        stream.close()
        assert seen == [EOS]
        assert stream.closed
        with pytest.raises(StreamClosedError):
            stream.emit(Element("a"))

    def test_double_close_is_idempotent(self):
        stream = Stream("s")
        seen = []
        stream.subscribe(seen.append)
        stream.close()
        stream.close()
        assert seen == [EOS]

    def test_unsubscribe(self):
        stream = Stream("s")
        seen = []
        unsubscribe = stream.subscribe(seen.append)
        stream.emit(Element("one"))
        unsubscribe()
        unsubscribe()  # second call is a no-op
        stream.emit(Element("two"))
        assert len(seen) == 1
        assert stream.subscriber_count == 0

    def test_stats_counting(self):
        stream = Stream("s")
        stream.emit(Element("a", {"k": "v"}))
        stream.emit(Element("b"))
        assert stream.stats.items == 2
        assert stream.stats.bytes > 0

    def test_history_kept_only_when_requested(self):
        plain = Stream("s")
        plain.emit(Element("a"))
        assert plain.history == []
        hist = Stream("s", keep_history=True)
        hist.emit(Element("a"))
        assert len(hist.history) == 1

    def test_emit_many(self):
        stream = Stream("s")
        seen = collect(stream)
        stream.emit_many([Element("a"), Element("b"), Element("c")])
        assert [e.tag for e in seen] == ["a", "b", "c"]

    def test_push_routes_items_and_eos(self):
        upstream = Stream("up")
        downstream = Stream("down")
        upstream.subscribe(downstream.push)
        seen = collect(downstream)
        upstream.emit(Element("x"))
        upstream.close()
        assert [e.tag for e in seen] == ["x"]
        assert downstream.closed

    def test_collect_ignores_eos(self):
        stream = Stream("s")
        seen = collect(stream)
        stream.emit(Element("a"))
        stream.close()
        assert len(seen) == 1

    def test_repr_mentions_state(self):
        stream = Stream("s", "p")
        assert "open" in repr(stream)
        stream.close()
        assert "closed" in repr(stream)
